//! A mini-SQL query engine over in-memory [`Table`]s.
//!
//! This is the substrate behind the paper's *Connector* optimizer module: the
//! (simulated) LLM is only allowed to run user-approved `SELECT` statements
//! locally and sees just the result, never the raw table.
//!
//! Supported grammar:
//!
//! ```text
//! SELECT <proj> FROM <ident>
//!   [WHERE <pred>]
//!   [GROUP BY col {, col}]
//!   [ORDER BY col [ASC|DESC] {, col [ASC|DESC]}]
//!   [LIMIT n]
//!
//! proj  := '*' | item {, item}
//! item  := col | agg '(' (col|'*') ')'
//! agg   := COUNT | SUM | AVG | MIN | MAX
//! pred  := disjunctions of conjunctions of comparisons, NOT, parentheses,
//!          col (=|!=|<>|<|<=|>|>=) literal, col LIKE 'pat%', col IS [NOT] NULL
//! ```

use crate::error::DataError;
use crate::record::Record;
use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// A named collection of tables queries can reference.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under its own name (lowercased).
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
    }

    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Parse and execute a query against this catalog.
    pub fn execute(&self, sql: &str) -> Result<Table, DataError> {
        let query = Query::parse(sql)?;
        let table = self
            .get(&query.from)
            .ok_or_else(|| DataError::QueryExec(format!("unknown table `{}`", query.from)))?;
        query.run(table)
    }
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl Aggregate {
    fn name(self) -> &'static str {
        match self {
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Avg => "avg",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        }
    }
}

/// One item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Star,
    /// Bare column reference.
    Column(String),
    /// `agg(col)` or `COUNT(*)` (column = None).
    Agg(Aggregate, Option<String>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Boolean predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Cmp { column: String, op: CmpOp, literal: Value },
    Like { column: String, pattern: String },
    IsNull { column: String, negated: bool },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub projections: Vec<Projection>,
    pub from: String,
    pub predicate: Option<Predicate>,
    pub group_by: Vec<String>,
    pub order_by: Vec<(String, bool)>, // (column, ascending)
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Star,
    Comma,
    LParen,
    RParen,
    Op(CmpOp),
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> DataError {
        DataError::QueryParse { position: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<Tok, DataError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Ok(Tok::Eof);
        }
        let b = self.bytes[self.pos];
        match b {
            b'*' => {
                self.pos += 1;
                Ok(Tok::Star)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b'=' => {
                self.pos += 1;
                Ok(Tok::Op(CmpOp::Eq))
            }
            b'!' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Tok::Op(CmpOp::Ne))
                } else {
                    Err(self.error("expected `!=`"))
                }
            }
            b'<' => {
                self.pos += 1;
                match self.bytes.get(self.pos) {
                    Some(b'=') => {
                        self.pos += 1;
                        Ok(Tok::Op(CmpOp::Le))
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Ok(Tok::Op(CmpOp::Ne))
                    }
                    _ => Ok(Tok::Op(CmpOp::Lt)),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok(Tok::Op(CmpOp::Ge))
                } else {
                    Ok(Tok::Op(CmpOp::Gt))
                }
            }
            b'\'' => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    match self.bytes.get(self.pos) {
                        None => return Err(self.error("unterminated string literal")),
                        Some(b'\'') => {
                            if self.bytes.get(self.pos + 1) == Some(&b'\'') {
                                out.push('\'');
                                self.pos += 2;
                            } else {
                                self.pos += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance one UTF-8 char.
                            let rest = &self.src[self.pos..];
                            let ch = rest.chars().next().unwrap();
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                    }
                }
                Ok(Tok::Str(out))
            }
            b'0'..=b'9' | b'-' | b'.' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_digit()
                        || self.bytes[self.pos] == b'.'
                        || self.bytes[self.pos] == b'e'
                        || self.bytes[self.pos] == b'E')
                {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                if let Ok(i) = text.parse::<i64>() {
                    Ok(Tok::Int(i))
                } else if let Ok(f) = text.parse::<f64>() {
                    Ok(Tok::Float(f))
                } else {
                    Err(self.error(format!("bad numeric literal `{text}`")))
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_'
                        || self.bytes[self.pos] == b'.')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_string()))
            }
            other => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Tok,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, DataError> {
        let mut lexer = Lexer::new(src);
        let current = lexer.next()?;
        Ok(Parser { lexer, current })
    }

    fn bump(&mut self) -> Result<Tok, DataError> {
        let next = self.lexer.next()?;
        Ok(std::mem::replace(&mut self.current, next))
    }

    fn error(&self, message: impl Into<String>) -> DataError {
        DataError::QueryParse { position: self.lexer.pos, message: message.into() }
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.current, Tok::Ident(id) if id.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DataError> {
        if self.at_kw(kw) {
            self.bump()?;
            Ok(())
        } else {
            Err(self.error(format!("expected keyword `{kw}`, found {:?}", self.current)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, DataError> {
        match self.bump()? {
            Tok::Ident(id) => Ok(id),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_query(&mut self) -> Result<Query, DataError> {
        self.expect_kw("select")?;
        let projections = self.parse_projections()?;
        self.expect_kw("from")?;
        let from = self.expect_ident()?;
        let predicate = if self.at_kw("where") {
            self.bump()?;
            Some(self.parse_or()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.at_kw("group") {
            self.bump()?;
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expect_ident()?);
                if self.current == Tok::Comma {
                    self.bump()?;
                } else {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.at_kw("order") {
            self.bump()?;
            self.expect_kw("by")?;
            loop {
                let col = self.expect_ident()?;
                let asc = if self.at_kw("asc") {
                    self.bump()?;
                    true
                } else if self.at_kw("desc") {
                    self.bump()?;
                    false
                } else {
                    true
                };
                order_by.push((col, asc));
                if self.current == Tok::Comma {
                    self.bump()?;
                } else {
                    break;
                }
            }
        }
        let limit = if self.at_kw("limit") {
            self.bump()?;
            match self.bump()? {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(self.error(format!("LIMIT expects an integer, found {other:?}")))
                }
            }
        } else {
            None
        };
        if self.current != Tok::Eof {
            return Err(self.error(format!("trailing tokens after query: {:?}", self.current)));
        }
        Ok(Query { projections, from, predicate, group_by, order_by, limit })
    }

    fn parse_projections(&mut self) -> Result<Vec<Projection>, DataError> {
        let mut out = Vec::new();
        loop {
            match self.bump()? {
                Tok::Star => out.push(Projection::Star),
                Tok::Ident(id) => {
                    let agg = match id.to_ascii_lowercase().as_str() {
                        "count" => Some(Aggregate::Count),
                        "sum" => Some(Aggregate::Sum),
                        "avg" => Some(Aggregate::Avg),
                        "min" => Some(Aggregate::Min),
                        "max" => Some(Aggregate::Max),
                        _ => None,
                    };
                    if let (Some(agg), &Tok::LParen) = (agg, &self.current) {
                        self.bump()?; // (
                        let arg = match self.bump()? {
                            Tok::Star => None,
                            Tok::Ident(col) => Some(col),
                            other => {
                                return Err(self.error(format!(
                                    "aggregate expects column or *, found {other:?}"
                                )))
                            }
                        };
                        if self.bump()? != Tok::RParen {
                            return Err(self.error("expected `)` after aggregate argument"));
                        }
                        out.push(Projection::Agg(agg, arg));
                    } else {
                        out.push(Projection::Column(id));
                    }
                }
                other => return Err(self.error(format!("bad projection item {other:?}"))),
            }
            if self.current == Tok::Comma {
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_or(&mut self) -> Result<Predicate, DataError> {
        let mut left = self.parse_and()?;
        while self.at_kw("or") {
            self.bump()?;
            let right = self.parse_and()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Predicate, DataError> {
        let mut left = self.parse_atom()?;
        while self.at_kw("and") {
            self.bump()?;
            let right = self.parse_atom()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_atom(&mut self) -> Result<Predicate, DataError> {
        if self.at_kw("not") {
            self.bump()?;
            return Ok(Predicate::Not(Box::new(self.parse_atom()?)));
        }
        if self.current == Tok::LParen {
            self.bump()?;
            let inner = self.parse_or()?;
            if self.bump()? != Tok::RParen {
                return Err(self.error("expected `)`"));
            }
            return Ok(inner);
        }
        let column = self.expect_ident()?;
        if self.at_kw("is") {
            self.bump()?;
            let negated = if self.at_kw("not") {
                self.bump()?;
                true
            } else {
                false
            };
            self.expect_kw("null")?;
            return Ok(Predicate::IsNull { column, negated });
        }
        if self.at_kw("like") {
            self.bump()?;
            match self.bump()? {
                Tok::Str(pattern) => return Ok(Predicate::Like { column, pattern }),
                other => return Err(self.error(format!("LIKE expects a string, found {other:?}"))),
            }
        }
        let op = match self.bump()? {
            Tok::Op(op) => op,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other:?}")))
            }
        };
        let literal = match self.bump()? {
            Tok::Str(s) => Value::Str(s),
            Tok::Int(i) => Value::Int(i),
            Tok::Float(f) => Value::Float(f),
            Tok::Ident(id) if id.eq_ignore_ascii_case("true") => Value::Bool(true),
            Tok::Ident(id) if id.eq_ignore_ascii_case("false") => Value::Bool(false),
            Tok::Ident(id) if id.eq_ignore_ascii_case("null") => Value::Null,
            other => return Err(self.error(format!("expected literal, found {other:?}"))),
        };
        Ok(Predicate::Cmp { column, op, literal })
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl Query {
    /// Parse a SELECT statement.
    pub fn parse(sql: &str) -> Result<Query, DataError> {
        Parser::new(sql)?.parse_query()
    }

    /// Execute against a single table.
    pub fn run(&self, table: &Table) -> Result<Table, DataError> {
        // 1. Filter.
        let schema = table.schema();
        let mut rows: Vec<&Record> = Vec::new();
        for row in table.rows() {
            let keep = match &self.predicate {
                Some(p) => eval_predicate(p, schema, row)?,
                None => true,
            };
            if keep {
                rows.push(row);
            }
        }

        let has_agg = self.projections.iter().any(|p| matches!(p, Projection::Agg(..)));

        let mut result = if has_agg || !self.group_by.is_empty() {
            self.run_aggregate(schema, &rows)?
        } else {
            self.run_plain(schema, rows)?
        };

        // ORDER BY (on the *output* schema; falls back to input columns being
        // projected through).
        if !self.order_by.is_empty() {
            let out_schema = result.schema().clone();
            let keys: Vec<(usize, bool)> = self
                .order_by
                .iter()
                .map(|(col, asc)| out_schema.require(col).map(|i| (i, *asc)))
                .collect::<Result<_, _>>()?;
            let mut rows = result.into_rows();
            rows.sort_by(|a, b| {
                for &(idx, asc) in &keys {
                    let ord = a[idx].total_cmp(&b[idx]);
                    let ord = if asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            result = Table::with_rows("result", out_schema, rows)?;
        }

        // LIMIT.
        if let Some(n) = self.limit {
            result = result.head(n);
        }
        result.set_name("result");
        Ok(result)
    }

    fn run_plain(&self, schema: &Schema, rows: Vec<&Record>) -> Result<Table, DataError> {
        // Expand projections to column indices.
        let mut indices = Vec::new();
        for proj in &self.projections {
            match proj {
                Projection::Star => indices.extend(0..schema.len()),
                Projection::Column(name) => indices.push(schema.require(name)?),
                Projection::Agg(..) => unreachable!("aggregates handled elsewhere"),
            }
        }
        let out_schema = schema.project(&indices);
        let out_rows = rows
            .into_iter()
            .map(|r| Record::new(indices.iter().map(|&i| r[i].clone()).collect()))
            .collect();
        Table::with_rows("result", out_schema, out_rows)
    }

    fn run_aggregate(&self, schema: &Schema, rows: &[&Record]) -> Result<Table, DataError> {
        let group_indices: Vec<usize> =
            self.group_by.iter().map(|c| schema.require(c)).collect::<Result<_, _>>()?;

        // Validate that non-aggregate projections are group-by columns.
        for proj in &self.projections {
            if let Projection::Column(name) = proj {
                let idx = schema.require(name)?;
                if !group_indices.contains(&idx) {
                    return Err(DataError::QueryExec(format!(
                        "column `{name}` must appear in GROUP BY or an aggregate"
                    )));
                }
            }
            if matches!(proj, Projection::Star) {
                return Err(DataError::QueryExec("`*` cannot be combined with aggregates".into()));
            }
        }

        // Group rows. Key = rendered group values (stable + hashable).
        let mut groups: BTreeMap<Vec<String>, Vec<&Record>> = BTreeMap::new();
        for row in rows {
            let key: Vec<String> = group_indices
                .iter()
                .map(|&i| format!("{}|{}", row[i].type_name(), row[i]))
                .collect();
            groups.entry(key).or_default().push(row);
        }
        if groups.is_empty() && group_indices.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }

        // Output schema.
        let mut out_schema = Schema::new(vec![]);
        for proj in &self.projections {
            match proj {
                Projection::Column(name) => {
                    out_schema.push(name.clone(), ColumnType::Any);
                }
                Projection::Agg(agg, col) => {
                    let label = match col {
                        Some(c) => format!("{}({c})", agg.name()),
                        None => format!("{}(*)", agg.name()),
                    };
                    out_schema.push(label, ColumnType::Any);
                }
                Projection::Star => unreachable!(),
            }
        }

        let mut out_rows = Vec::with_capacity(groups.len());
        for group_rows in groups.values() {
            let mut record = Record::default();
            for proj in &self.projections {
                match proj {
                    Projection::Column(name) => {
                        let idx = schema.require(name)?;
                        let v = group_rows.first().map(|r| r[idx].clone()).unwrap_or(Value::Null);
                        record.push(v);
                    }
                    Projection::Agg(agg, col) => {
                        record.push(eval_aggregate(*agg, col.as_deref(), schema, group_rows)?);
                    }
                    Projection::Star => unreachable!(),
                }
            }
            out_rows.push(record);
        }
        Table::with_rows("result", out_schema, out_rows)
    }
}

fn eval_aggregate(
    agg: Aggregate,
    column: Option<&str>,
    schema: &Schema,
    rows: &[&Record],
) -> Result<Value, DataError> {
    let idx = match column {
        Some(c) => Some(schema.require(c)?),
        None => None,
    };
    let non_null = || -> Vec<&Value> {
        rows.iter().filter_map(|r| idx.map(|i| &r[i])).filter(|v| !v.is_null()).collect()
    };
    Ok(match agg {
        Aggregate::Count => match idx {
            None => Value::Int(rows.len() as i64),
            Some(_) => Value::Int(non_null().len() as i64),
        },
        Aggregate::Sum => {
            let vals = non_null();
            let sum: f64 = vals.iter().filter_map(|v| v.as_f64()).sum();
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        Aggregate::Avg => {
            let vals: Vec<f64> = non_null().iter().filter_map(|v| v.as_f64()).collect();
            if vals.is_empty() {
                Value::Null
            } else {
                Value::Float(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        }
        Aggregate::Min => {
            non_null().into_iter().min_by(|a, b| a.total_cmp(b)).cloned().unwrap_or(Value::Null)
        }
        Aggregate::Max => {
            non_null().into_iter().max_by(|a, b| a.total_cmp(b)).cloned().unwrap_or(Value::Null)
        }
    })
}

fn eval_predicate(pred: &Predicate, schema: &Schema, row: &Record) -> Result<bool, DataError> {
    Ok(match pred {
        Predicate::Cmp { column, op, literal } => {
            let idx = schema.require(column)?;
            let cell = &row[idx];
            if cell.is_null() || literal.is_null() {
                return Ok(false);
            }
            // Ordered comparisons only apply between same-kind values (both
            // numeric or both strings); cross-kind comparisons are false
            // rather than using the arbitrary type-rank order.
            let comparable = matches!(
                (cell, literal),
                (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
                    | (Value::Str(_), Value::Str(_))
            );
            match op {
                CmpOp::Eq => cell.sql_eq(literal),
                CmpOp::Ne => !cell.sql_eq(literal),
                CmpOp::Lt => comparable && cell.total_cmp(literal) == std::cmp::Ordering::Less,
                CmpOp::Le => comparable && cell.total_cmp(literal) != std::cmp::Ordering::Greater,
                CmpOp::Gt => comparable && cell.total_cmp(literal) == std::cmp::Ordering::Greater,
                CmpOp::Ge => comparable && cell.total_cmp(literal) != std::cmp::Ordering::Less,
            }
        }
        Predicate::Like { column, pattern } => {
            let idx = schema.require(column)?;
            match row[idx].as_str() {
                Some(s) => like_match(pattern, s),
                None => false,
            }
        }
        Predicate::IsNull { column, negated } => {
            let idx = schema.require(column)?;
            row[idx].is_null() != *negated
        }
        Predicate::And(a, b) => eval_predicate(a, schema, row)? && eval_predicate(b, schema, row)?,
        Predicate::Or(a, b) => eval_predicate(a, schema, row)? || eval_predicate(b, schema, row)?,
        Predicate::Not(inner) => !eval_predicate(inner, schema, row)?,
    })
}

/// Case-insensitive SQL LIKE with `%` (any run) and `_` (single char).
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try consuming 0..=len chars.
                (0..=t.len()).any(|k| inner(&p[1..], &t[k..]))
            }
            Some('_') => !t.is_empty() && inner(&p[1..], &t[1..]),
            Some(&c) => match t.first() {
                Some(&tc) => c == tc && inner(&p[1..], &t[1..]),
                None => false,
            },
        }
    }
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    inner(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv;

    fn fixture() -> Catalog {
        let table = csv::read_str(
            "products",
            "id,name,manufacturer,price\n\
             1,PlayStation 2 Memory Card,Sony,9.99\n\
             2,Xbox Controller,Microsoft,29.0\n\
             3,Switch Dock,Nintendo,59.5\n\
             4,USB Cable,,3.5\n\
             5,DualShock 4,Sony,44.0\n",
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register(table);
        catalog
    }

    #[test]
    fn select_star() {
        let result = fixture().execute("SELECT * FROM products").unwrap();
        assert_eq!(result.len(), 5);
        assert_eq!(result.schema().len(), 4);
    }

    #[test]
    fn projection_and_where() {
        let result =
            fixture().execute("SELECT name FROM products WHERE manufacturer = 'Sony'").unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.schema().len(), 1);
        assert_eq!(result.cell(0, "name").unwrap(), &Value::from("PlayStation 2 Memory Card"));
    }

    #[test]
    fn numeric_comparisons() {
        let c = fixture();
        assert_eq!(c.execute("SELECT id FROM products WHERE price < 10").unwrap().len(), 2);
        assert_eq!(c.execute("SELECT id FROM products WHERE price >= 29.0").unwrap().len(), 3);
        assert_eq!(c.execute("SELECT id FROM products WHERE id != 1").unwrap().len(), 4);
    }

    #[test]
    fn and_or_not_parens() {
        let c = fixture();
        let r = c
            .execute(
                "SELECT id FROM products WHERE (manufacturer = 'Sony' OR manufacturer = 'Nintendo') AND price > 10",
            )
            .unwrap();
        assert_eq!(r.len(), 2); // Switch Dock + DualShock 4
                                // Two-valued logic: the NULL manufacturer fails the comparison, so NOT
                                // includes it (Microsoft, Nintendo, and the NULL row).
        let r = c.execute("SELECT id FROM products WHERE NOT manufacturer = 'Sony'").unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn null_semantics_in_not() {
        // `manufacturer = 'Sony'` is false for NULL, so NOT makes it true.
        // This matches our simplified 2-valued logic (documented).
        let c = fixture();
        let r = c.execute("SELECT id FROM products WHERE manufacturer IS NULL").unwrap();
        assert_eq!(r.len(), 1);
        let r = c.execute("SELECT id FROM products WHERE manufacturer IS NOT NULL").unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn like_patterns() {
        let c = fixture();
        let r = c.execute("SELECT id FROM products WHERE name LIKE '%card%'").unwrap();
        assert_eq!(r.len(), 1);
        let r = c.execute("SELECT id FROM products WHERE name LIKE 'x%'").unwrap();
        assert_eq!(r.len(), 1);
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
    }

    #[test]
    fn order_by_and_limit() {
        let c = fixture();
        let r = c.execute("SELECT name, price FROM products ORDER BY price DESC LIMIT 2").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, "name").unwrap(), &Value::from("Switch Dock"));
    }

    #[test]
    fn aggregates_global() {
        let c = fixture();
        let r = c
            .execute("SELECT count(*), avg(price), min(price), max(price), sum(id) FROM products")
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "count(*)").unwrap(), &Value::Int(5));
        assert_eq!(r.cell(0, "min(price)").unwrap(), &Value::Float(3.5));
        assert_eq!(r.cell(0, "sum(id)").unwrap(), &Value::Int(15));
    }

    #[test]
    fn count_column_skips_nulls() {
        let c = fixture();
        let r = c.execute("SELECT count(manufacturer) FROM products").unwrap();
        assert_eq!(r.cell(0, "count(manufacturer)").unwrap(), &Value::Int(4));
    }

    #[test]
    fn group_by() {
        let c = fixture();
        let r = c
            .execute(
                "SELECT manufacturer, count(*) FROM products WHERE manufacturer IS NOT NULL GROUP BY manufacturer ORDER BY manufacturer",
            )
            .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.cell(2, "manufacturer").unwrap(), &Value::from("Sony"));
        assert_eq!(r.cell(2, "count(*)").unwrap(), &Value::Int(2));
    }

    #[test]
    fn group_by_rejects_non_grouped_column() {
        let c = fixture();
        let err = c.execute("SELECT name, count(*) FROM products GROUP BY manufacturer");
        assert!(err.is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        let c = fixture();
        assert!(matches!(c.execute("SELEKT * FROM products"), Err(DataError::QueryParse { .. })));
        assert!(c.execute("SELECT * FROM nope").is_err());
        assert!(c.execute("SELECT * FROM products WHERE").is_err());
        assert!(c.execute("SELECT * FROM products LIMIT x").is_err());
        assert!(c.execute("SELECT * FROM products extra").is_err());
    }

    #[test]
    fn string_literal_escaping() {
        let mut catalog = Catalog::new();
        let t = csv::read_str("t", "a\nit's\n").unwrap();
        catalog.register(t);
        let r = catalog.execute("SELECT a FROM t WHERE a = 'it''s'").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_group_on_empty_filter() {
        let c = fixture();
        let r = c.execute("SELECT count(*) FROM products WHERE price > 1000").unwrap();
        assert_eq!(r.cell(0, "count(*)").unwrap(), &Value::Int(0));
    }
}
