//! A single row of values.

use crate::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row. Records are positional; pairing with a [`crate::Schema`] gives the
/// columns names. Most record-at-a-time module interfaces in `lingua-core`
/// pass records together with their schema.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    pub fn set(&mut self, index: usize, value: Value) {
        self.values[index] = value;
    }

    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Count of non-null cells.
    pub fn non_null_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// Render as `field=value` pairs given a schema — the serialization used
    /// when a record is shown to the (simulated) LLM.
    pub fn describe(&self, schema: &crate::Schema) -> String {
        let mut out = String::new();
        for (i, value) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            let name = if i < schema.len() { schema.name(i) } else { "?" };
            out.push_str(name);
            out.push_str(": ");
            out.push_str(&value.render());
        }
        out
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, value) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{value}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record { values }
    }
}

impl std::ops::Index<usize> for Record {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn sample() -> Record {
        Record::new(vec![Value::Int(1), Value::Str("ok".into()), Value::Null])
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r.get(5), None);
        assert_eq!(r.non_null_count(), 2);
    }

    #[test]
    fn describe_uses_schema_names() {
        let r = sample();
        let schema = Schema::of_names(["id", "status", "note"]);
        assert_eq!(r.describe(&schema), "id: 1; status: ok; note: ");
    }

    #[test]
    fn set_and_push() {
        let mut r = sample();
        r.set(2, Value::Bool(true));
        r.push(Value::Float(1.5));
        assert_eq!(r[2], Value::Bool(true));
        assert_eq!(r.len(), 4);
    }
}
