//! # lingua-dataset
//!
//! The tabular data substrate for the Lingua Manga reproduction.
//!
//! This crate provides:
//!
//! * A compact dynamically-typed [`Value`] cell type plus [`Schema`],
//!   [`Record`], and [`Table`] containers used across the whole workspace.
//! * A CSV reader/writer ([`csv`]) so pipelines can load and save data.
//! * A mini-SQL query engine ([`query`]) — `SELECT`-only with projections,
//!   predicates, `ORDER BY`, `LIMIT`, `GROUP BY`, and a handful of aggregates.
//!   This is the engine behind the paper's *Connector* optimizer module, which
//!   confines an LLM to user-approved local queries instead of shipping it the
//!   whole table.
//! * Seeded synthetic generators ([`generators`]) reproducing the structure and
//!   difficulty profile of every dataset in the paper's evaluation
//!   (BeerAdvo-RateBeer, Fodors-Zagats, iTunes-Amazon, the Buy imputation
//!   dataset, and a multilingual name-extraction corpus), driven by an explicit
//!   ground-truth [`world::WorldSpec`].
//!
//! Everything stochastic takes an explicit `u64` seed and is reproducible.

pub mod csv;
pub mod error;
pub mod generators;
pub mod labels;
pub mod query;
pub mod record;
pub mod schema;
pub mod table;
pub mod value;
pub mod world;

pub use error::DataError;
pub use record::Record;
pub use schema::{ColumnType, Schema};
pub use table::Table;
pub use value::Value;
