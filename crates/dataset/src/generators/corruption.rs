//! Text perturbation toolbox used to create the "dirty" side of matched
//! entity pairs and noisy cells generally.
//!
//! Each function takes an explicit RNG so callers control determinism, and an
//! intensity in `[0, 1]` where it applies.

use rand::Rng;

/// Introduce `n` character-level typos (swap / delete / duplicate / replace).
pub fn typos<R: Rng>(rng: &mut R, text: &str, n: usize) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    for _ in 0..n {
        if chars.len() < 2 {
            break;
        }
        let i = rng.gen_range(0..chars.len() - 1);
        match rng.gen_range(0..4) {
            0 => chars.swap(i, i + 1),
            1 => {
                chars.remove(i);
            }
            2 => {
                let c = chars[i];
                chars.insert(i, c);
            }
            _ => {
                let replacement = (b'a' + rng.gen_range(0..26u8)) as char;
                chars[i] = replacement;
            }
        }
    }
    chars.into_iter().collect()
}

/// Abbreviate some words: keep the first `k` letters with a trailing period,
/// mimicking "Boulevard" -> "Blvd."-style damage without a dictionary.
pub fn abbreviate<R: Rng>(rng: &mut R, text: &str, probability: f64) -> String {
    text.split_whitespace()
        .map(|word| {
            if word.chars().count() > 5 && rng.gen_bool(probability) {
                let k = rng.gen_range(3..=4);
                let mut out: String = word.chars().take(k).collect();
                out.push('.');
                out
            } else {
                word.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Drop each token independently with `probability` (never drops all tokens).
pub fn drop_tokens<R: Rng>(rng: &mut R, text: &str, probability: f64) -> String {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.len() <= 1 {
        return text.to_string();
    }
    let kept: Vec<&str> = tokens.iter().copied().filter(|_| !rng.gen_bool(probability)).collect();
    if kept.is_empty() {
        tokens[0].to_string()
    } else {
        kept.join(" ")
    }
}

/// Swap two adjacent tokens with `probability`.
pub fn reorder_tokens<R: Rng>(rng: &mut R, text: &str, probability: f64) -> String {
    let mut tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.len() >= 2 && rng.gen_bool(probability) {
        let i = rng.gen_range(0..tokens.len() - 1);
        tokens.swap(i, i + 1);
    }
    tokens.join(" ")
}

/// Randomly change the case style of the whole string.
pub fn case_jitter<R: Rng>(rng: &mut R, text: &str) -> String {
    match rng.gen_range(0..3) {
        0 => text.to_lowercase(),
        1 => text.to_uppercase(),
        _ => text.to_string(),
    }
}

/// Reformat a `ddd-ddd-dddd` phone number into one of several styles.
pub fn phone_jitter<R: Rng>(rng: &mut R, phone: &str) -> String {
    let digits: String = phone.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() != 10 {
        return phone.to_string();
    }
    let (a, rest) = digits.split_at(3);
    let (b, c) = rest.split_at(3);
    match rng.gen_range(0..4) {
        0 => format!("{a}-{b}-{c}"),
        1 => format!("({a}) {b}-{c}"),
        2 => format!("{a}/{b}-{c}"),
        _ => format!("{a} {b} {c}"),
    }
}

/// Append a decorative suffix like "(Remastered)" / "[Deluxe Edition]" —
/// the iTunes-Amazon style of damage that fools naive matchers.
pub fn decorate_title<R: Rng>(rng: &mut R, title: &str, probability: f64) -> String {
    const SUFFIXES: &[&str] = &[
        "(Remastered)",
        "[Deluxe Edition]",
        "(Live)",
        "(Album Version)",
        "- Single",
        "(Bonus Track)",
        "(Radio Edit)",
    ];
    if rng.gen_bool(probability) {
        format!("{title} {}", SUFFIXES[rng.gen_range(0..SUFFIXES.len())])
    } else {
        title.to_string()
    }
}

/// Format seconds either as `m:ss` or as raw seconds — unit variance across
/// the two sides of a matched song pair.
pub fn format_duration<R: Rng>(rng: &mut R, seconds: u32) -> String {
    if rng.gen_bool(0.5) {
        format!("{}:{:02}", seconds / 60, seconds % 60)
    } else {
        format!("{seconds}")
    }
}

/// Apply a composite corruption pipeline at the given `intensity`
/// (0 = identity, 1 = heavy damage).
pub fn corrupt<R: Rng>(rng: &mut R, text: &str, intensity: f64) -> String {
    let mut out = text.to_string();
    if intensity <= 0.0 {
        return out;
    }
    let typo_count = (intensity * 2.5).round() as usize;
    if typo_count > 0 && rng.gen_bool((intensity * 0.9).min(1.0)) {
        out = typos(rng, &out, typo_count.min(3));
    }
    if rng.gen_bool((intensity * 0.4).min(1.0)) {
        out = abbreviate(rng, &out, 0.3);
    }
    if rng.gen_bool((intensity * 0.35).min(1.0)) {
        out = drop_tokens(rng, &out, 0.2);
    }
    if rng.gen_bool((intensity * 0.3).min(1.0)) {
        out = reorder_tokens(rng, &out, 0.8);
    }
    if rng.gen_bool((intensity * 0.5).min(1.0)) {
        out = case_jitter(rng, &out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn typos_change_but_keep_rough_length() {
        let mut r = rng();
        let out = typos(&mut r, "playstation memory card", 2);
        assert_ne!(out, "playstation memory card");
        let delta = (out.len() as i64 - 23).abs();
        assert!(delta <= 4, "length drifted too far: {out:?}");
    }

    #[test]
    fn typos_on_tiny_strings_are_safe() {
        let mut r = rng();
        assert_eq!(typos(&mut r, "a", 3), "a");
        assert_eq!(typos(&mut r, "", 3), "");
    }

    #[test]
    fn drop_tokens_never_empties() {
        let mut r = rng();
        for _ in 0..50 {
            let out = drop_tokens(&mut r, "one two three", 0.99);
            assert!(!out.is_empty());
        }
        assert_eq!(drop_tokens(&mut r, "single", 1.0), "single");
    }

    #[test]
    fn abbreviate_shortens_long_words() {
        let mut r = rng();
        let out = abbreviate(&mut r, "boulevard restaurant", 1.0);
        assert!(out.contains('.'), "{out}");
        assert!(out.len() < "boulevard restaurant".len());
    }

    #[test]
    fn phone_jitter_preserves_digits() {
        let mut r = rng();
        for _ in 0..20 {
            let out = phone_jitter(&mut r, "415-555-0123");
            let digits: String = out.chars().filter(|c| c.is_ascii_digit()).collect();
            assert_eq!(digits, "4155550123");
        }
        // Non-10-digit inputs pass through.
        assert_eq!(phone_jitter(&mut r, "12345"), "12345");
    }

    #[test]
    fn decorate_title_appends_suffix() {
        let mut r = rng();
        let out = decorate_title(&mut r, "Midnight Hearts", 1.0);
        assert!(out.starts_with("Midnight Hearts "));
        assert_eq!(decorate_title(&mut r, "Midnight Hearts", 0.0), "Midnight Hearts");
    }

    #[test]
    fn format_duration_variants() {
        let mut r = rng();
        let mut saw_colon = false;
        let mut saw_raw = false;
        for _ in 0..40 {
            let s = format_duration(&mut r, 245);
            if s == "4:05" {
                saw_colon = true;
            }
            if s == "245" {
                saw_raw = true;
            }
        }
        assert!(saw_colon && saw_raw);
    }

    #[test]
    fn corrupt_zero_intensity_is_identity() {
        let mut r = rng();
        assert_eq!(corrupt(&mut r, "Hoppy Badger", 0.0), "Hoppy Badger");
    }

    #[test]
    fn corrupt_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            corrupt(&mut a, "Golden Lantern Imperial Stout", 0.7),
            corrupt(&mut b, "Golden Lantern Imperial Stout", 0.7)
        );
    }
}
