//! Buy-style data-imputation benchmark (§4.3 of the paper).
//!
//! Products have `name`, `description`, `manufacturer`; the manufacturer
//! column is blanked out and must be imputed. Ground truth is kept to the
//! side. Roughly 5/6 of rows are "easy" (the brand token appears somewhere in
//! the text and a rule can extract it); the remaining 1/6 require world
//! knowledge ("PlayStation 2 Memory Card" → Sony) — this ratio is what makes
//! the paper's 1/6-LLM-calls economy reproducible.

use crate::record::Record;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use crate::world::{BrandMention, ProductFact, WorldConfig, WorldSpec};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The imputation benchmark: a table with a hole, plus hidden ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImputationBenchmark {
    /// `name, description, manufacturer` — manufacturer is all-NULL.
    pub table: Table,
    /// Ground-truth manufacturer per row, parallel to `table.rows()`.
    pub truth: Vec<String>,
    /// Per-row difficulty marker, parallel to `table.rows()`.
    pub mentions: Vec<BrandMention>,
    /// Candidate manufacturer vocabulary (the task is closed-world, as in
    /// the Buy dataset where manufacturers come from a known catalogue).
    pub vocabulary: Vec<String>,
}

impl ImputationBenchmark {
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Fraction of rows whose manufacturer is recoverable from the row text.
    pub fn easy_fraction(&self) -> f64 {
        let easy = self.mentions.iter().filter(|m| **m != BrandMention::KnowledgeOnly).count();
        easy as f64 / self.mentions.len().max(1) as f64
    }
}

/// Build the benchmark from a world's product universe.
pub fn generate(world: &WorldSpec, seed: u64) -> ImputationBenchmark {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1b_u64);
    let mut products: Vec<&ProductFact> = world.products.iter().collect();
    products.shuffle(&mut rng);
    build(products.into_iter())
}

/// A *disjoint* labeled training catalogue from the **same world** — what the
/// IMP baseline's "thousands of training examples" are made of. Same seed ⇒
/// the same manufacturers own the same product lines (the facts a model must
/// learn are consistent); the generator stream is extended past the
/// benchmark's own products, so no benchmark row leaks into training.
pub fn training_catalogue(world: &WorldSpec, n: usize) -> Vec<(String, String, String)> {
    let base = world.products.len();
    let config = WorldConfig { products: base + n, ..Default::default() };
    let aux = WorldSpec::generate_with(world.seed, &config);
    debug_assert_eq!(aux.products[..base.min(aux.products.len())], world.products[..]);
    aux.products[base..]
        .iter()
        .map(|p| (p.name.clone(), p.description.clone(), p.manufacturer.clone()))
        .collect()
}

fn build<'a>(products: impl Iterator<Item = &'a ProductFact>) -> ImputationBenchmark {
    let schema = Schema::of_names(["name", "description", "manufacturer"]);
    let mut table = Table::new("buy_products", schema);
    let mut truth = Vec::new();
    let mut mentions = Vec::new();
    let mut vocabulary: Vec<String> = Vec::new();
    for p in products {
        table
            .push(Record::new(vec![
                Value::Str(p.name.clone()),
                Value::Str(p.description.clone()),
                Value::Null,
            ]))
            .expect("schema arity");
        truth.push(p.manufacturer.clone());
        mentions.push(p.mention);
        if !vocabulary.contains(&p.manufacturer) {
            vocabulary.push(p.manufacturer.clone());
        }
    }
    vocabulary.sort();
    ImputationBenchmark { table, truth, mentions, vocabulary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_shape() {
        let world = WorldSpec::generate(42);
        let bench = generate(&world, 1);
        assert_eq!(bench.len(), world.products.len());
        assert_eq!(bench.truth.len(), bench.len());
        assert_eq!(bench.mentions.len(), bench.len());
        // The manufacturer column is fully blank.
        let nulls = bench.table.null_counts();
        assert_eq!(nulls[2], bench.len());
        assert_eq!(nulls[0], 0);
    }

    #[test]
    fn easy_fraction_near_five_sixths() {
        let world = WorldSpec::generate(42);
        let bench = generate(&world, 1);
        assert!((bench.easy_fraction() - 5.0 / 6.0).abs() < 0.06);
    }

    #[test]
    fn vocabulary_covers_truth() {
        let world = WorldSpec::generate(42);
        let bench = generate(&world, 1);
        for t in &bench.truth {
            assert!(bench.vocabulary.contains(t));
        }
        // Sorted + deduplicated.
        let mut v = bench.vocabulary.clone();
        v.sort();
        v.dedup();
        assert_eq!(v, bench.vocabulary);
    }

    #[test]
    fn training_catalogue_is_disjoint_and_consistent() {
        let world = WorldSpec::generate(42);
        let bench = generate(&world, 1);
        let train = training_catalogue(&world, 2000);
        assert_eq!(train.len(), 2000);
        // Same manufacturer universe.
        let known: std::collections::BTreeSet<_> = bench.vocabulary.iter().cloned().collect();
        let covered =
            train.iter().filter(|(_, _, m)| known.contains(m)).count() as f64 / train.len() as f64;
        assert!(covered > 0.95, "covered {covered}");
        // No benchmark row leaks into training.
        let bench_names: std::collections::BTreeSet<&str> =
            world.products.iter().map(|p| p.name.as_str()).collect();
        let leaked = train.iter().filter(|(n, _, _)| bench_names.contains(n.as_str())).count();
        assert!(
            (leaked as f64) < 0.02 * train.len() as f64,
            "{leaked} near-duplicate names leaked"
        );
        // Product-line facts are consistent with the benchmark world.
        for (name, _, manufacturer) in train.iter().take(200) {
            for (line, owner) in &world.product_line_owners {
                if name.to_lowercase().contains(line) {
                    assert_eq!(owner, manufacturer, "line {line} in {name}");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let world = WorldSpec::generate(42);
        let a = generate(&world, 9);
        let b = generate(&world, 9);
        assert_eq!(a.truth, b.truth);
    }
}
