//! Entity-resolution benchmark generators shaped like the three Magellan
//! datasets the paper evaluates on (Table 1).
//!
//! Each generator produces a [`PairSplit`] whose total size, positive rate,
//! and 3:1:1 split mirror the original dataset, and whose *difficulty profile*
//! is tuned so the paper's method ordering emerges:
//!
//! * **Fodors-Zagats** — easy: light perturbation, few hard negatives
//!   (supervised methods reach ~100 F1 on the real data).
//! * **BeerAdvo-RateBeer** — moderate: heavier typos/abbreviations, hard
//!   negatives sharing a brewery.
//! * **iTunes-Amazon** — hard for naive LLM prompting: matched sides differ by
//!   decorative suffixes ("(Remastered)"), duration-format variance, and hard
//!   negatives are same-artist different-song pairs — the trap that drives the
//!   FMs baseline down to ~66 F1 in the paper.

use crate::generators::corruption;
use crate::labels::{LabeledPair, PairSplit};
use crate::record::Record;
use crate::schema::Schema;
use crate::value::Value;
use crate::world::{BeerFact, RestaurantFact, SongFact, WorldSpec};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which of the paper's three ER datasets to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErDataset {
    BeerAdvoRateBeer,
    FodorsZagats,
    ItunesAmazon,
}

impl ErDataset {
    pub const ALL: [ErDataset; 3] =
        [ErDataset::BeerAdvoRateBeer, ErDataset::FodorsZagats, ErDataset::ItunesAmazon];

    pub fn name(self) -> &'static str {
        match self {
            ErDataset::BeerAdvoRateBeer => "BeerAdvo-RateBeer",
            ErDataset::FodorsZagats => "Fodors-Zagats",
            ErDataset::ItunesAmazon => "iTunes-Amazon",
        }
    }

    /// (total pairs, positive pairs) mirroring the Magellan repository.
    pub fn paper_sizes(self) -> (usize, usize) {
        match self {
            ErDataset::BeerAdvoRateBeer => (450, 68),
            ErDataset::FodorsZagats => (946, 110),
            ErDataset::ItunesAmazon => (539, 132),
        }
    }

    /// Corruption intensity applied to the matched copy.
    fn intensity(self) -> f64 {
        match self {
            ErDataset::BeerAdvoRateBeer => 0.90,
            ErDataset::FodorsZagats => 0.25,
            ErDataset::ItunesAmazon => 0.60,
        }
    }

    /// Fraction of negatives that are *hard* (share a discriminative field).
    fn hard_negative_fraction(self) -> f64 {
        match self {
            ErDataset::BeerAdvoRateBeer => 0.45,
            ErDataset::FodorsZagats => 0.15,
            ErDataset::ItunesAmazon => 0.60,
        }
    }
}

/// Generate the pair benchmark for `dataset` from `world`, split 3:1:1.
pub fn generate(world: &WorldSpec, dataset: ErDataset, seed: u64) -> PairSplit {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe17_0000 ^ dataset.name().len() as u64);
    let (total, positives) = dataset.paper_sizes();
    let negatives = total - positives;

    let (schema, mut pairs) = match dataset {
        ErDataset::BeerAdvoRateBeer => beer_pairs(world, &mut rng, positives, negatives, dataset),
        ErDataset::FodorsZagats => restaurant_pairs(world, &mut rng, positives, negatives, dataset),
        ErDataset::ItunesAmazon => song_pairs(world, &mut rng, positives, negatives, dataset),
    };
    pairs.shuffle(&mut rng);
    PairSplit::from_fractions(schema, pairs, 0.6, 0.2)
}

// ---------------------------------------------------------------------------
// Beer
// ---------------------------------------------------------------------------

pub const BEER_SCHEMA: [&str; 4] = ["beer_name", "brewery", "style", "abv"];

pub(crate) fn beer_record(b: &BeerFact) -> Record {
    Record::new(vec![
        Value::Str(b.name.clone()),
        Value::Str(b.brewery.clone()),
        Value::Str(b.style.clone()),
        Value::Str(format!("{:.1}%", b.abv)),
    ])
}

pub(crate) fn corrupt_beer(rng: &mut StdRng, b: &BeerFact, intensity: f64) -> Record {
    let mut name = corruption::corrupt(rng, &b.name, intensity);
    // RateBeer-style listing damage: heavy abbreviation and style suffixes
    // glued onto the name. Character-level features survive this; plain
    // token features mostly don't.
    if rng.gen_bool(intensity * 0.5) {
        name = corruption::abbreviate(rng, &name, 0.6);
    }
    if rng.gen_bool(intensity * 0.35) {
        name = format!("{name} - {}", b.style);
    }
    let brewery = if rng.gen_bool(0.4) {
        // Drop the "Brewing" suffix — a classic cross-site discrepancy.
        b.brewery.replace(" Brewing", "")
    } else {
        corruption::corrupt(rng, &b.brewery, intensity * 0.6)
    };
    let style = if rng.gen_bool(0.45) { String::new() } else { b.style.clone() };
    let abv = if rng.gen_bool(0.3) { format!("{:.2}", b.abv) } else { format!("{:.1}%", b.abv) };
    Record::new(vec![
        Value::Str(name),
        Value::Str(brewery),
        if style.is_empty() { Value::Null } else { Value::Str(style) },
        Value::Str(abv),
    ])
}

fn beer_pairs(
    world: &WorldSpec,
    rng: &mut StdRng,
    positives: usize,
    negatives: usize,
    dataset: ErDataset,
) -> (Schema, Vec<LabeledPair>) {
    let schema = Schema::of_names(BEER_SCHEMA);
    let beers = &world.beers;
    assert!(beers.len() >= positives, "world too small for beer positives");
    let mut pairs = Vec::with_capacity(positives + negatives);

    let mut indices: Vec<usize> = (0..beers.len()).collect();
    indices.shuffle(rng);
    for &i in indices.iter().take(positives) {
        let b = &beers[i];
        pairs.push(LabeledPair {
            left_entity: b.id,
            right_entity: b.id,
            left: beer_record(b),
            right: corrupt_beer(rng, b, dataset.intensity()),
            label: true,
        });
    }

    let hard_target = (negatives as f64 * dataset.hard_negative_fraction()) as usize;
    let mut produced = 0usize;
    // Hard negatives: same brewery, different beer (or same style + similar name).
    'outer: for i in 0..beers.len() {
        for j in (i + 1)..beers.len() {
            if produced >= hard_target {
                break 'outer;
            }
            if beers[i].brewery == beers[j].brewery && beers[i].name != beers[j].name {
                let mut right = corrupt_beer(rng, &beers[j], dataset.intensity() * 0.5);
                // Sibling beers from one brewery cluster around the same
                // strength: without a discriminative abv column, the name is
                // all a matcher has — which is exactly where coarse string
                // features fail and character-level ones do not.
                if rng.gen_bool(0.8) {
                    let jitter = (rng.gen_range(-2..=2) as f64) / 10.0;
                    right.set(3, Value::Str(format!("{:.1}%", beers[i].abv + jitter)));
                }
                if rng.gen_bool(0.6) {
                    right.set(2, Value::Str(beers[i].style.clone()));
                }
                pairs.push(LabeledPair {
                    left_entity: beers[i].id,
                    right_entity: beers[j].id,
                    left: beer_record(&beers[i]),
                    right,
                    label: false,
                });
                produced += 1;
            }
        }
    }
    // Random negatives for the remainder.
    while produced < negatives {
        let i = rng.gen_range(0..beers.len());
        let j = rng.gen_range(0..beers.len());
        if i == j {
            continue;
        }
        pairs.push(LabeledPair {
            left_entity: beers[i].id,
            right_entity: beers[j].id,
            left: beer_record(&beers[i]),
            right: corrupt_beer(rng, &beers[j], dataset.intensity() * 0.5),
            label: false,
        });
        produced += 1;
    }
    (schema, pairs)
}

// ---------------------------------------------------------------------------
// Restaurants
// ---------------------------------------------------------------------------

pub const RESTAURANT_SCHEMA: [&str; 5] = ["name", "addr", "city", "phone", "cuisine"];

fn restaurant_record(r: &RestaurantFact) -> Record {
    Record::new(vec![
        Value::Str(r.name.clone()),
        Value::Str(r.addr.clone()),
        Value::Str(r.city.clone()),
        Value::Str(r.phone.clone()),
        Value::Str(r.cuisine.clone()),
    ])
}

fn corrupt_restaurant(rng: &mut StdRng, r: &RestaurantFact, intensity: f64) -> Record {
    Record::new(vec![
        Value::Str(corruption::corrupt(rng, &r.name, intensity)),
        Value::Str(corruption::abbreviate(rng, &r.addr, 0.4)),
        Value::Str(corruption::case_jitter(rng, &r.city)),
        Value::Str(corruption::phone_jitter(rng, &r.phone)),
        Value::Str(if rng.gen_bool(0.2) { String::new() } else { r.cuisine.clone() }),
    ])
}

fn restaurant_pairs(
    world: &WorldSpec,
    rng: &mut StdRng,
    positives: usize,
    negatives: usize,
    dataset: ErDataset,
) -> (Schema, Vec<LabeledPair>) {
    let schema = Schema::of_names(RESTAURANT_SCHEMA);
    let rs = &world.restaurants;
    assert!(rs.len() >= positives, "world too small for restaurant positives");
    let mut pairs = Vec::with_capacity(positives + negatives);

    let mut indices: Vec<usize> = (0..rs.len()).collect();
    indices.shuffle(rng);
    for &i in indices.iter().take(positives) {
        let r = &rs[i];
        pairs.push(LabeledPair {
            left_entity: r.id,
            right_entity: r.id,
            left: restaurant_record(r),
            right: corrupt_restaurant(rng, r, dataset.intensity()),
            label: true,
        });
    }

    let hard_target = (negatives as f64 * dataset.hard_negative_fraction()) as usize;
    let mut produced = 0usize;
    // Hard negatives: same city + same cuisine.
    'outer: for i in 0..rs.len() {
        for j in (i + 1)..rs.len() {
            if produced >= hard_target {
                break 'outer;
            }
            if rs[i].city == rs[j].city && rs[i].cuisine == rs[j].cuisine {
                pairs.push(LabeledPair {
                    left_entity: rs[i].id,
                    right_entity: rs[j].id,
                    left: restaurant_record(&rs[i]),
                    right: corrupt_restaurant(rng, &rs[j], dataset.intensity() * 0.5),
                    label: false,
                });
                produced += 1;
            }
        }
    }
    while produced < negatives {
        let i = rng.gen_range(0..rs.len());
        let j = rng.gen_range(0..rs.len());
        if i == j {
            continue;
        }
        pairs.push(LabeledPair {
            left_entity: rs[i].id,
            right_entity: rs[j].id,
            left: restaurant_record(&rs[i]),
            right: corrupt_restaurant(rng, &rs[j], dataset.intensity() * 0.5),
            label: false,
        });
        produced += 1;
    }
    (schema, pairs)
}

// ---------------------------------------------------------------------------
// Songs
// ---------------------------------------------------------------------------

pub const SONG_SCHEMA: [&str; 7] =
    ["song_name", "artist_name", "album_name", "genre", "price", "time", "released"];

fn song_record(s: &SongFact) -> Record {
    Record::new(vec![
        Value::Str(s.title.clone()),
        Value::Str(s.artist.clone()),
        Value::Str(s.album.clone()),
        Value::Str(s.genre.clone()),
        Value::Str(format!("${:.2}", s.price)),
        Value::Str(format!("{}:{:02}", s.time / 60, s.time % 60)),
        Value::Str(s.year.to_string()),
    ])
}

fn corrupt_song(rng: &mut StdRng, s: &SongFact, intensity: f64) -> Record {
    let title = corruption::decorate_title(rng, &s.title, 0.80);
    let title = corruption::corrupt(rng, &title, intensity * 0.8);
    let artist = if rng.gen_bool(0.45) {
        format!("{} [feat. {}]", s.artist, "Various")
    } else {
        s.artist.clone()
    };
    let album = corruption::decorate_title(rng, &s.album, 0.55);
    Record::new(vec![
        Value::Str(title),
        Value::Str(artist),
        Value::Str(album),
        Value::Str(if rng.gen_bool(0.2) { String::new() } else { s.genre.clone() }),
        Value::Str(if rng.gen_bool(0.5) {
            format!("${:.2}", s.price)
        } else {
            format!("{:.2}", s.price)
        }),
        Value::Str(corruption::format_duration(rng, s.time)),
        Value::Str(s.year.to_string()),
    ])
}

fn song_pairs(
    world: &WorldSpec,
    rng: &mut StdRng,
    positives: usize,
    negatives: usize,
    dataset: ErDataset,
) -> (Schema, Vec<LabeledPair>) {
    let schema = Schema::of_names(SONG_SCHEMA);
    let songs = &world.songs;
    assert!(songs.len() >= positives, "world too small for song positives");
    let mut pairs = Vec::with_capacity(positives + negatives);

    let mut indices: Vec<usize> = (0..songs.len()).collect();
    indices.shuffle(rng);
    for &i in indices.iter().take(positives) {
        let s = &songs[i];
        pairs.push(LabeledPair {
            left_entity: s.id,
            right_entity: s.id,
            left: song_record(s),
            right: corrupt_song(rng, s, dataset.intensity()),
            label: true,
        });
    }

    let hard_target = (negatives as f64 * dataset.hard_negative_fraction()) as usize;
    let mut produced = 0usize;
    // Hard negatives: same artist, different song.
    'outer: for i in 0..songs.len() {
        for j in (i + 1)..songs.len() {
            if produced >= hard_target {
                break 'outer;
            }
            if songs[i].artist == songs[j].artist && songs[i].title != songs[j].title {
                let mut right = corrupt_song(rng, &songs[j], dataset.intensity() * 0.5);
                // Same-album sibling tracks: the classic iTunes-Amazon trap —
                // everything but the title lines up.
                if rng.gen_bool(0.6) {
                    right.set(2, Value::Str(songs[i].album.clone()));
                    right.set(3, Value::Str(songs[i].genre.clone()));
                    right.set(6, Value::Str(songs[i].year.to_string()));
                }
                pairs.push(LabeledPair {
                    left_entity: songs[i].id,
                    right_entity: songs[j].id,
                    left: song_record(&songs[i]),
                    right,
                    label: false,
                });
                produced += 1;
            }
        }
    }
    while produced < negatives {
        let i = rng.gen_range(0..songs.len());
        let j = rng.gen_range(0..songs.len());
        if i == j {
            continue;
        }
        pairs.push(LabeledPair {
            left_entity: songs[i].id,
            right_entity: songs[j].id,
            left: song_record(&songs[i]),
            right: corrupt_song(rng, &songs[j], dataset.intensity() * 0.5),
            label: false,
        });
        produced += 1;
    }
    (schema, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> WorldSpec {
        WorldSpec::generate(99)
    }

    #[test]
    fn sizes_match_paper() {
        let w = world();
        for ds in ErDataset::ALL {
            let split = generate(&w, ds, 5);
            let (total, pos) = ds.paper_sizes();
            assert_eq!(split.total(), total, "{}", ds.name());
            assert_eq!(split.positives(), pos, "{}", ds.name());
            // 3:1:1 split: test is ~20%.
            let test_frac = split.test.len() as f64 / total as f64;
            assert!((test_frac - 0.2).abs() < 0.02, "{} test frac {test_frac}", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let a = generate(&w, ErDataset::BeerAdvoRateBeer, 5);
        let b = generate(&w, ErDataset::BeerAdvoRateBeer, 5);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn positive_pairs_share_entity_ids() {
        let w = world();
        let split = generate(&w, ErDataset::ItunesAmazon, 5);
        for p in split.train.iter().chain(&split.valid).chain(&split.test) {
            assert_eq!(p.label, p.left_entity == p.right_entity);
            assert_eq!(p.left.len(), split.schema.len());
            assert_eq!(p.right.len(), split.schema.len());
        }
    }

    #[test]
    fn positives_are_perturbed_not_identical() {
        let w = world();
        let split = generate(&w, ErDataset::BeerAdvoRateBeer, 5);
        let changed =
            split.train.iter().chain(&split.test).filter(|p| p.label && p.left != p.right).count();
        let total: usize = split.train.iter().chain(&split.test).filter(|p| p.label).count();
        assert!(changed as f64 / total as f64 > 0.8, "{changed}/{total} perturbed");
    }

    #[test]
    fn schemas_have_expected_columns() {
        let w = world();
        let beer = generate(&w, ErDataset::BeerAdvoRateBeer, 5);
        assert_eq!(beer.schema.index_of("brewery"), Some(1));
        let song = generate(&w, ErDataset::ItunesAmazon, 5);
        assert_eq!(song.schema.index_of("artist_name"), Some(1));
        let rest = generate(&w, ErDataset::FodorsZagats, 5);
        assert_eq!(rest.schema.index_of("phone"), Some(3));
    }
}
