//! Seeded synthetic dataset generators reproducing the structure and
//! difficulty of every dataset in the paper's evaluation.
//!
//! * [`er`] — entity-resolution pair benchmarks shaped like the Magellan
//!   repository datasets (BeerAdvo-RateBeer, Fodors-Zagats, iTunes-Amazon).
//! * [`imputation`] — a Buy-style product catalogue with a missing
//!   `manufacturer` column.
//! * [`names`] — a multilingual name-extraction corpus (the startup-company
//!   workload of §4.2).
//! * [`stream`] — unbounded seeded record streams (beer listings with
//!   bounded-lag corrupted duplicates) feeding the streaming curation
//!   engine.
//! * [`corruption`] — the perturbation toolbox (typos, abbreviations, token
//!   drop/reorder, case and format jitter) shared by the generators.

pub mod corruption;
pub mod er;
pub mod imputation;
pub mod names;
pub mod stream;
