//! Unbounded, seeded record streams for the streaming curation engine.
//!
//! Batch generators in this module's siblings produce a finite split and
//! stop; a stream generator never runs dry. [`ProductStream`] cycles through
//! the world's beer catalogue as "listings" arriving over event time and
//! re-emits recent listings as corrupted duplicates — the same cross-site
//! damage model as the BeerAdvo-RateBeer batch generator, but with the
//! duplicate landing a *bounded number of emissions* after its original.
//! That bound is what makes windowed dedup meaningful: a window sized above
//! the duplicate lag sees both copies, and a window-scoped matcher can find
//! them without ever consulting the full history.
//!
//! Event time is a logical `u64` tick, mostly monotone with bounded
//! disorder, so watermark semantics (allowed lateness, late drops) are
//! exercised deterministically from the seed alone.

use crate::generators::er::{beer_record, corrupt_beer, BEER_SCHEMA};
use crate::record::Record;
use crate::schema::Schema;
use crate::world::{BeerFact, WorldSpec};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// One element of an unbounded record stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StreamItem {
    /// Logical event-time tick. Mostly monotone in emission order; an item
    /// may be stamped up to [`StreamSpec::disorder`] ticks behind the
    /// emission clock, so a late-enough watermark policy sees genuine
    /// out-of-order arrivals.
    pub event_time: u64,
    /// Ground-truth entity id: two items sharing it are true duplicates.
    /// This is a test oracle — it must never be shown to a matcher.
    pub entity: u64,
    pub record: Record,
}

/// Knobs for the synthetic product stream. Every quantity is derived from
/// `seed` deterministically; two streams built from equal specs emit
/// identical item sequences.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    pub seed: u64,
    /// Probability an emission is a corrupted duplicate of a recent item
    /// instead of a fresh listing.
    pub dup_rate: f64,
    /// A duplicate references an original at most this many emissions back,
    /// bounding how far apart true matches can land in event time.
    pub dup_lag: usize,
    /// Maximum event-time disorder in ticks (0 = strictly monotone).
    pub disorder: u64,
    /// Emission gaps are drawn uniformly from `1..=2*mean_gap - 1` ticks.
    pub mean_gap: u64,
    /// Corruption intensity applied to duplicate re-emissions (the
    /// BeerAdvo-RateBeer batch generator uses 0.90).
    pub intensity: f64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            seed: 7,
            dup_rate: 0.35,
            dup_lag: 24,
            disorder: 4,
            mean_gap: 2,
            intensity: 0.6,
        }
    }
}

/// An unbounded beer-listing stream over a generated world. `Iterator::next`
/// never returns `None`; callers decide how much of the stream to consume.
pub struct ProductStream {
    rng: StdRng,
    beers: Vec<BeerFact>,
    schema: Schema,
    spec: StreamSpec,
    /// Emission-order clock in ticks (pre-disorder).
    clock: u64,
    /// Count of fresh (non-duplicate) emissions; doubles as the next entity
    /// id so ids are dense and stable.
    fresh: u64,
    /// The last `dup_lag` emissions as `(entity, catalogue index)`;
    /// duplicates are drawn uniformly from here, so a duplicate of a
    /// duplicate keeps its original entity id.
    recent: VecDeque<(u64, usize)>,
}

impl ProductStream {
    pub fn new(world: &WorldSpec, spec: StreamSpec) -> ProductStream {
        assert!(!world.beers.is_empty(), "world has no beers to stream");
        assert!((0.0..=1.0).contains(&spec.dup_rate), "dup_rate is a probability");
        assert!(spec.dup_lag > 0, "dup_lag must be > 0");
        assert!(spec.mean_gap > 0, "mean_gap must be > 0");
        ProductStream {
            rng: StdRng::seed_from_u64(spec.seed ^ 0x57ea_0000),
            beers: world.beers.clone(),
            schema: Schema::of_names(BEER_SCHEMA),
            spec,
            clock: 0,
            fresh: 0,
            recent: VecDeque::new(),
        }
    }

    /// The schema every emitted record conforms to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn emit(&mut self) -> StreamItem {
        let gap = self.rng.gen_range(1..=2 * self.spec.mean_gap - 1);
        self.clock += gap;
        let disorder =
            if self.spec.disorder == 0 { 0 } else { self.rng.gen_range(0..=self.spec.disorder) };
        let event_time = self.clock.saturating_sub(disorder);

        let duplicate = !self.recent.is_empty() && self.rng.gen_bool(self.spec.dup_rate);
        let (entity, index, record) = if duplicate {
            let back = self.rng.gen_range(0..self.recent.len());
            let (entity, index) = self.recent[back];
            let record = corrupt_beer(&mut self.rng, &self.beers[index], self.spec.intensity);
            (entity, index, record)
        } else {
            let entity = self.fresh;
            let index = (self.fresh as usize) % self.beers.len();
            self.fresh += 1;
            (entity, index, beer_record(&self.beers[index]))
        };
        self.recent.push_back((entity, index));
        while self.recent.len() > self.spec.dup_lag {
            self.recent.pop_front();
        }
        StreamItem { event_time, entity, record }
    }
}

impl Iterator for ProductStream {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        Some(self.emit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(spec: StreamSpec) -> ProductStream {
        ProductStream::new(&WorldSpec::generate(5), spec)
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<StreamItem> = stream(StreamSpec::default()).take(500).collect();
        let b: Vec<StreamItem> = stream(StreamSpec::default()).take(500).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.event_time, y.event_time);
            assert_eq!(x.entity, y.entity);
            assert_eq!(x.record, y.record);
        }
    }

    #[test]
    fn event_time_disorder_is_bounded() {
        let spec = StreamSpec::default();
        let disorder = spec.disorder;
        let mut max_seen = 0u64;
        for item in stream(spec).take(2000) {
            // A stamp can trail the running maximum by at most the disorder
            // budget plus one emission gap's worth of drift; in particular it
            // can never regress unboundedly.
            assert!(item.event_time + disorder + 1 >= max_seen.saturating_sub(disorder));
            max_seen = max_seen.max(item.event_time);
        }
        assert!(max_seen > 0);
    }

    #[test]
    fn strictly_monotone_when_disorder_is_zero() {
        let mut last = 0u64;
        for item in stream(StreamSpec { disorder: 0, ..Default::default() }).take(1000) {
            assert!(item.event_time > last, "gaps are >= 1 tick, so time strictly advances");
            last = item.event_time;
        }
    }

    #[test]
    fn duplicates_share_entities_within_the_lag_bound() {
        let spec = StreamSpec::default();
        let lag = spec.dup_lag;
        let items: Vec<StreamItem> = stream(spec).take(3000).collect();
        let mut dup_emissions = 0usize;
        for (i, item) in items.iter().enumerate() {
            // Find the most recent earlier emission of the same entity.
            if let Some(j) = (0..i).rev().find(|&j| items[j].entity == item.entity) {
                dup_emissions += 1;
                assert!(i - j <= lag, "duplicate {i} references emission {j}, beyond the lag");
            }
        }
        let rate = dup_emissions as f64 / items.len() as f64;
        assert!(rate > 0.2 && rate < 0.5, "duplicate rate {rate} should track dup_rate");
    }

    #[test]
    fn records_conform_to_the_beer_schema() {
        let s = stream(StreamSpec::default());
        assert_eq!(s.schema().len(), BEER_SCHEMA.len());
        for item in stream(StreamSpec::default()).take(100) {
            assert_eq!(item.record.len(), BEER_SCHEMA.len());
        }
    }
}
