//! Multilingual name-extraction corpus (§4.2).
//!
//! Each passage is a few sentences produced from per-language templates, with
//! `{name}` slots filled by "Given Surname" person names and `{place}` slots
//! by capitalized distractor proper nouns. Ground truth is the exact list of
//! person full names appearing in the passage.
//!
//! The corpus's language mix is configurable; the §4.2 experiment contrasts a
//! monolingual pipeline (English-only tooling degrades on the rest) with one
//! extended by a language-detection module and multilingual tools.

use crate::world::{Language, Lexicon, WorldSpec};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One labeled passage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Passage {
    pub text: String,
    pub language: Language,
    /// Person full names in the text (order of appearance; duplicates kept).
    pub person_names: Vec<String>,
}

/// Corpus configuration.
#[derive(Debug, Clone)]
pub struct NamesConfig {
    pub passages: usize,
    /// (language, weight) mixture. Weights need not sum to 1.
    pub language_mix: Vec<(Language, f64)>,
    /// Sentences per passage (inclusive range).
    pub sentences: (usize, usize),
}

impl Default for NamesConfig {
    fn default() -> Self {
        // The startup corpus of §4.2: majority English with a long multilingual
        // tail that tanks a monolingual extractor.
        NamesConfig {
            passages: 300,
            language_mix: vec![
                (Language::English, 0.40),
                (Language::French, 0.12),
                (Language::German, 0.12),
                (Language::Spanish, 0.10),
                (Language::Italian, 0.08),
                (Language::Turkish, 0.06),
                (Language::Chinese, 0.06),
                (Language::Japanese, 0.06),
            ],
            sentences: (2, 4),
        }
    }
}

/// Generate a corpus.
pub fn generate(world: &WorldSpec, config: &NamesConfig, seed: u64) -> Vec<Passage> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a3e);
    let total_weight: f64 = config.language_mix.iter().map(|(_, w)| w).sum();
    let mut corpus = Vec::with_capacity(config.passages);
    for _ in 0..config.passages {
        let mut draw = rng.gen_range(0.0..total_weight);
        let mut language = config.language_mix[0].0;
        for &(lang, w) in &config.language_mix {
            if draw < w {
                language = lang;
                break;
            }
            draw -= w;
        }
        let lexicon = &world.lexicons[&language];
        corpus.push(passage(&mut rng, language, lexicon, config.sentences));
    }
    corpus
}

fn full_name(rng: &mut StdRng, lexicon: &Lexicon) -> String {
    let given = &lexicon.given_names[rng.gen_range(0..lexicon.given_names.len())];
    let surname = &lexicon.surnames[rng.gen_range(0..lexicon.surnames.len())];
    format!("{given} {surname}")
}

fn passage(
    rng: &mut StdRng,
    language: Language,
    lexicon: &Lexicon,
    sentences: (usize, usize),
) -> Passage {
    let n = rng.gen_range(sentences.0..=sentences.1);
    let mut text = String::new();
    let mut person_names = Vec::new();
    for i in 0..n {
        if i > 0 {
            text.push(' ');
        }
        let template = &lexicon.templates[rng.gen_range(0..lexicon.templates.len())];
        let mut sentence = template.clone();
        while let Some(pos) = sentence.find("{name2}") {
            let name = full_name(rng, lexicon);
            sentence.replace_range(pos..pos + 7, &name);
            person_names.push(name);
        }
        while let Some(pos) = sentence.find("{name}") {
            let name = full_name(rng, lexicon);
            sentence.replace_range(pos..pos + 6, &name);
            person_names.push(name);
        }
        while let Some(pos) = sentence.find("{place}") {
            let place = &lexicon.distractors[rng.gen_range(0..lexicon.distractors.len())];
            sentence.replace_range(pos..pos + 7, place);
        }
        while let Some(pos) = sentence.find("{noun}") {
            let noun = &lexicon.nouns[rng.gen_range(0..lexicon.nouns.len())];
            sentence.replace_range(pos..pos + 6, noun);
        }
        text.push_str(&sentence);
    }
    // Names were pushed in slot-scan order, not strictly appearance order;
    // re-derive appearance order from the final text for a clean ground truth.
    person_names.sort_by_key(|name| text.find(name.as_str()).unwrap_or(usize::MAX));
    Passage { text, language, person_names }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Passage> {
        let world = WorldSpec::generate(7);
        generate(&world, &NamesConfig::default(), 3)
    }

    #[test]
    fn corpus_size_and_determinism() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.len(), 300);
        assert_eq!(a, b);
    }

    #[test]
    fn ground_truth_names_appear_in_text() {
        for p in corpus() {
            for name in &p.person_names {
                assert!(p.text.contains(name.as_str()), "{name} missing from {:?}", p.text);
            }
            assert!(!p.person_names.is_empty(), "passage without names: {:?}", p.text);
        }
    }

    #[test]
    fn language_mix_is_roughly_respected() {
        let c = corpus();
        let english = c.iter().filter(|p| p.language == Language::English).count() as f64;
        let frac = english / c.len() as f64;
        assert!((frac - 0.40).abs() < 0.12, "english fraction {frac}");
        // Every language in the default mix shows up.
        for lang in Language::ALL {
            assert!(c.iter().any(|p| p.language == lang), "no passages in {lang:?}");
        }
    }

    #[test]
    fn custom_config_single_language() {
        let world = WorldSpec::generate(7);
        let config = NamesConfig {
            passages: 20,
            language_mix: vec![(Language::German, 1.0)],
            sentences: (1, 2),
        };
        let corpus = generate(&world, &config, 5);
        assert_eq!(corpus.len(), 20);
        assert!(corpus.iter().all(|p| p.language == Language::German));
    }

    #[test]
    fn names_are_two_or_three_tokens() {
        // "Given Surname", where a surname may itself be two tokens ("De Luca").
        for p in corpus().iter().take(50) {
            for name in &p.person_names {
                let tokens = name.split_whitespace().count();
                assert!((2..=3).contains(&tokens), "{name}");
            }
        }
    }
}
