//! A small, correct CSV codec (RFC 4180 subset: quoting, escaped quotes,
//! embedded newlines and commas), written against `std` only.
//!
//! The first line is always treated as the header. Cell types are inferred
//! via [`Value::infer`] unless `read_str` is used.

use crate::error::DataError;
use crate::record::Record;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::path::Path;

/// Parse CSV text into a [`Table`], inferring cell types.
pub fn read_str(name: &str, text: &str) -> Result<Table, DataError> {
    let rows = parse_rows(text)?;
    let mut iter = rows.into_iter();
    let header = iter
        .next()
        .ok_or(DataError::Csv { line: 1, message: "empty input: missing header".into() })?;
    let schema = Schema::of_names(header.0);
    let mut table = Table::new(name, schema);
    for (cells, line) in iter.map(|r| (r.0, r.1)) {
        if cells.len() != table.schema().len() {
            return Err(DataError::Csv {
                line,
                message: format!("expected {} fields, found {}", table.schema().len(), cells.len()),
            });
        }
        let record = Record::new(cells.iter().map(|c| Value::infer(c)).collect());
        table.push(record).map_err(|e| DataError::Csv { line, message: e.to_string() })?;
    }
    Ok(table)
}

/// Read a CSV file from disk.
pub fn read_path(path: impl AsRef<Path>) -> Result<Table, DataError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table");
    read_str(name, &text)
}

/// Serialize a table to CSV text (header + rows), quoting as needed.
pub fn write_str(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema().names().map(escape).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.iter().map(|v| escape(&v.render())).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to disk as CSV.
pub fn write_path(table: &Table, path: impl AsRef<Path>) -> Result<(), DataError> {
    std::fs::write(path, write_str(table))?;
    Ok(())
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Parse raw CSV into rows of string cells, tracking 1-based line numbers
/// for error reporting.
fn parse_rows(text: &str) -> Result<Vec<(Vec<String>, usize)>, DataError> {
    let mut rows = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => {
                    if !field.is_empty() {
                        return Err(DataError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    rows.push((std::mem::take(&mut record), record_line));
                    record_line = line;
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    rows.push((std::mem::take(&mut record), record_line));
                    record_line = line;
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv { line, message: "unterminated quoted field".into() });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        rows.push((record, record_line));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let text = "id,name\n1,alpha\n2,beta\n";
        let table = read_str("t", text).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.cell(0, "name").unwrap(), &Value::from("alpha"));
        assert_eq!(write_str(&table), text);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let text = "id,desc\n1,\"a, b\"\n2,\"line1\nline2\"\n3,\"he said \"\"hi\"\"\"\n";
        let table = read_str("t", text).unwrap();
        assert_eq!(table.cell(0, "desc").unwrap(), &Value::from("a, b"));
        assert_eq!(table.cell(1, "desc").unwrap(), &Value::from("line1\nline2"));
        assert_eq!(table.cell(2, "desc").unwrap(), &Value::from("he said \"hi\""));
        // Re-serialize and re-parse: must be stable.
        let again = read_str("t", &write_str(&table)).unwrap();
        assert_eq!(again, table);
    }

    #[test]
    fn crlf_line_endings() {
        let table = read_str("t", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(table.cell(0, "b").unwrap(), &Value::Int(2));
    }

    #[test]
    fn missing_trailing_newline() {
        let table = read_str("t", "a\n1").unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn empty_cells_become_null() {
        let table = read_str("t", "a,b\n1,\n,2\n").unwrap();
        assert!(table.cell(0, "b").unwrap().is_null());
        assert!(table.cell(1, "a").unwrap().is_null());
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let err = read_str("t", "a,b\n1\n").unwrap_err();
        match err {
            DataError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(read_str("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_str("t", "").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lingua_dataset_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        let table = read_str("sample", "x,y\n1,2\n").unwrap();
        write_path(&table, &path).unwrap();
        let back = read_path(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(path).ok();
    }
}
