//! Error type shared by the data-model, CSV, and query modules.

use std::fmt;

/// Errors produced while manipulating tables, parsing CSV, or running queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A record's arity does not match its schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value had the wrong type for the operation.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// CSV input was malformed.
    Csv { line: usize, message: String },
    /// The mini-SQL text failed to parse.
    QueryParse { position: usize, message: String },
    /// A query was well-formed but could not be executed.
    QueryExec(String),
    /// An I/O failure (message only, to keep the error `Clone + Eq`).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::ArityMismatch { expected, got } => {
                write!(f, "record arity mismatch: schema has {expected} columns, record has {got}")
            }
            DataError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            DataError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            DataError::QueryParse { position, message } => {
                write!(f, "query parse error at byte {position}: {message}")
            }
            DataError::QueryExec(message) => write!(f, "query execution error: {message}"),
            DataError::Io(message) => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let err = DataError::UnknownColumn("price".into());
        assert!(err.to_string().contains("price"));
        let err = DataError::ArityMismatch { expected: 3, got: 2 };
        assert!(err.to_string().contains('3') && err.to_string().contains('2'));
        let err = DataError::Csv { line: 7, message: "unterminated quote".into() };
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: DataError = io.into();
        assert!(matches!(err, DataError::Io(_)));
    }
}
