//! In-memory tables: a schema plus rows, with relational-style helpers.

use crate::error::DataError;
use crate::record::Record;
use crate::schema::{ColumnType, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, schema-ful, row-oriented table.
///
/// Tables are the unit of data that flows between pipeline operators in
/// `lingua-core`, and the object the mini-SQL engine queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Record>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table { name: name.into(), schema, rows: Vec::new() }
    }

    /// Create a table from pre-built rows, validating arity.
    pub fn with_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Record>,
    ) -> Result<Self, DataError> {
        let mut table = Table::new(name, schema);
        for row in rows {
            table.push(row)?;
        }
        Ok(table)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut [Record] {
        &mut self.rows
    }

    pub fn into_rows(self) -> Vec<Record> {
        self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after checking its arity against the schema.
    pub fn push(&mut self, row: Record) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::ArityMismatch { expected: self.schema.len(), got: row.len() });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Cell accessor by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Result<&Value, DataError> {
        let col = self.schema.require(column)?;
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .ok_or_else(|| DataError::QueryExec(format!("row {row} out of bounds")))
    }

    /// Replace a cell.
    pub fn set_cell(&mut self, row: usize, column: &str, value: Value) -> Result<(), DataError> {
        let col = self.schema.require(column)?;
        if row >= self.rows.len() {
            return Err(DataError::QueryExec(format!("row {row} out of bounds")));
        }
        self.rows[row].set(col, value);
        Ok(())
    }

    /// All values of one column, in row order.
    pub fn column(&self, column: &str) -> Result<Vec<Value>, DataError> {
        let col = self.schema.require(column)?;
        Ok(self.rows.iter().map(|r| r[col].clone()).collect())
    }

    /// Keep only the named columns (new table, rows copied).
    pub fn select_columns(&self, columns: &[&str]) -> Result<Table, DataError> {
        let indices: Vec<usize> =
            columns.iter().map(|c| self.schema.require(c)).collect::<Result<_, _>>()?;
        let schema = self.schema.project(&indices);
        let rows = self
            .rows
            .iter()
            .map(|r| Record::new(indices.iter().map(|&i| r[i].clone()).collect()))
            .collect();
        Ok(Table { name: self.name.clone(), schema, rows })
    }

    /// Keep only rows satisfying `predicate`.
    pub fn filter(&self, mut predicate: impl FnMut(&Record) -> bool) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| predicate(r)).cloned().collect(),
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Add a column computed from each row.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        ty: ColumnType,
        mut f: impl FnMut(&Record) -> Value,
    ) {
        self.schema.push(name, ty);
        for row in &mut self.rows {
            let v = f(row);
            row.push(v);
        }
    }

    /// Count of nulls per column, in schema order.
    pub fn null_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema.len()];
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                if v.is_null() {
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    /// Pretty-print the first `limit` rows as an aligned text table
    /// (the rendering used by the demo binaries).
    pub fn preview(&self, limit: usize) -> String {
        let mut widths: Vec<usize> = self.schema.names().map(|n| n.chars().count()).collect();
        let shown: Vec<&Record> = self.rows.iter().take(limit).collect();
        for row in &shown {
            for (i, v) in row.iter().enumerate() {
                widths[i] = widths[i].max(v.render().chars().count().min(40));
            }
        }
        let mut out = String::new();
        let fmt_cell = |text: &str, width: usize| -> String {
            let truncated: String = if text.chars().count() > 40 {
                let mut t: String = text.chars().take(37).collect();
                t.push_str("...");
                t
            } else {
                text.to_string()
            };
            format!("{truncated:<width$}")
        };
        for (i, name) in self.schema.names().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&fmt_cell(name, widths[i]));
        }
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in shown {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&fmt_cell(&v.render(), widths[i]));
            }
            out.push('\n');
        }
        if self.rows.len() > limit {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - limit));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{} rows]", self.name, self.schema, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::of_names(["id", "name", "price"]);
        Table::with_rows(
            "products",
            schema,
            vec![
                Record::new(vec![Value::Int(1), Value::from("memory card"), Value::Float(9.99)]),
                Record::new(vec![Value::Int(2), Value::from("controller"), Value::Float(29.0)]),
                Record::new(vec![Value::Int(3), Value::from("cable"), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_checks_arity() {
        let mut t = sample();
        let err = t.push(Record::new(vec![Value::Int(4)])).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { expected: 3, got: 1 }));
    }

    #[test]
    fn cell_access() {
        let t = sample();
        assert_eq!(t.cell(1, "name").unwrap(), &Value::from("controller"));
        assert!(t.cell(9, "name").is_err());
        assert!(t.cell(0, "nope").is_err());
    }

    #[test]
    fn select_columns_projects() {
        let t = sample();
        let p = t.select_columns(&["name"]).unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.rows()[0][0], Value::from("memory card"));
    }

    #[test]
    fn filter_and_head() {
        let t = sample();
        let cheap = t.filter(|r| r[2].as_f64().map(|p| p < 10.0).unwrap_or(false));
        assert_eq!(cheap.len(), 1);
        assert_eq!(t.head(2).len(), 2);
    }

    #[test]
    fn add_column_and_null_counts() {
        let mut t = sample();
        t.add_column("has_price", ColumnType::Bool, |r| Value::Bool(!r[2].is_null()));
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.rows()[2][3], Value::Bool(false));
        assert_eq!(t.null_counts(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn preview_truncates() {
        let t = sample();
        let p = t.preview(2);
        assert!(p.contains("memory card"));
        assert!(p.contains("1 more rows"));
    }
}
