//! Dynamically-typed cell values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single table cell.
///
/// `Value` is deliberately small and cheap to clone for everything except
/// strings. Numeric comparisons between `Int` and `Float` coerce to `f64`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// Human-readable name of the value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` coerce to `f64`; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value the way the CSV writer and the query engine do.
    ///
    /// `Null` renders as the empty string; floats keep a trailing `.0` when
    /// integral so they round-trip as floats.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Str(s) => s.clone(),
        }
    }

    /// Parse a textual cell into the "narrowest" value: empty → Null,
    /// then bool, int, float, falling back to `Str`.
    pub fn infer(text: &str) -> Value {
        if text.is_empty() {
            return Value::Null;
        }
        match text {
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = text.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = text.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        Value::Str(text.to_string())
    }

    /// Total ordering used by `ORDER BY`: Null < Bool < numbers < Str.
    /// NaN sorts after all other floats to keep the order total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a @ (Int(_) | Float(_)), b @ (Int(_) | Float(_))) => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // NaN handling: NaN > non-NaN; NaN == NaN.
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!(),
                    }
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL-style equality: Null equals nothing (not even Null);
    /// Int/Float compare numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => false,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (a @ (Int(_) | Float(_)), b @ (Int(_) | Float(_))) => {
                a.as_f64().unwrap() == b.as_f64().unwrap()
            }
            _ => false,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality (Null == Null); used by tests and containers.
    /// For SQL semantics use [`Value::sql_eq`].
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_narrows_types() {
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-3"), Value::Int(-3));
        assert_eq!(Value::infer("4.5"), Value::Float(4.5));
        assert_eq!(Value::infer("4.5x"), Value::Str("4.5x".into()));
        assert_eq!(Value::infer("Sony"), Value::Str("Sony".into()));
    }

    #[test]
    fn render_roundtrips_through_infer() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Int(7),
            Value::Float(2.5),
            Value::Float(3.0),
            Value::Str("hello world".into()),
        ] {
            assert_eq!(Value::infer(&v.render()), v, "value {v:?}");
        }
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
    }

    #[test]
    fn null_is_not_sql_equal_to_null() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert_eq!(Value::Null, Value::Null); // structural equality differs
    }

    #[test]
    fn ordering_ranks_types() {
        let mut vals = vec![Value::Str("a".into()), Value::Int(0), Value::Null, Value::Bool(true)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![Value::Null, Value::Bool(true), Value::Int(0), Value::Str("a".into())]
        );
    }

    #[test]
    fn nan_sorts_last_among_numbers() {
        let mut vals = [Value::Float(f64::NAN), Value::Float(1.0), Value::Int(5)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Float(1.0));
        assert_eq!(vals[1], Value::Int(5));
        assert!(matches!(vals[2], Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::Int(5).as_i64(), Some(5));
        assert_eq!(Value::Float(5.0).as_i64(), Some(5));
        assert_eq!(Value::Float(5.5).as_i64(), None);
    }
}
