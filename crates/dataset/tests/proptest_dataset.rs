//! Property tests for the CSV codec and the mini-SQL query engine.

use lingua_dataset::query::{like_match, Catalog, Query};
use lingua_dataset::{csv, Record, Schema, Table, Value};
use proptest::prelude::*;

fn cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-10_000i64..10_000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(|f| Value::Float((f * 4.0).round() / 4.0 + 0.25)),
        // Strings that cannot be mistaken for numbers/bools/empties.
        "[a-zA-Z][a-zA-Z ,\"\n']{0,20}".prop_map(Value::Str),
    ]
}

fn table() -> impl Strategy<Value = Table> {
    (2usize..5, 0usize..30).prop_flat_map(|(cols, rows)| {
        let schema: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        prop::collection::vec(prop::collection::vec(cell(), cols..=cols), rows..=rows).prop_map(
            move |rows| {
                let schema = Schema::of_names(schema.clone());
                let rows = rows.into_iter().map(Record::new).collect();
                Table::with_rows("t", schema, rows).unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSV write → read reproduces the table exactly, as long as string cells
    /// are not ambiguous with other types (the generator guarantees that).
    #[test]
    fn csv_roundtrip(t in table()) {
        let text = csv::write_str(&t);
        let back = csv::read_str("t", &text).unwrap();
        prop_assert_eq!(back.schema(), t.schema());
        prop_assert_eq!(back.rows(), t.rows());
    }

    /// LIMIT n never returns more than n rows and is a prefix of the
    /// unlimited result.
    #[test]
    fn limit_is_a_prefix(t in table(), n in 0usize..10) {
        let mut catalog = Catalog::new();
        catalog.register(t);
        let all = catalog.execute("SELECT * FROM t").unwrap();
        let limited = catalog.execute(&format!("SELECT * FROM t LIMIT {n}")).unwrap();
        prop_assert!(limited.len() <= n);
        prop_assert_eq!(limited.rows(), &all.rows()[..limited.len()]);
    }

    /// ORDER BY produces a permutation that is sorted under Value::total_cmp.
    #[test]
    fn order_by_sorts(t in table()) {
        let mut catalog = Catalog::new();
        catalog.register(t.clone());
        let sorted = catalog.execute("SELECT c0 FROM t ORDER BY c0").unwrap();
        prop_assert_eq!(sorted.len(), t.len());
        for w in sorted.rows().windows(2) {
            prop_assert_ne!(w[0][0].total_cmp(&w[1][0]), std::cmp::Ordering::Greater);
        }
    }

    /// COUNT(*) equals the number of rows matching the predicate computed
    /// directly.
    #[test]
    fn count_matches_filter(t in table(), threshold in -10_000i64..10_000) {
        let mut catalog = Catalog::new();
        catalog.register(t.clone());
        let sql = format!("SELECT count(*) FROM t WHERE c1 > {threshold}");
        let result = catalog.execute(&sql).unwrap();
        let expected = t
            .rows()
            .iter()
            .filter(|r| r[1].total_cmp(&Value::Int(threshold)) == std::cmp::Ordering::Greater
                && !r[1].is_null()
                && r[1].as_f64().is_some())
            .count();
        prop_assert_eq!(result.cell(0, "count(*)").unwrap(), &Value::Int(expected as i64));
    }

    /// The query parser never panics on arbitrary input.
    #[test]
    fn query_parser_never_panics(sql in "[ -~]{0,60}") {
        let _ = Query::parse(&sql);
    }

    /// LIKE with a pattern equal to the text (no wildcards) always matches,
    /// and `%text%` matches any superstring.
    #[test]
    fn like_reflexive_and_substring(text in "[a-z]{0,10}", pre in "[a-z]{0,5}", post in "[a-z]{0,5}") {
        prop_assert!(like_match(&text, &text));
        let pattern = format!("%{text}%");
        let haystack = format!("{pre}{text}{post}");
        prop_assert!(like_match(&pattern, &haystack));
    }
}
