//! Typed transport faults.
//!
//! Everything below the gateway speaks `Result<_, TransportError>`; everything
//! above it keeps the infallible [`lingua_llm_sim::LlmService`] contract. The
//! four fault classes model the failures a hosted LLM API actually produces:
//! deadline misses, load shedding, 5xx-style hiccups, and syntactically broken
//! payloads.

use serde::Serialize;
use std::fmt;

/// The class of a transport fault, used as a metrics key and by the
/// fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FaultClass {
    Timeout,
    RateLimited,
    TransientServer,
    MalformedOutput,
}

impl FaultClass {
    pub const ALL: [FaultClass; 4] = [
        FaultClass::Timeout,
        FaultClass::RateLimited,
        FaultClass::TransientServer,
        FaultClass::MalformedOutput,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Timeout => "timeout",
            FaultClass::RateLimited => "rate_limited",
            FaultClass::TransientServer => "transient_server",
            FaultClass::MalformedOutput => "malformed_output",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A failed transport call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The backend did not answer within its deadline.
    Timeout { waited_ms: u64 },
    /// The backend shed load and asked the client to slow down.
    RateLimited { retry_after_ms: u64 },
    /// A transient server-side failure (the 5xx of a hosted API).
    TransientServer { message: String },
    /// The backend answered, but the payload failed output validation.
    MalformedOutput { preview: String },
}

impl TransportError {
    pub fn class(&self) -> FaultClass {
        match self {
            TransportError::Timeout { .. } => FaultClass::Timeout,
            TransportError::RateLimited { .. } => FaultClass::RateLimited,
            TransportError::TransientServer { .. } => FaultClass::TransientServer,
            TransportError::MalformedOutput { .. } => FaultClass::MalformedOutput,
        }
    }

    /// Whether retrying the *same* backend can plausibly succeed.
    ///
    /// Timeouts, rate limits, and transient server errors clear on their own.
    /// Malformed output from a temperature-0 backend is deterministic — the
    /// same prompt regenerates the same broken payload — so the gateway fails
    /// over to the next backend instead of burning retries.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, TransportError::MalformedOutput { .. })
    }

    /// A server-suggested minimum delay before retrying, if the fault carried
    /// one (rate limits do).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            TransportError::RateLimited { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout { waited_ms } => {
                write!(f, "backend timed out after {waited_ms} ms")
            }
            TransportError::RateLimited { retry_after_ms } => {
                write!(f, "backend rate-limited the call; retry after {retry_after_ms} ms")
            }
            TransportError::TransientServer { message } => {
                write!(f, "transient server error: {message}")
            }
            TransportError::MalformedOutput { preview } => {
                write!(f, "backend returned malformed output: {preview:?}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_trip() {
        let errors = [
            TransportError::Timeout { waited_ms: 100 },
            TransportError::RateLimited { retry_after_ms: 50 },
            TransportError::TransientServer { message: "oops".into() },
            TransportError::MalformedOutput { preview: "{...".into() },
        ];
        for (err, class) in errors.iter().zip(FaultClass::ALL) {
            assert_eq!(err.class(), class);
            assert!(!err.to_string().is_empty());
            assert!(!class.label().is_empty());
        }
    }

    #[test]
    fn only_malformed_output_is_not_retryable() {
        assert!(TransportError::Timeout { waited_ms: 1 }.is_retryable());
        assert!(TransportError::RateLimited { retry_after_ms: 1 }.is_retryable());
        assert!(TransportError::TransientServer { message: String::new() }.is_retryable());
        assert!(!TransportError::MalformedOutput { preview: String::new() }.is_retryable());
    }

    #[test]
    fn rate_limits_carry_a_retry_hint() {
        assert_eq!(TransportError::RateLimited { retry_after_ms: 75 }.retry_after_ms(), Some(75));
        assert_eq!(TransportError::Timeout { waited_ms: 75 }.retry_after_ms(), None);
    }
}
