//! Gateway metrics: per-backend counters plus gateway-level routing counters.
//!
//! Same discipline as `lingua-serve`'s metrics: all mutation behind one
//! mutex, snapshots are plain serializable values, and everything the
//! resilience machinery does — attempts, retries, faults by class, breaker
//! transitions, budget denials, fallback hits, added latency — is visible in
//! one place.

use crate::{BreakerState, BreakerStats, FaultClass};
use parking_lot::Mutex;
use serde::Serialize;

/// Counters for a single backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct BackendCounters {
    /// Transport calls placed (first tries and retries).
    pub attempts: u64,
    /// Requests this backend answered successfully.
    pub served: u64,
    /// Retries against this backend (attempts beyond a request's first).
    pub retries: u64,
    /// Faults by class.
    pub timeouts: u64,
    pub rate_limited: u64,
    pub transient: u64,
    pub malformed: u64,
    /// Calls skipped because the token budget denied admission.
    pub budget_denied: u64,
    /// Calls skipped because the circuit breaker was open.
    pub breaker_denied: u64,
    /// Total backoff delay charged against this backend, in milliseconds.
    pub backoff_ms: u64,
}

impl BackendCounters {
    pub fn faults(&self) -> u64 {
        self.timeouts + self.rate_limited + self.transient + self.malformed
    }

    fn record_fault(&mut self, class: FaultClass) {
        match class {
            FaultClass::Timeout => self.timeouts += 1,
            FaultClass::RateLimited => self.rate_limited += 1,
            FaultClass::TransientServer => self.transient += 1,
            FaultClass::MalformedOutput => self.malformed += 1,
        }
    }
}

#[derive(Default)]
struct MetricsInner {
    backends: Vec<BackendCounters>,
    requests: u64,
    failovers: u64,
    cancelled: u64,
    degraded_cache_hits: u64,
    degraded_fallbacks: u64,
    degraded_static: u64,
    batches: u64,
    batch_members: u64,
    batch_splits: u64,
}

/// Interior-mutable metrics registry owned by the gateway.
pub struct GatewayMetrics {
    inner: Mutex<MetricsInner>,
}

impl GatewayMetrics {
    pub fn new(backend_count: usize) -> GatewayMetrics {
        GatewayMetrics {
            inner: Mutex::new(MetricsInner {
                backends: vec![BackendCounters::default(); backend_count],
                ..MetricsInner::default()
            }),
        }
    }

    pub(crate) fn request(&self) {
        self.inner.lock().requests += 1;
    }

    pub(crate) fn attempt(&self, backend: usize, is_retry: bool) {
        let mut inner = self.inner.lock();
        inner.backends[backend].attempts += 1;
        if is_retry {
            inner.backends[backend].retries += 1;
        }
    }

    pub(crate) fn served(&self, backend: usize) {
        self.inner.lock().backends[backend].served += 1;
    }

    pub(crate) fn fault(&self, backend: usize, class: FaultClass) {
        self.inner.lock().backends[backend].record_fault(class);
    }

    pub(crate) fn budget_denied(&self, backend: usize) {
        self.inner.lock().backends[backend].budget_denied += 1;
    }

    pub(crate) fn breaker_denied(&self, backend: usize) {
        self.inner.lock().backends[backend].breaker_denied += 1;
    }

    pub(crate) fn backoff(&self, backend: usize, delay_ms: u64) {
        self.inner.lock().backends[backend].backoff_ms += delay_ms;
    }

    pub(crate) fn failover(&self) {
        self.inner.lock().failovers += 1;
    }

    pub(crate) fn cancelled(&self) {
        self.inner.lock().cancelled += 1;
    }

    /// Book one batched call of `members` requests. Members count into
    /// `requests` too, so the top line keeps meaning "logical requests
    /// entering the gateway" whichever path they took.
    pub(crate) fn batch(&self, members: usize) {
        let mut inner = self.inner.lock();
        inner.batches += 1;
        inner.batch_members += members as u64;
        inner.requests += members as u64;
    }

    /// Book a batched call whose single wire attempt faulted and whose
    /// members were re-dispatched through the per-member resilient loop.
    pub(crate) fn batch_split(&self) {
        self.inner.lock().batch_splits += 1;
    }

    pub(crate) fn degraded_cache_hit(&self) {
        self.inner.lock().degraded_cache_hits += 1;
    }

    pub(crate) fn degraded_fallback(&self) {
        self.inner.lock().degraded_fallbacks += 1;
    }

    pub(crate) fn degraded_static(&self) {
        self.inner.lock().degraded_static += 1;
    }

    pub(crate) fn snapshot(
        &self,
        names: &[String],
        breakers: &[(BreakerState, BreakerStats)],
    ) -> GatewaySnapshot {
        let inner = self.inner.lock();
        let backends = inner
            .backends
            .iter()
            .zip(names)
            .zip(breakers)
            .map(|((counters, name), (state, stats))| BackendSnapshot {
                name: name.clone(),
                counters: *counters,
                breaker_state: state.label(),
                breaker: *stats,
            })
            .collect();
        GatewaySnapshot {
            requests: inner.requests,
            failovers: inner.failovers,
            cancelled: inner.cancelled,
            degraded_cache_hits: inner.degraded_cache_hits,
            degraded_fallbacks: inner.degraded_fallbacks,
            degraded_static: inner.degraded_static,
            batches: inner.batches,
            batch_members: inner.batch_members,
            batch_splits: inner.batch_splits,
            backends,
        }
    }
}

/// Point-in-time view of one backend.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BackendSnapshot {
    pub name: String,
    pub counters: BackendCounters,
    pub breaker_state: &'static str,
    pub breaker: BreakerStats,
}

/// Point-in-time view of the whole gateway.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GatewaySnapshot {
    /// Requests entering the gateway (one per `complete`/`embed` call).
    pub requests: u64,
    /// Requests that moved past an attempted or shielded backend to the next.
    pub failovers: u64,
    /// Requests abandoned because the caller's deadline passed or the job was
    /// cancelled mid-flight; the gateway stops retrying and bills nothing.
    pub cancelled: u64,
    /// Requests answered from the degraded-mode response cache.
    pub degraded_cache_hits: u64,
    /// Requests answered by the degraded-mode fallback backend.
    pub degraded_fallbacks: u64,
    /// Requests answered with the static degraded notice (nothing left).
    pub degraded_static: u64,
    /// Batched calls placed (one per `complete_batch` entering the gateway).
    pub batches: u64,
    /// Member requests carried by those batched calls (also in `requests`).
    pub batch_members: u64,
    /// Batches whose first wire call faulted and fell back to per-member
    /// resilient dispatch.
    pub batch_splits: u64,
    pub backends: Vec<BackendSnapshot>,
}

impl GatewaySnapshot {
    /// Total backoff latency added across backends, in milliseconds.
    pub fn added_backoff_ms(&self) -> u64 {
        self.backends.iter().map(|b| b.counters.backoff_ms).sum()
    }

    /// Mean members per batched call (0 when no batch was placed).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_members as f64 / self.batches as f64
        }
    }

    /// Total retries across backends.
    pub fn retries(&self) -> u64 {
        self.backends.iter().map(|b| b.counters.retries).sum()
    }

    /// Total faults observed across backends.
    pub fn faults(&self) -> u64 {
        self.backends.iter().map(|b| b.counters.faults()).sum()
    }

    /// Requests that were answered degraded (cache, fallback, or static).
    pub fn degraded(&self) -> u64 {
        self.degraded_cache_hits + self.degraded_fallbacks + self.degraded_static
    }

    /// Human-readable report, matching the serve metrics style.
    pub fn report(&self) -> String {
        let mut out = format!(
            "gateway metrics\n\
             \x20 requests        {}\n\
             \x20 failovers       {}\n\
             \x20 cancelled       {}\n\
             \x20 degraded        {} ({} cached, {} fallback, {} static)\n",
            self.requests,
            self.failovers,
            self.cancelled,
            self.degraded(),
            self.degraded_cache_hits,
            self.degraded_fallbacks,
            self.degraded_static,
        );
        if self.batches > 0 {
            out.push_str(&format!(
                "\x20 batches         {} ({} members, {:.2} mean occupancy, {} split)\n",
                self.batches,
                self.batch_members,
                self.mean_batch_occupancy(),
                self.batch_splits,
            ));
        }
        for backend in &self.backends {
            let c = &backend.counters;
            out.push_str(&format!(
                "\x20 backend {:<12} {} attempts, {} served, {} retries, {} faults \
                 (t/r/s/m {}/{}/{}/{}), {} budget-denied, {} breaker-denied, \
                 {} ms backoff, breaker {} (o/h/c {}/{}/{}, {} denied)\n",
                backend.name,
                c.attempts,
                c.served,
                c.retries,
                c.faults(),
                c.timeouts,
                c.rate_limited,
                c.transient,
                c.malformed,
                c.budget_denied,
                c.breaker_denied,
                c.backoff_ms,
                backend.breaker_state,
                backend.breaker.opened,
                backend.breaker.half_opened,
                backend.breaker.closed,
                backend.breaker.denied,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_on_the_right_backend() {
        let metrics = GatewayMetrics::new(2);
        metrics.request();
        metrics.attempt(0, false);
        metrics.fault(0, FaultClass::Timeout);
        metrics.backoff(0, 40);
        metrics.attempt(0, true);
        metrics.fault(0, FaultClass::TransientServer);
        metrics.failover();
        metrics.attempt(1, false);
        metrics.served(1);
        let names = vec!["primary".to_string(), "standby".to_string()];
        let breakers = vec![(BreakerState::Closed, BreakerStats::default()); 2];
        let snap = metrics.snapshot(&names, &breakers);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.backends[0].counters.attempts, 2);
        assert_eq!(snap.backends[0].counters.retries, 1);
        assert_eq!(snap.backends[0].counters.faults(), 2);
        assert_eq!(snap.backends[0].counters.backoff_ms, 40);
        assert_eq!(snap.backends[1].counters.served, 1);
        assert_eq!(snap.added_backoff_ms(), 40);
        assert_eq!(snap.retries(), 1);
        assert_eq!(snap.faults(), 2);
        assert!(snap.report().contains("primary"));
        assert!(snap.report().contains("standby"));
    }

    #[test]
    fn degraded_paths_are_distinguished() {
        let metrics = GatewayMetrics::new(1);
        metrics.degraded_cache_hit();
        metrics.degraded_fallback();
        metrics.degraded_static();
        let snap = metrics
            .snapshot(&["only".to_string()], &[(BreakerState::Open, BreakerStats::default())]);
        assert_eq!(snap.degraded(), 3);
        assert_eq!(snap.degraded_cache_hits, 1);
        assert_eq!(snap.degraded_fallbacks, 1);
        assert_eq!(snap.degraded_static, 1);
        assert!(snap.report().contains("breaker open"));
    }
}
