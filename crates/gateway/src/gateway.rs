//! The gateway: infallible façade over fallible backends.
//!
//! [`Gateway`] implements [`LlmService`], so it drops into
//! `ContextFactory::build_with_llm` and the serve registry unchanged, and
//! hides the whole resilience story behind that contract:
//!
//! 1. **Retry** — a faulted call is retried against the same backend with
//!    jittered exponential backoff, up to the policy's attempt budget.
//!    Non-retryable faults (malformed output) skip straight to failover.
//! 2. **Circuit breaking** — each backend has a breaker; an unhealthy
//!    backend is shielded from traffic until its probes recover.
//! 3. **Failover** — when a backend is exhausted, denied, or shielded, the
//!    request moves to the next backend in priority order.
//! 4. **Degraded mode** — when every backend fails: answer from the stale
//!    response cache if this prompt succeeded before, else ask the (cheap,
//!    reliable) fallback backend, else return a static degraded notice.
//! 5. **Batch splitting** — a batch is first placed as one wire call; if
//!    that call faults, each member is re-dispatched through the resilient
//!    loop individually, so one poisoned member cannot exhaust the retry
//!    budget of (or degrade) its healthy siblings.
//!
//! Backoff delays are charged to the simulated-latency counter rather than
//! slept, like every latency in this workspace — deterministic and fast.

use crate::fault::prompt_key;
use crate::{
    BackoffPolicy, BreakerConfig, BreakerState, CircuitBreaker, GatewayMetrics, GatewaySnapshot,
    LlmTransport, TokenBudget, TokenBudgetConfig, TransportError,
};
use lingua_llm_sim::cancel;
use lingua_llm_sim::cost::count_tokens;
use lingua_llm_sim::hotpath::DEFAULT_SHARDS;
use lingua_llm_sim::{
    AtomicUsage, BatchOutcome, CodeGenSpec, CompletionRequest, GeneratedCode, LlmService,
    ShardedLru, Usage, CANCELLED_NOTICE,
};
use lingua_trace::{SpanKind, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Answer returned when every backend and every degraded path is gone.
pub const DEGRADED_NOTICE: &str =
    "[gateway degraded] all backends unavailable; answer withheld, retry later";

/// Embedding dimension of the degraded-mode zero vector (the simulator's
/// hashing-vectorizer width).
const DEGRADED_EMBED_DIM: usize = 512;

/// Gateway tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Retry budget and backoff schedule (shared by all backends).
    pub backoff: BackoffPolicy,
    /// Circuit-breaker tuning (one breaker per backend).
    pub breaker: BreakerConfig,
    /// Optional per-backend token budget; `None` disables rate limiting.
    pub budget: Option<TokenBudgetConfig>,
    /// Capacity of the degraded-mode stale-response cache.
    pub stale_cache_capacity: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backoff: BackoffPolicy::default(),
            breaker: BreakerConfig::default(),
            budget: None,
            stale_cache_capacity: 1_024,
        }
    }
}

/// Outcome of the resilient call loop. `Cancelled` is distinct from
/// `Exhausted` so a job whose deadline fired mid-retry does not fall through
/// to the degraded ladder (stale cache / fallback / static notice) — the
/// caller is gone, so serving a degraded answer would only distort metrics.
enum Resilient<T> {
    Served(T),
    Exhausted,
    Cancelled,
}

struct Backend {
    name: String,
    transport: Arc<dyn LlmTransport>,
    breaker: CircuitBreaker,
    budget: Option<TokenBudget>,
}

/// Builder for [`Gateway`]. Backends are tried in registration order —
/// register the preferred backend first.
pub struct GatewayBuilder {
    config: GatewayConfig,
    backends: Vec<Arc<dyn LlmTransport>>,
    fallback: Option<Arc<dyn LlmTransport>>,
    tracer: Tracer,
}

impl GatewayBuilder {
    pub fn config(mut self, config: GatewayConfig) -> GatewayBuilder {
        self.config = config;
        self
    }

    pub fn backoff(mut self, backoff: BackoffPolicy) -> GatewayBuilder {
        self.config.backoff = backoff;
        self
    }

    pub fn breaker(mut self, breaker: BreakerConfig) -> GatewayBuilder {
        self.config.breaker = breaker;
        self
    }

    pub fn budget(mut self, budget: TokenBudgetConfig) -> GatewayBuilder {
        self.config.budget = Some(budget);
        self
    }

    /// Register a backend (priority = registration order).
    pub fn backend(mut self, transport: Arc<dyn LlmTransport>) -> GatewayBuilder {
        self.backends.push(transport);
        self
    }

    /// Register the degraded-mode fallback: a cheap backend consulted only
    /// after every regular backend has failed. It bypasses retry, breakers,
    /// and budgets.
    pub fn fallback(mut self, transport: Arc<dyn LlmTransport>) -> GatewayBuilder {
        self.fallback = Some(transport);
        self
    }

    /// Emit `gateway` spans and routing instants (attempts, faults, backoff,
    /// failover, breaker/budget denials, degraded serves) to `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> GatewayBuilder {
        self.tracer = tracer;
        self
    }

    /// Build the gateway.
    ///
    /// # Panics
    /// If no backend was registered — a gateway with nothing behind it is a
    /// configuration bug, caught at construction like `ServeConfig`
    /// validation.
    pub fn build(self) -> Gateway {
        assert!(!self.backends.is_empty(), "gateway requires at least one backend");
        let backends: Vec<Backend> = self
            .backends
            .into_iter()
            .map(|transport| Backend {
                name: transport.name().to_string(),
                breaker: CircuitBreaker::new(self.config.breaker),
                budget: self.config.budget.map(TokenBudget::new),
                transport,
            })
            .collect();
        Gateway {
            metrics: GatewayMetrics::new(backends.len()),
            backends,
            fallback: self.fallback,
            stale: ShardedLru::new(self.config.stale_cache_capacity, DEFAULT_SHARDS),
            config: self.config,
            degraded_usage: AtomicUsage::default(),
            added_backoff_ms: AtomicU64::new(0),
            tracer: self.tracer,
        }
    }
}

/// Resilient multi-backend LLM gateway. See the module docs for the policy.
pub struct Gateway {
    backends: Vec<Backend>,
    fallback: Option<Arc<dyn LlmTransport>>,
    config: GatewayConfig,
    metrics: GatewayMetrics,
    /// Degraded-mode stale-response cache: the same lock-striped sharded LRU
    /// as the simulator's hot path, keyed by the shared prompt fingerprint.
    stale: ShardedLru<Arc<str>>,
    /// Usage booked by the gateway itself (degraded cache serves).
    degraded_usage: AtomicUsage,
    /// Backoff latency charged (virtually) against this gateway.
    added_backoff_ms: AtomicU64,
    tracer: Tracer,
}

impl Gateway {
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder {
            config: GatewayConfig::default(),
            backends: Vec::new(),
            fallback: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Convenience: a single-backend gateway with default tuning.
    pub fn over(transport: Arc<dyn LlmTransport>) -> Gateway {
        Gateway::builder().backend(transport).build()
    }

    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    pub fn backend_names(&self) -> Vec<&str> {
        self.backends.iter().map(|b| b.name.as_str()).collect()
    }

    /// Breaker state of the backend at `index` (registration order).
    pub fn breaker_state(&self, index: usize) -> BreakerState {
        self.backends[index].breaker.state()
    }

    /// Point-in-time metrics across all backends.
    pub fn snapshot(&self) -> GatewaySnapshot {
        let names: Vec<String> = self.backends.iter().map(|b| b.name.clone()).collect();
        let breakers: Vec<_> =
            self.backends.iter().map(|b| (b.breaker.state(), b.breaker.stats())).collect();
        self.metrics.snapshot(&names, &breakers)
    }

    fn remember(&self, key: u64, response: &str) {
        // A cancellation notice is a verdict about one job's deadline, not
        // an answer to the prompt — caching it would poison future degraded
        // recalls of the same fingerprint with a stale "[cancelled]" reply.
        if response == CANCELLED_NOTICE {
            return;
        }
        self.stale.insert(key, Arc::from(response));
    }

    fn recall(&self, key: u64) -> Option<Arc<str>> {
        self.stale.get(key)
    }

    /// Run `op` against the backends with retry, breaking, and failover.
    /// `Served` carries the first success; `Exhausted` means every backend
    /// was exhausted and the caller should degrade; `Cancelled` means the
    /// calling job's deadline passed (or it was cancelled) and the loop
    /// stopped burning attempts and backoff on it. The cancellation checks
    /// consult the thread-local [`cancel::CancelScope`]; with no scope
    /// entered they are strict no-ops, so standalone gateway behavior (and
    /// every deterministic counter walk in the chaos tests) is unchanged.
    fn call_resilient<T>(
        &self,
        key: u64,
        est_tokens: u64,
        op: impl Fn(&dyn LlmTransport) -> Result<T, TransportError>,
    ) -> Resilient<T> {
        for (idx, backend) in self.backends.iter().enumerate() {
            if cancel::current_cancelled().is_some() {
                return Resilient::Cancelled;
            }
            if idx > 0 {
                self.metrics.failover();
                self.tracer.instant(SpanKind::Gateway, "failover", || {
                    vec![("to".into(), backend.name.clone())]
                });
            }
            if let Some(budget) = &backend.budget {
                if !budget.try_consume(est_tokens) {
                    self.metrics.budget_denied(idx);
                    self.tracer.instant(SpanKind::Gateway, "budget_denied", || {
                        vec![("backend".into(), backend.name.clone())]
                    });
                    continue;
                }
            }
            let mut attempt: u32 = 0;
            loop {
                if attempt > 0 && cancel::current_cancelled().is_some() {
                    return Resilient::Cancelled;
                }
                if !backend.breaker.acquire() {
                    self.metrics.breaker_denied(idx);
                    self.tracer.instant(SpanKind::Gateway, "breaker_denied", || {
                        vec![("backend".into(), backend.name.clone())]
                    });
                    break;
                }
                self.metrics.attempt(idx, attempt > 0);
                let is_retry = attempt > 0;
                self.tracer.instant(SpanKind::Gateway, "attempt", || {
                    vec![
                        ("backend".into(), backend.name.clone()),
                        ("retry".into(), is_retry.to_string()),
                    ]
                });
                match op(backend.transport.as_ref()) {
                    Ok(value) => {
                        let before = backend.breaker.state();
                        backend.breaker.on_success();
                        let after = backend.breaker.state();
                        self.metrics.served(idx);
                        self.tracer.instant(SpanKind::Gateway, "served", || {
                            let mut attrs = vec![("backend".into(), backend.name.clone())];
                            if after != before {
                                attrs.push(("breaker".into(), after.label().into()));
                            }
                            attrs
                        });
                        return Resilient::Served(value);
                    }
                    Err(err) => {
                        let before = backend.breaker.state();
                        backend.breaker.on_failure();
                        let after = backend.breaker.state();
                        self.metrics.fault(idx, err.class());
                        self.tracer.instant(SpanKind::Gateway, "fault", || {
                            let mut attrs = vec![
                                ("backend".into(), backend.name.clone()),
                                ("class".into(), err.class().label().into()),
                            ];
                            if after != before {
                                attrs.push(("breaker".into(), after.label().into()));
                            }
                            attrs
                        });
                        attempt += 1;
                        if !err.is_retryable() || attempt >= self.config.backoff.max_attempts {
                            break;
                        }
                        // A job past its deadline must not be charged backoff
                        // it will never wait out.
                        if cancel::current_cancelled().is_some() {
                            return Resilient::Cancelled;
                        }
                        let mut delay = self.config.backoff.delay_ms(key, attempt);
                        if let Some(hint) = err.retry_after_ms() {
                            delay = delay.max(hint);
                        }
                        self.metrics.backoff(idx, delay);
                        self.added_backoff_ms.fetch_add(delay, Ordering::Relaxed);
                        self.tracer.instant(SpanKind::Gateway, "backoff", || {
                            vec![
                                ("backend".into(), backend.name.clone()),
                                ("delay_ms".into(), delay.to_string()),
                            ]
                        });
                    }
                }
            }
        }
        Resilient::Exhausted
    }

    /// One batched wire call against the first backend whose budget and
    /// breaker admit it. `None` means the attempt faulted (or no backend
    /// admitted the batch); the caller then re-dispatches per member instead
    /// of replaying every healthy member against the same fault.
    fn batch_first_attempt(&self, requests: &[CompletionRequest]) -> Option<BatchOutcome> {
        let est_tokens: u64 = requests.iter().map(|r| count_tokens(&r.prompt) as u64).sum();
        for (idx, backend) in self.backends.iter().enumerate() {
            if idx > 0 {
                self.metrics.failover();
                self.tracer.instant(SpanKind::Gateway, "failover", || {
                    vec![("to".into(), backend.name.clone())]
                });
            }
            if let Some(budget) = &backend.budget {
                if !budget.try_consume(est_tokens) {
                    self.metrics.budget_denied(idx);
                    self.tracer.instant(SpanKind::Gateway, "budget_denied", || {
                        vec![("backend".into(), backend.name.clone())]
                    });
                    continue;
                }
            }
            if !backend.breaker.acquire() {
                self.metrics.breaker_denied(idx);
                self.tracer.instant(SpanKind::Gateway, "breaker_denied", || {
                    vec![("backend".into(), backend.name.clone())]
                });
                continue;
            }
            self.metrics.attempt(idx, false);
            self.tracer.instant(SpanKind::Gateway, "attempt", || {
                vec![("backend".into(), backend.name.clone()), ("retry".into(), "false".into())]
            });
            return match backend.transport.complete_batch(requests) {
                Ok(outcome) => {
                    backend.breaker.on_success();
                    self.metrics.served(idx);
                    self.tracer.instant(SpanKind::Gateway, "served", || {
                        vec![("backend".into(), backend.name.clone())]
                    });
                    Some(outcome)
                }
                Err(err) => {
                    backend.breaker.on_failure();
                    self.metrics.fault(idx, err.class());
                    self.tracer.instant(SpanKind::Gateway, "fault", || {
                        vec![
                            ("backend".into(), backend.name.clone()),
                            ("class".into(), err.class().label().into()),
                        ]
                    });
                    None
                }
            };
        }
        None
    }

    /// Degraded ladder for a single batch member: stale cache, then the
    /// fallback backend, then the static notice.
    fn degrade_member(&self, request: &CompletionRequest, outcome: &mut BatchOutcome) {
        let member_key = request.fingerprint();
        let est = count_tokens(&request.prompt);
        if let Some(stale) = self.recall(member_key) {
            self.metrics.degraded_cache_hit();
            self.tracer.instant(SpanKind::Gateway, "degraded_cache_hit", Vec::new);
            let mut split = Usage::default();
            split.record_cached(est, count_tokens(&stale));
            self.degraded_usage.record_cached(est, count_tokens(&stale));
            outcome.batch_usage.merge(&split);
            outcome.splits.push(split);
            outcome.responses.push(stale);
            return;
        }
        if let Some(fallback) = &self.fallback {
            let before = fallback.usage();
            if let Ok(response) = fallback.complete(request) {
                self.metrics.degraded_fallback();
                self.tracer.instant(SpanKind::Gateway, "degraded_fallback", Vec::new);
                let split = fallback.usage().since(&before);
                self.remember(member_key, &response);
                outcome.batch_usage.merge(&split);
                outcome.splits.push(split);
                outcome.responses.push(Arc::from(response));
                return;
            }
        }
        self.metrics.degraded_static();
        self.tracer.instant(SpanKind::Gateway, "degraded_static", Vec::new);
        outcome.splits.push(Usage::default());
        outcome.responses.push(Arc::from(DEGRADED_NOTICE));
    }

    /// Book a cancelled request: counter, trace instant, span path.
    fn note_cancelled(&self, span: &mut lingua_trace::SpanGuard) {
        self.metrics.cancelled();
        self.tracer.instant(SpanKind::Gateway, "cancelled", Vec::new);
        span.attr("path", "cancelled");
    }

    /// The backend the infallible code-generation endpoints route to: the
    /// first one whose breaker isn't open, else the primary.
    fn codegen_backend(&self) -> &Backend {
        self.backends
            .iter()
            .find(|b| b.breaker.state() != BreakerState::Open)
            .unwrap_or(&self.backends[0])
    }
}

impl LlmService for Gateway {
    fn complete(&self, request: &CompletionRequest) -> String {
        self.metrics.request();
        let mut span = self.tracer.span(SpanKind::Gateway, "complete");
        // The memoized fingerprint: whoever hashed this prompt first — serve,
        // the simulator, or this call — every later layer reuses the value.
        let key = request.fingerprint();
        let est_tokens = count_tokens(&request.prompt) as u64;
        match self.call_resilient(key, est_tokens, |transport| transport.complete(request)) {
            Resilient::Served(response) => {
                span.attr("path", "served");
                self.remember(key, &response);
                return response;
            }
            Resilient::Cancelled => {
                self.note_cancelled(&mut span);
                return CANCELLED_NOTICE.to_string();
            }
            Resilient::Exhausted => {}
        }
        // Degraded mode: stale cache, then fallback backend, then notice.
        if let Some(stale) = self.recall(key) {
            self.metrics.degraded_cache_hit();
            self.tracer.instant(SpanKind::Gateway, "degraded_cache_hit", Vec::new);
            span.attr("path", "degraded_cache");
            self.degraded_usage.record_cached(est_tokens as usize, count_tokens(&stale));
            return stale.as_ref().to_string();
        }
        if let Some(fallback) = &self.fallback {
            if let Ok(response) = fallback.complete(request) {
                self.metrics.degraded_fallback();
                self.tracer.instant(SpanKind::Gateway, "degraded_fallback", Vec::new);
                span.attr("path", "degraded_fallback");
                self.remember(key, &response);
                return response;
            }
        }
        self.metrics.degraded_static();
        self.tracer.instant(SpanKind::Gateway, "degraded_static", Vec::new);
        span.attr("path", "degraded_static");
        DEGRADED_NOTICE.to_string()
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> BatchOutcome {
        if requests.is_empty() {
            return BatchOutcome::default();
        }
        self.metrics.batch(requests.len());
        let mut span = self.tracer.span(SpanKind::Gateway, "complete_batch");
        span.attr("members", requests.len().to_string());
        if cancel::current_cancelled().is_some() {
            self.note_cancelled(&mut span);
            return BatchOutcome {
                responses: requests.iter().map(|_| Arc::from(CANCELLED_NOTICE)).collect(),
                splits: vec![Usage::default(); requests.len()],
                batch_usage: Usage::default(),
            };
        }
        // First try: the whole batch as ONE wire call, so the no-fault
        // common case keeps its single-call amortization.
        if let Some(outcome) = self.batch_first_attempt(requests) {
            span.attr("path", "served");
            for (request, response) in requests.iter().zip(&outcome.responses) {
                self.remember(request.fingerprint(), response);
            }
            return outcome;
        }
        // The batched call faulted (or nothing admitted it). Retrying the
        // whole batch would replay every healthy member against the same
        // fault and let one persistently poisoned member drag its siblings
        // into degraded mode, so the retry splits per member: each rides the
        // full resilient loop — retry schedule, breakers, failover — as a
        // single-member batch, and only exhausted members degrade.
        span.attr("path", "split");
        self.metrics.batch_split();
        self.tracer.instant(SpanKind::Gateway, "batch_split", || {
            vec![("members".into(), requests.len().to_string())]
        });
        let mut outcome = BatchOutcome::with_capacity(requests.len());
        let mut cancelled = false;
        for request in requests {
            if cancelled {
                outcome.splits.push(Usage::default());
                outcome.responses.push(Arc::from(CANCELLED_NOTICE));
                continue;
            }
            let member_key = request.fingerprint();
            let est_tokens = count_tokens(&request.prompt) as u64;
            match self.call_resilient(member_key, est_tokens, |transport| {
                transport.complete_batch(std::slice::from_ref(request))
            }) {
                Resilient::Served(mut single) => {
                    let response = single.responses.pop().expect("single-member batch");
                    let split = single.splits.pop().unwrap_or(single.batch_usage);
                    self.remember(member_key, &response);
                    outcome.batch_usage.merge(&split);
                    outcome.splits.push(split);
                    outcome.responses.push(response);
                }
                Resilient::Cancelled => {
                    // The job died mid-split: notice this member and every
                    // remaining sibling without burning further attempts.
                    self.note_cancelled(&mut span);
                    cancelled = true;
                    outcome.splits.push(Usage::default());
                    outcome.responses.push(Arc::from(CANCELLED_NOTICE));
                }
                Resilient::Exhausted => self.degrade_member(request, &mut outcome),
            }
        }
        outcome
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        self.metrics.request();
        let mut span = self.tracer.span(SpanKind::Gateway, "embed");
        let key = prompt_key(text);
        let est_tokens = count_tokens(text) as u64;
        match self.call_resilient(key, est_tokens, |transport| transport.embed(text)) {
            Resilient::Served(embedding) => {
                span.attr("path", "served");
                return embedding;
            }
            Resilient::Cancelled => {
                self.note_cancelled(&mut span);
                return vec![0.0; DEGRADED_EMBED_DIM];
            }
            Resilient::Exhausted => {}
        }
        if let Some(fallback) = &self.fallback {
            if let Ok(embedding) = fallback.embed(text) {
                self.metrics.degraded_fallback();
                self.tracer.instant(SpanKind::Gateway, "degraded_fallback", Vec::new);
                span.attr("path", "degraded_fallback");
                return embedding;
            }
        }
        self.metrics.degraded_static();
        self.tracer.instant(SpanKind::Gateway, "degraded_static", Vec::new);
        span.attr("path", "degraded_static");
        vec![0.0; DEGRADED_EMBED_DIM]
    }

    fn usage(&self) -> Usage {
        let mut total = self.degraded_usage.snapshot();
        for backend in &self.backends {
            total.merge(&backend.transport.usage());
        }
        if let Some(fallback) = &self.fallback {
            total.merge(&fallback.usage());
        }
        total
    }

    fn simulated_latency_ms(&self) -> u64 {
        let mut total = self.added_backoff_ms.load(Ordering::Relaxed);
        for backend in &self.backends {
            total += backend.transport.simulated_latency_ms();
        }
        if let Some(fallback) = &self.fallback {
            total += fallback.simulated_latency_ms();
        }
        total
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.codegen_backend().transport.generate_code(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.codegen_backend().transport.suggest_fix(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.codegen_backend().transport.repair_code(spec, previous, suggestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultInjector, FaultPlan, ServiceTransport};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    fn sim(seed: u64) -> Arc<SimLlm> {
        let world = WorldSpec::generate(13);
        Arc::new(SimLlm::with_seed(&world, seed))
    }

    fn prompt(i: usize) -> CompletionRequest {
        CompletionRequest::new(format!("Summarize. Text: gateway request number {i}"))
    }

    #[test]
    fn transparent_over_a_healthy_backend() {
        let service = sim(1);
        let gateway = Gateway::over(Arc::new(ServiceTransport::new("sim", service.clone())));
        for i in 0..10 {
            let via_gateway = gateway.complete(&prompt(i));
            let direct = service.complete(&prompt(i));
            assert_eq!(via_gateway, direct, "gateway must not alter responses");
        }
        let snap = gateway.snapshot();
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.backends[0].counters.served, 10);
        assert_eq!(snap.retries(), 0);
        assert_eq!(snap.faults(), 0);
        assert_eq!(snap.degraded(), 0);
    }

    #[test]
    fn retries_absorb_transient_faults() {
        // 30% transient faults, 4 attempts: per-prompt failure probability is
        // 0.3^4 ≈ 0.8% — but this test is deterministic anyway; assert that
        // whatever faults the plan injected were all absorbed.
        let service = sim(2);
        let plan = FaultPlan::transient(0.3, 21);
        let injector = Arc::new(FaultInjector::new("flaky", service.clone(), plan));
        let reference = sim(2);
        let gateway = Gateway::builder()
            .backend(injector)
            .backend(Arc::new(ServiceTransport::new("standby", reference.clone())))
            .build();
        for i in 0..40 {
            assert_eq!(gateway.complete(&prompt(i)), reference.complete(&prompt(i)));
        }
        let snap = gateway.snapshot();
        assert_eq!(snap.degraded(), 0, "all faults must be absorbed upstream of degraded mode");
        assert!(snap.faults() > 0, "the plan should have injected something at 30%");
        assert_eq!(snap.backends[0].counters.served + snap.backends[1].counters.served, 40);
    }

    #[test]
    fn fallback_serves_when_all_backends_are_down() {
        let service = sim(3);
        let injector =
            Arc::new(FaultInjector::new("down", service.clone(), FaultPlan::transient(1.0, 5)));
        let cheap = sim(3);
        let gateway = Gateway::builder()
            .backend(injector)
            .fallback(Arc::new(ServiceTransport::new("cheap", cheap.clone())))
            .build();
        for i in 0..5 {
            assert_eq!(gateway.complete(&prompt(i)), cheap.complete(&prompt(i)));
        }
        let snap = gateway.snapshot();
        assert_eq!(snap.degraded_fallbacks, 5);
        assert_eq!(snap.degraded_static, 0);
        assert_eq!(snap.backends[0].counters.served, 0);
    }

    #[test]
    fn static_notice_when_nothing_is_left() {
        let service = sim(4);
        let injector = Arc::new(FaultInjector::new("down", service, FaultPlan::transient(1.0, 5)));
        let gateway = Gateway::over(injector);
        assert_eq!(gateway.complete(&prompt(0)), DEGRADED_NOTICE);
        assert_eq!(gateway.snapshot().degraded_static, 1);
    }

    #[test]
    fn stale_cache_answers_repeat_prompts_in_an_outage() {
        // Find a prompt the plan passes on attempt 0 but then faults for the
        // next four attempts (1..=4): the first request succeeds and primes
        // the stale cache, the second exhausts retries and is served stale.
        let plan = FaultPlan::transient(0.7, 77);
        let candidate = (0..5_000)
            .map(|i| format!("Summarize. Text: stale candidate {i}"))
            .find(|p| plan.decide(p, 0).is_none() && (1..=4).all(|a| plan.decide(p, a).is_some()))
            .expect("a pass-then-fault prompt exists at 70%");
        let service = sim(6);
        let injector = Arc::new(FaultInjector::new("flaky", service.clone(), plan));
        let gateway = Gateway::over(injector);
        let request = CompletionRequest::new(candidate);
        let first = gateway.complete(&request);
        assert_ne!(first, DEGRADED_NOTICE);
        let second = gateway.complete(&request);
        assert_eq!(second, first, "stale cache must replay the last good answer");
        let snap = gateway.snapshot();
        assert_eq!(snap.degraded_cache_hits, 1);
        assert_eq!(snap.degraded_static, 0);
        // The stale serve is booked as a cached call with exact token savings.
        let usage = gateway.usage();
        assert_eq!(usage.cached_calls, 1);
        assert!(usage.tokens_out_saved > 0);
    }

    #[test]
    fn breaker_shields_a_dead_backend_and_failover_takes_over() {
        // Deterministic walk: primary faults every call (rate 1.0), one
        // attempt per request, breaker trips after 4 failures (min_calls 4,
        // threshold 0.5), cooldown 3 denials, probes 2/2.
        let service = sim(7);
        let injector =
            Arc::new(FaultInjector::new("dead", service.clone(), FaultPlan::transient(1.0, 9)));
        let standby = sim(7);
        let gateway = Gateway::builder()
            .backend(injector)
            .backend(Arc::new(ServiceTransport::new("standby", standby.clone())))
            .backoff(BackoffPolicy { max_attempts: 1, ..BackoffPolicy::default() })
            .breaker(BreakerConfig {
                window: 8,
                min_calls: 4,
                failure_threshold: 0.5,
                cooldown_denials: 3,
                probe_trials: 2,
                probe_successes: 2,
            })
            .build();
        for i in 0..12 {
            assert_eq!(gateway.complete(&prompt(i)), standby.complete(&prompt(i)));
        }
        let snap = gateway.snapshot();
        let primary = &snap.backends[0];
        // Requests 1-4 attempt and fault (breaker opens on the 4th); 5-7 are
        // denied (cooldown); 8 probes and faults (reopen); 9-11 denied; 12
        // probes and faults (reopen again).
        assert_eq!(primary.counters.attempts, 6);
        assert_eq!(primary.counters.faults(), 6);
        assert_eq!(primary.counters.breaker_denied, 6);
        assert_eq!(primary.breaker.opened, 3);
        assert_eq!(primary.breaker.half_opened, 2);
        assert_eq!(snap.backends[1].counters.served, 12);
        assert_eq!(snap.failovers, 12);
        assert_eq!(snap.degraded(), 0);
    }

    #[test]
    fn token_budget_sheds_to_the_next_backend() {
        let service = sim(8);
        let standby = sim(8);
        let gateway = Gateway::builder()
            .backend(Arc::new(ServiceTransport::new("metered", service.clone())))
            .backend(Arc::new(ServiceTransport::new("standby", standby.clone())))
            .budget(TokenBudgetConfig { capacity: 1, refill_per_check: 0 })
            .build();
        // Every prompt costs more than one token, so the metered backend
        // denies everything; the standby has its own (also empty) bucket, so
        // traffic lands degraded-static... unless the standby budget admits.
        // Give the request somewhere to go: the standby's bucket is
        // independent and equally empty, so this exercises the budget-denied
        // counters on both.
        let response = gateway.complete(&prompt(0));
        assert_eq!(response, DEGRADED_NOTICE);
        let snap = gateway.snapshot();
        assert_eq!(snap.backends[0].counters.budget_denied, 1);
        assert_eq!(snap.backends[1].counters.budget_denied, 1);
        assert_eq!(snap.backends[0].counters.attempts, 0);
    }

    #[test]
    fn usage_and_latency_aggregate_across_backends() {
        let primary = sim(9);
        let standby = sim(10);
        let gateway = Gateway::builder()
            .backend(Arc::new(ServiceTransport::new("a", primary.clone())))
            .backend(Arc::new(ServiceTransport::new("b", standby.clone())))
            .build();
        gateway.complete(&prompt(0));
        let usage = gateway.usage();
        assert_eq!(usage.calls, primary.usage().calls + standby.usage().calls);
        assert!(gateway.simulated_latency_ms() >= primary.simulated_latency_ms());
    }

    #[test]
    fn cancelled_scope_short_circuits_before_any_attempt() {
        use lingua_llm_sim::{CancelScope, CancelToken};
        let service = sim(12);
        let injector = Arc::new(FaultInjector::new("down", service, FaultPlan::transient(1.0, 17)));
        let gateway = Gateway::over(injector);
        let token = CancelToken::unbounded();
        token.cancel();
        let _scope = CancelScope::enter(&token);
        assert_eq!(gateway.complete(&prompt(0)), CANCELLED_NOTICE);
        let snap = gateway.snapshot();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.backends[0].counters.attempts, 0, "no attempt for a dead job");
        assert_eq!(snap.added_backoff_ms(), 0);
        assert_eq!(snap.degraded(), 0, "cancellation must not fall into degraded mode");
        // Nothing was billed for the short-circuited request.
        assert_eq!(gateway.usage().calls, 0);
    }

    #[test]
    fn deadline_firing_mid_retry_stops_backoff_and_attempts() {
        use lingua_llm_sim::{CancelScope, CancelToken};

        /// Faults every call, and cancels the current scope's token on the
        /// first — modelling a deadline that fires while the gateway is in
        /// its retry loop.
        struct CancelOnFirstCall {
            token: CancelToken,
        }
        impl LlmTransport for CancelOnFirstCall {
            fn name(&self) -> &str {
                "cancel-on-first"
            }
            fn complete(&self, _request: &CompletionRequest) -> Result<String, TransportError> {
                self.token.cancel();
                Err(TransportError::TransientServer { message: "boom".into() })
            }
            fn embed(&self, _text: &str) -> Result<Vec<f64>, TransportError> {
                self.token.cancel();
                Err(TransportError::TransientServer { message: "boom".into() })
            }
            fn usage(&self) -> Usage {
                Usage::default()
            }
            fn simulated_latency_ms(&self) -> u64 {
                0
            }
            fn generate_code(&self, _spec: &CodeGenSpec) -> GeneratedCode {
                unreachable!("not exercised")
            }
            fn suggest_fix(&self, _source: &str, _failures: &[String]) -> String {
                unreachable!("not exercised")
            }
            fn repair_code(
                &self,
                _spec: &CodeGenSpec,
                _previous: &GeneratedCode,
                _suggestion: &str,
            ) -> GeneratedCode {
                unreachable!("not exercised")
            }
        }

        let token = CancelToken::unbounded();
        let gateway = Gateway::over(Arc::new(CancelOnFirstCall { token: token.clone() }));
        let _scope = CancelScope::enter(&token);
        assert_eq!(gateway.complete(&prompt(0)), CANCELLED_NOTICE);
        let snap = gateway.snapshot();
        let primary = &snap.backends[0].counters;
        assert_eq!(primary.attempts, 1, "exactly the in-flight attempt");
        assert_eq!(primary.faults(), 1);
        assert_eq!(primary.backoff_ms, 0, "no backoff charged past the deadline");
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.degraded(), 0);
    }

    #[test]
    fn batched_requests_travel_the_resilient_loop_as_one_call() {
        let service = sim(14);
        let reference = sim(14);
        let gateway = Gateway::over(Arc::new(ServiceTransport::new("sim", service)));
        let requests: Vec<CompletionRequest> = (0..3).map(prompt).collect();
        let outcome = gateway.complete_batch(&requests);
        for (request, response) in requests.iter().zip(&outcome.responses) {
            assert_eq!(response.as_ref(), reference.complete(request));
        }
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(summed, outcome.batch_usage);
        assert_eq!(outcome.batch_usage.calls, 1, "one batched backend call");
        let snap = gateway.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batch_members, 3);
        assert_eq!(snap.requests, 3, "members count as logical requests");
        assert!((snap.mean_batch_occupancy() - 3.0).abs() < f64::EPSILON);
        assert_eq!(snap.backends[0].counters.served, 1, "the transport saw one call");
        // Every member was remembered for the degraded stale cache.
        for request in &requests {
            gateway.recall(request.fingerprint()).expect("remembered");
        }
    }

    #[test]
    fn batch_faults_split_into_per_member_retries() {
        // A faulted batched call no longer retries the whole batch: the
        // members split and ride the resilient loop individually, so the
        // transient members are absorbed by their own retry schedules.
        let service = sim(15);
        let plan = FaultPlan::transient(0.3, 23);
        // Make the first wire call fault deterministically: at least one of
        // the six members must fault on its attempt 0.
        assert!(
            (0..6).any(|i| plan.decide(&prompt(i).prompt, 0).is_some()),
            "seed must fault the batched first attempt"
        );
        let injector = Arc::new(FaultInjector::new("flaky", service, plan));
        let standby = sim(15);
        let reference = sim(15);
        let gateway = Gateway::builder()
            .backend(injector)
            .backend(Arc::new(ServiceTransport::new("standby", standby)))
            .build();
        let requests: Vec<CompletionRequest> = (0..6).map(prompt).collect();
        let outcome = gateway.complete_batch(&requests);
        for (request, response) in requests.iter().zip(&outcome.responses) {
            assert_eq!(response.as_ref(), reference.complete(request));
        }
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(summed, outcome.batch_usage, "conservation holds across the split");
        let snap = gateway.snapshot();
        assert_eq!(snap.degraded(), 0, "per-member retries absorbed the member faults");
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batch_splits, 1, "the faulted wire call split the batch");
    }

    #[test]
    fn a_poisoned_member_degrades_alone_after_the_split() {
        // One member that faults on every attempt it will ever see must not
        // drag its healthy siblings into degraded mode: after the split the
        // siblings are served by the primary and only the poisoned member
        // walks the degraded ladder.
        let plan = FaultPlan::transient(0.35, 57);
        // Healthy members pass every attempt they can see (batched attempt 0
        // plus up to four split attempts); the poisoned member faults on all
        // of them.
        let healthy = |p: &str| (0..=4).all(|a| plan.decide(p, a).is_none());
        let poisoned = |p: &str| (0..=4).all(|a| plan.decide(p, a).is_some());
        let candidates =
            || (0..50_000).map(|i| format!("Summarize. Text: poisoned member candidate {i}"));
        let mut good = candidates().filter(|p| healthy(p));
        let requests: Vec<CompletionRequest> = [
            good.next().expect("a healthy prompt exists"),
            candidates().find(|p| poisoned(p)).expect("a poisoned prompt exists"),
            good.next().expect("a second healthy prompt exists"),
        ]
        .map(CompletionRequest::new)
        .into_iter()
        .collect();
        let service = sim(19);
        let reference = sim(19);
        let cheap = sim(20);
        let cheap_reference = sim(20);
        let injector = Arc::new(FaultInjector::new("flaky", service, plan));
        let gateway = Gateway::builder()
            .backend(injector)
            .fallback(Arc::new(ServiceTransport::new("cheap", cheap)))
            .build();
        let outcome = gateway.complete_batch(&requests);
        assert_eq!(outcome.responses[0].as_ref(), reference.complete(&requests[0]));
        assert_eq!(outcome.responses[2].as_ref(), reference.complete(&requests[2]));
        assert_eq!(
            outcome.responses[1].as_ref(),
            cheap_reference.complete(&requests[1]),
            "the poisoned member is answered by the fallback"
        );
        let snap = gateway.snapshot();
        assert_eq!(snap.batch_splits, 1);
        assert_eq!(snap.degraded_fallbacks, 1, "exactly the poisoned member degraded");
        assert_eq!(snap.degraded(), 1);
    }

    #[test]
    fn batch_degrades_per_member_to_the_fallback() {
        let service = sim(16);
        let injector = Arc::new(FaultInjector::new("down", service, FaultPlan::transient(1.0, 31)));
        let cheap = sim(16);
        let gateway = Gateway::builder()
            .backend(injector)
            .fallback(Arc::new(ServiceTransport::new("cheap", cheap.clone())))
            .build();
        let requests: Vec<CompletionRequest> = (0..4).map(prompt).collect();
        let outcome = gateway.complete_batch(&requests);
        for (request, response) in requests.iter().zip(&outcome.responses) {
            assert_eq!(response.as_ref(), cheap.complete(request));
        }
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(summed, outcome.batch_usage, "conservation holds on the degraded path");
        assert_eq!(gateway.snapshot().degraded_fallbacks, 4);
    }

    #[test]
    fn cancelled_batch_returns_notices_and_bills_nothing() {
        use lingua_llm_sim::{CancelScope, CancelToken};
        let service = sim(17);
        let gateway = Gateway::over(Arc::new(ServiceTransport::new("sim", service)));
        let token = CancelToken::unbounded();
        token.cancel();
        let _scope = CancelScope::enter(&token);
        let requests: Vec<CompletionRequest> = (0..3).map(prompt).collect();
        let outcome = gateway.complete_batch(&requests);
        assert!(outcome.responses.iter().all(|r| r.as_ref() == CANCELLED_NOTICE));
        assert_eq!(outcome.batch_usage, Usage::default());
        assert!(outcome.splits.iter().all(|s| *s == Usage::default()));
        assert_eq!(gateway.usage().calls, 0);
        assert_eq!(gateway.snapshot().cancelled, 1);
    }

    #[test]
    fn cancelled_fallback_notice_is_never_remembered() {
        use lingua_llm_sim::{CancelScope, CancelToken};

        /// Cancels the scope's token mid-attempt, then fails with a
        /// non-retryable fault — the one shape that reaches the degraded
        /// ladder while the thread-local scope is already cancelled.
        struct CancelThenMalformed {
            token: CancelToken,
        }
        impl LlmTransport for CancelThenMalformed {
            fn name(&self) -> &str {
                "cancel-then-malformed"
            }
            fn complete(&self, _request: &CompletionRequest) -> Result<String, TransportError> {
                self.token.cancel();
                Err(TransportError::MalformedOutput { preview: "garbage".into() })
            }
            fn embed(&self, _text: &str) -> Result<Vec<f64>, TransportError> {
                Err(TransportError::MalformedOutput { preview: "garbage".into() })
            }
            fn usage(&self) -> Usage {
                Usage::default()
            }
            fn simulated_latency_ms(&self) -> u64 {
                0
            }
            fn generate_code(&self, _spec: &CodeGenSpec) -> GeneratedCode {
                unreachable!("not exercised")
            }
            fn suggest_fix(&self, _source: &str, _failures: &[String]) -> String {
                unreachable!("not exercised")
            }
            fn repair_code(
                &self,
                _spec: &CodeGenSpec,
                _previous: &GeneratedCode,
                _suggestion: &str,
            ) -> GeneratedCode {
                unreachable!("not exercised")
            }
        }

        let cheap = sim(18);
        let reference = sim(18);
        let token = CancelToken::unbounded();
        let gateway = Gateway::builder()
            .backend(Arc::new(CancelThenMalformed { token: token.clone() }))
            .fallback(Arc::new(ServiceTransport::new("cheap", cheap)))
            .build();
        let requests: Vec<CompletionRequest> = (0..2).map(prompt).collect();
        {
            // First batch: the backend cancels the job mid-attempt and fails
            // non-retryably, so the degraded per-member ladder runs under a
            // cancelled scope and the fallback (a scope-aware simulator)
            // answers every member with the cancellation notice.
            let _scope = CancelScope::enter(&token);
            let outcome = gateway.complete_batch(&requests);
            assert!(outcome.responses.iter().all(|r| r.as_ref() == CANCELLED_NOTICE));
            // The notice is a verdict on this job, not an answer to the
            // prompt: it must not enter the stale cache.
            for request in &requests {
                assert!(
                    gateway.recall(request.fingerprint()).is_none(),
                    "cancellation notice poisoned the stale cache"
                );
            }
        }
        // A later uncancelled job over the same prompts must get real
        // fallback answers, not a replayed notice.
        let outcome = gateway.complete_batch(&requests);
        for (request, response) in requests.iter().zip(&outcome.responses) {
            assert_eq!(response.as_ref(), reference.complete(request));
        }
    }

    #[test]
    fn codegen_routes_around_an_open_breaker() {
        let dead = sim(11);
        let injector = Arc::new(FaultInjector::new("dead", dead, FaultPlan::transient(1.0, 13)));
        let healthy = sim(11);
        let gateway = Gateway::builder()
            .backend(injector)
            .backend(Arc::new(ServiceTransport::new("healthy", healthy.clone())))
            .backoff(BackoffPolicy { max_attempts: 1, ..BackoffPolicy::default() })
            .breaker(BreakerConfig { window: 4, min_calls: 2, ..BreakerConfig::default() })
            .build();
        // Trip the primary's breaker with completions.
        for i in 0..4 {
            gateway.complete(&prompt(i));
        }
        assert_eq!(gateway.breaker_state(0), BreakerState::Open);
        let healthy_calls_before = healthy.usage().calls;
        let spec = CodeGenSpec {
            task: "tokenize the text".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        gateway.generate_code(&spec);
        assert!(
            healthy.usage().calls > healthy_calls_before,
            "codegen must route to the healthy backend"
        );
    }
}
