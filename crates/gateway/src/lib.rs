//! # lingua-gateway
//!
//! Resilient multi-backend LLM gateway for the Lingua Manga system.
//!
//! The paper treats the LLM as an expensive black box and spends its
//! optimizer budget minimizing *calls*; a production deployment must also
//! survive the calls that *fail*. This crate restores fallibility at the
//! transport layer and then hides it again behind the infallible
//! [`lingua_llm_sim::LlmService`] contract the rest of the system programs
//! against:
//!
//! ```text
//!   modules / serve workers
//!            │ LlmService (infallible)
//!            ▼
//!        ┌─────────┐   retry + backoff, circuit breaking,
//!        │ Gateway │   failover, token budget, degraded mode
//!        └─────────┘
//!            │ LlmTransport (Result<_, TransportError>)
//!      ┌─────┴──────┬───────────────┐
//!      ▼            ▼               ▼
//!  primary      standby         fallback (degraded only)
//! ```
//!
//! [`FaultInjector`] is the chaos substrate: a deterministic, seedable
//! wrapper over [`lingua_llm_sim::SimLlm`] whose fault decisions are a pure
//! function of `(seed, prompt, attempt)` — chaos tests replay the plan and
//! assert **exact** retry, breaker, and fallback counts.

mod backoff;
mod batch;
mod breaker;
mod error;
mod fault;
mod gateway;
mod limiter;
mod metrics;
mod transport;

pub use backoff::BackoffPolicy;
pub use batch::{BatchConfig, BatchSnapshot, Batcher, FlushReason, FlushRecord};
pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use error::{FaultClass, TransportError};
pub use fault::{prompt_key, FaultCounts, FaultInjector, FaultPlan};
pub use gateway::{Gateway, GatewayBuilder, GatewayConfig, DEGRADED_NOTICE};
pub use limiter::{TokenBudget, TokenBudgetConfig};
pub use metrics::{BackendCounters, BackendSnapshot, GatewayMetrics, GatewaySnapshot};
pub use transport::{LlmTransport, ServiceTransport};
