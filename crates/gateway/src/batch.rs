//! Continuous micro-batching: accumulate compatible completion requests from
//! concurrent jobs into one batched backend call.
//!
//! [`Batcher`] sits between the serve workers and whatever [`LlmService`]
//! answers completions (the simulator directly, or a [`crate::Gateway`]).
//! Each `complete` call *joins* the currently-filling batch and blocks until
//! the batch flushes; the flush itself is one [`LlmService::complete_batch`]
//! call, so N members pay one backend round trip between them.
//!
//! # Flush state machine
//!
//! A batch generation moves through three states, with **no background
//! thread** — every transition runs on a member's own thread:
//!
//! 1. **Filling.** Members push onto the pending list under the state lock.
//!    The *first* member of a generation becomes the **timer leader**: it
//!    waits on a condvar with a deadline of `max_wait` from its arrival.
//! 2. **Size flush.** The member whose arrival fills the batch to
//!    `max_batch_size` takes the whole pending list, bumps the generation
//!    (which wakes the timer leader into follower mode), and flushes on its
//!    own thread.
//! 3. **Window flush.** If the deadline fires first, the timer leader takes
//!    whatever accumulated — possibly just itself — and flushes.
//!
//! Members that are neither leader nor filler simply wait on their response
//! cell. A panic inside the flush fills every unfilled cell with an abort
//! notice (RAII guard), so siblings never hang on a poisoned batch.
//!
//! # Cancellation
//!
//! Each member captures its job's [`CancelToken`] (the thread-local scope)
//! at submit time. At flush time, members whose token has fired are answered
//! with [`CANCELLED_NOTICE`] and **excluded from the backend call** — a
//! cancelled member leaves the batch unbilled without poisoning its
//! siblings. The flush runs on one member's thread, and that member's
//! deadline is not its siblings' problem — so the flusher's own thread-local
//! cancel scope is **suspended** ([`cancel::suspend`]) around the backend
//! call. Without the shield, a cancellation-aware backend (the gateway's
//! retry loop consults the thread-local scope) would answer the *entire*
//! batch with the cancelled notice whenever the flushing member's token had
//! fired; with it, every layer below sees uncancellable shared work.

use lingua_llm_sim::cancel::{self, CancelToken, CANCELLED_NOTICE};
use lingua_llm_sim::{
    BatchOutcome, CodeGenSpec, CompletionRequest, GeneratedCode, LlmService, Usage,
};
use lingua_trace::{SpanKind, Tracer};
use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Response handed to members of a batch whose flush panicked before their
/// response was produced. The panic itself propagates on the flusher's
/// thread (serve's panic isolation turns it into a typed job failure);
/// siblings get this notice instead of hanging.
const BATCH_ABORTED_NOTICE: &str =
    "[batch aborted] the batch flush failed before this member's response was produced";

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many members are pending (size trigger).
    /// Clamped to at least 1.
    pub max_batch_size: usize,
    /// Flush when the oldest pending member has waited this long (window
    /// trigger). `ZERO` degenerates to per-call flushing.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { max_batch_size: 8, max_wait: Duration::from_millis(2) }
    }
}

/// Why a batch flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FlushReason {
    /// The batch reached `max_batch_size`.
    Size,
    /// The `max_wait` window expired on the timer leader.
    Window,
}

impl FlushReason {
    pub fn label(&self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Window => "window",
        }
    }
}

/// One flushed batch, as recorded in the replay log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FlushRecord {
    /// Members the batch held when it flushed (live + cancelled).
    pub occupancy: usize,
    /// Members that reached the backend.
    pub live: usize,
    /// Members answered with the cancelled notice and excluded unbilled.
    pub cancelled: usize,
    /// Live members answered without billing (cache hits and in-batch
    /// coalesces; see [`BatchOutcome::saved_members`]).
    pub saved: usize,
    pub reason: FlushReason,
    /// Exact usage the backend booked for this flush.
    pub usage: Usage,
}

/// Point-in-time batching counters. Exact once submitters quiesce.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct BatchSnapshot {
    /// Batches flushed.
    pub batches: u64,
    /// Members across all flushed batches (live + cancelled).
    pub members: u64,
    /// Flushes triggered by reaching `max_batch_size`.
    pub size_flushes: u64,
    /// Flushes triggered by the `max_wait` window expiring.
    pub window_flushes: u64,
    /// Live members answered without billing (cache/coalesce savings).
    pub saved_members: u64,
    /// Members dropped from their batch by cancellation, unbilled.
    pub cancelled_members: u64,
    /// Largest occupancy any flush reached.
    pub max_occupancy: u64,
}

impl BatchSnapshot {
    /// Mean members per flushed batch (0 when nothing flushed).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.members as f64 / self.batches as f64
        }
    }

    /// Human-readable report, matching the serve/gateway metrics style.
    pub fn report(&self) -> String {
        format!(
            "batcher metrics\n\
             \x20 batches         {} ({} members, {:.2} mean / {} max occupancy)\n\
             \x20 flush triggers  {} size, {} window\n\
             \x20 saved members   {} (cache hits + in-batch coalesces)\n\
             \x20 cancelled       {} members left their batch unbilled\n",
            self.batches,
            self.members,
            self.mean_occupancy(),
            self.max_occupancy,
            self.size_flushes,
            self.window_flushes,
            self.saved_members,
            self.cancelled_members,
        )
    }
}

/// One member's response slot: filled exactly once by whichever thread runs
/// the flush, waited on by the member that submitted it.
struct MemberCell {
    slot: Mutex<Option<Arc<str>>>,
    ready: Condvar,
}

impl MemberCell {
    fn new() -> Arc<MemberCell> {
        Arc::new(MemberCell { slot: Mutex::new(None), ready: Condvar::new() })
    }

    /// Fill the slot if still empty and wake the waiter. First write wins,
    /// so the abort guard cannot clobber a real response.
    fn fill(&self, response: Arc<str>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(response);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> Arc<str> {
        let mut slot = self.slot.lock();
        while slot.is_none() {
            self.ready.wait(&mut slot);
        }
        Arc::clone(slot.as_ref().expect("slot filled"))
    }
}

struct Member {
    request: CompletionRequest,
    /// The submitting job's cancel token, captured from the thread-local
    /// scope at submit time (the flush runs on a different thread).
    cancel: Option<CancelToken>,
    cell: Arc<MemberCell>,
}

struct BatchState {
    pending: Vec<Member>,
    /// Bumped every time a batch is taken for flushing; the timer leader
    /// watches it to learn that a size flush beat its deadline.
    generation: u64,
}

#[derive(Default)]
struct BatchCounters {
    batches: AtomicU64,
    members: AtomicU64,
    size_flushes: AtomicU64,
    window_flushes: AtomicU64,
    saved_members: AtomicU64,
    cancelled_members: AtomicU64,
    max_occupancy: AtomicU64,
}

/// How many flush records the replay log retains; counters keep counting
/// past it.
const FLUSH_LOG_CAP: usize = 1024;

/// Fills every still-empty member cell with the abort notice if the flush
/// unwinds, so a panicking backend cannot strand sibling members.
struct AbortGuard<'a> {
    cells: &'a [Arc<MemberCell>],
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        for cell in self.cells {
            cell.fill(Arc::from(BATCH_ABORTED_NOTICE));
        }
    }
}

/// Continuous micro-batcher over any [`LlmService`]. See the module docs
/// for the flush state machine.
pub struct Batcher {
    inner: Arc<dyn LlmService>,
    config: BatchConfig,
    state: Mutex<BatchState>,
    flush_cv: Condvar,
    counters: BatchCounters,
    flush_log: Mutex<Vec<FlushRecord>>,
    tracer: Tracer,
}

impl Batcher {
    pub fn new(inner: Arc<dyn LlmService>, config: BatchConfig) -> Batcher {
        Batcher {
            inner,
            config: BatchConfig { max_batch_size: config.max_batch_size.max(1), ..config },
            state: Mutex::new(BatchState { pending: Vec::new(), generation: 0 }),
            flush_cv: Condvar::new(),
            counters: BatchCounters::default(),
            flush_log: Mutex::new(Vec::new()),
            tracer: Tracer::disabled(),
        }
    }

    /// Emit `batch` flush spans (with per-member usage-split instants) to
    /// `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Batcher {
        self.tracer = tracer;
        self
    }

    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// The service underneath (for tests and metric fold-ins).
    pub fn inner(&self) -> &Arc<dyn LlmService> {
        &self.inner
    }

    /// Members currently waiting in the filling batch.
    pub fn pending_members(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Point-in-time batching counters.
    pub fn snapshot(&self) -> BatchSnapshot {
        BatchSnapshot {
            batches: self.counters.batches.load(Ordering::Relaxed),
            members: self.counters.members.load(Ordering::Relaxed),
            size_flushes: self.counters.size_flushes.load(Ordering::Relaxed),
            window_flushes: self.counters.window_flushes.load(Ordering::Relaxed),
            saved_members: self.counters.saved_members.load(Ordering::Relaxed),
            cancelled_members: self.counters.cancelled_members.load(Ordering::Relaxed),
            max_occupancy: self.counters.max_occupancy.load(Ordering::Relaxed),
        }
    }

    /// The first [`FLUSH_LOG_CAP`] flushed batches, in flush order — the
    /// replay suite's oracle for exact compositions and flush reasons.
    pub fn flush_log(&self) -> Vec<FlushRecord> {
        self.flush_log.lock().clone()
    }

    /// Flush one taken batch on the calling thread: drop cancelled members,
    /// place the batched backend call, fill every cell, book the metrics.
    fn flush(&self, batch: Vec<Member>, reason: FlushReason) {
        let occupancy = batch.len();
        let mut live_requests: Vec<CompletionRequest> = Vec::with_capacity(occupancy);
        let mut live_cells: Vec<Arc<MemberCell>> = Vec::with_capacity(occupancy);
        let mut cancelled = 0usize;
        for member in batch {
            let dead = member.cancel.as_ref().is_some_and(|token| token.status().is_some());
            if dead {
                cancelled += 1;
                member.cell.fill(Arc::from(CANCELLED_NOTICE));
            } else {
                live_requests.push(member.request);
                live_cells.push(member.cell);
            }
        }
        let mut span = self.tracer.span(SpanKind::Batch, "flush");
        span.attr("reason", reason.label());
        span.attr("occupancy", occupancy.to_string());
        span.attr("live", live_requests.len().to_string());
        span.attr("cancelled", cancelled.to_string());
        let outcome = {
            // If the backend panics, the guard answers every unfilled cell
            // with the abort notice before the panic leaves this frame.
            let _abort = AbortGuard { cells: &live_cells };
            // The flush runs on one member's thread, but the call it places
            // belongs to every live sibling. Suspend the flusher's own
            // cancel scope so a cancellation-aware backend (the gateway's
            // retry loop) cannot turn the whole batch into a cancelled
            // notice just because the flusher's token fired — per-member
            // cancellation was already settled by the filter above.
            let _shield = cancel::suspend();
            let outcome = self.inner.complete_batch(&live_requests);
            for (cell, response) in live_cells.iter().zip(&outcome.responses) {
                cell.fill(Arc::clone(response));
            }
            outcome
        };
        let saved = outcome.saved_members();
        for (index, split) in outcome.splits.iter().enumerate() {
            self.tracer.instant_under(Some(span.id()), SpanKind::Batch, "split", || {
                vec![
                    ("member".into(), index.to_string()),
                    ("calls".into(), split.calls.to_string()),
                    ("tokens_in".into(), split.tokens_in.to_string()),
                    ("tokens_out".into(), split.tokens_out.to_string()),
                    ("cached".into(), (split.cached_calls > 0).to_string()),
                ]
            });
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.members.fetch_add(occupancy as u64, Ordering::Relaxed);
        self.counters.saved_members.fetch_add(saved as u64, Ordering::Relaxed);
        self.counters.cancelled_members.fetch_add(cancelled as u64, Ordering::Relaxed);
        self.counters.max_occupancy.fetch_max(occupancy as u64, Ordering::Relaxed);
        match reason {
            FlushReason::Size => self.counters.size_flushes.fetch_add(1, Ordering::Relaxed),
            FlushReason::Window => self.counters.window_flushes.fetch_add(1, Ordering::Relaxed),
        };
        let mut log = self.flush_log.lock();
        if log.len() < FLUSH_LOG_CAP {
            log.push(FlushRecord {
                occupancy,
                live: live_requests.len(),
                cancelled,
                saved,
                reason,
                usage: outcome.batch_usage,
            });
        }
    }

    /// Join the filling batch and block until it flushes. See the module
    /// docs for the three exits (filler, timer leader, follower).
    fn submit(&self, request: &CompletionRequest) -> Arc<str> {
        let cell = MemberCell::new();
        let member =
            Member { request: request.clone(), cancel: cancel::current(), cell: Arc::clone(&cell) };
        let mut state = self.state.lock();
        let my_generation = state.generation;
        state.pending.push(member);
        if state.pending.len() >= self.config.max_batch_size {
            // Size trigger: this arrival filled the batch. Take it, advance
            // the generation (the timer leader wakes, sees the new
            // generation, and falls through to waiting on its cell), flush
            // on this thread.
            let batch = std::mem::take(&mut state.pending);
            state.generation += 1;
            self.flush_cv.notify_all();
            drop(state);
            self.flush(batch, FlushReason::Size);
        } else if state.pending.len() == 1 {
            // Timer leader: hold the window open for up to `max_wait`.
            let deadline = Instant::now() + self.config.max_wait;
            loop {
                let timed_out = self.flush_cv.wait_until(&mut state, deadline).timed_out();
                if state.generation != my_generation {
                    // A size flush took the batch (this member included).
                    drop(state);
                    break;
                }
                if timed_out {
                    let batch = std::mem::take(&mut state.pending);
                    state.generation += 1;
                    drop(state);
                    self.flush(batch, FlushReason::Window);
                    break;
                }
                // Spurious wakeup: same generation, deadline not reached.
            }
        } else {
            drop(state);
        }
        cell.wait()
    }
}

impl LlmService for Batcher {
    fn complete(&self, request: &CompletionRequest) -> String {
        self.complete_shared(request).as_ref().to_string()
    }

    fn complete_shared(&self, request: &CompletionRequest) -> Arc<str> {
        // A job that is already dead never joins a batch: same short-circuit
        // as the simulator and gateway, nothing billed anywhere.
        if cancel::current_cancelled().is_some() {
            return Arc::from(CANCELLED_NOTICE);
        }
        self.submit(request)
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> BatchOutcome {
        // Already a batch: forward it whole rather than re-queueing the
        // members one at a time behind the window.
        self.inner.complete_batch(requests)
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        self.inner.embed(text)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.inner.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.inner.generate_code(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.inner.suggest_fix(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.inner.repair_code(spec, previous, suggestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::{CancelScope, SimLlm, SimLlmConfig};
    use std::sync::Barrier;

    fn sim(seed: u64) -> Arc<SimLlm> {
        let world = WorldSpec::generate(19);
        Arc::new(SimLlm::new(
            &world,
            SimLlmConfig { seed, cache_enabled: true, ..Default::default() },
        ))
    }

    fn prompt(i: usize) -> CompletionRequest {
        CompletionRequest::new(format!("Summarize. Text: batch member number {i}"))
    }

    #[test]
    fn lone_member_window_flushes_and_matches_direct_answers() {
        let service = sim(1);
        let reference = sim(1);
        let batcher =
            Batcher::new(service, BatchConfig { max_batch_size: 8, max_wait: Duration::ZERO });
        for i in 0..3 {
            assert_eq!(batcher.complete(&prompt(i)), reference.complete(&prompt(i)));
        }
        let snap = batcher.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.members, 3);
        assert_eq!(snap.window_flushes, 3);
        assert_eq!(snap.size_flushes, 0);
        assert_eq!(snap.max_occupancy, 1);
        assert!((snap.mean_occupancy() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn full_batch_size_flushes_in_one_backend_call() {
        const MEMBERS: usize = 4;
        let service = sim(2);
        let reference = sim(2);
        let batcher = Arc::new(Batcher::new(
            service.clone(),
            BatchConfig { max_batch_size: MEMBERS, max_wait: Duration::from_secs(30) },
        ));
        let barrier = Barrier::new(MEMBERS);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..MEMBERS)
                .map(|i| {
                    let batcher = Arc::clone(&batcher);
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        batcher.complete(&prompt(i))
                    })
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                assert_eq!(handle.join().expect("no panic"), reference.complete(&prompt(i)));
            }
        });
        let snap = batcher.snapshot();
        assert_eq!(snap.batches, 1, "all members shared one flush");
        assert_eq!(snap.members, MEMBERS as u64);
        assert_eq!(snap.size_flushes, 1);
        assert_eq!(snap.window_flushes, 0);
        assert_eq!(snap.max_occupancy, MEMBERS as u64);
        // One batched backend call for the whole group, billed once.
        assert_eq!(service.usage().calls, 1);
        let log = batcher.flush_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].occupancy, MEMBERS);
        assert_eq!(log[0].reason, FlushReason::Size);
        assert_eq!(log[0].usage, service.usage());
    }

    #[test]
    fn cancelled_member_leaves_the_batch_unbilled_without_poisoning_siblings() {
        let service = sim(3);
        let reference = sim(3);
        let batcher = Arc::new(Batcher::new(
            service.clone(),
            BatchConfig { max_batch_size: 2, max_wait: Duration::from_secs(30) },
        ));
        let token = CancelToken::unbounded();
        std::thread::scope(|scope| {
            let doomed = {
                let batcher = Arc::clone(&batcher);
                let token = token.clone();
                scope.spawn(move || {
                    let _scope = CancelScope::enter(&token);
                    batcher.complete(&prompt(0))
                })
            };
            // Wait for the doomed member to join the batch, cancel its job,
            // then fill the batch so the flush happens on this thread.
            while batcher.pending_members() < 1 {
                std::thread::yield_now();
            }
            token.cancel();
            let survivor = batcher.complete(&prompt(1));
            assert_eq!(survivor, reference.complete(&prompt(1)));
            assert_eq!(doomed.join().expect("no panic"), CANCELLED_NOTICE);
        });
        // Only the survivor billed; the reference service made the identical
        // single call, so the ledgers must agree exactly.
        assert_eq!(service.usage(), reference.usage());
        let snap = batcher.snapshot();
        assert_eq!(snap.cancelled_members, 1);
        assert_eq!(snap.members, 2);
        assert_eq!(snap.batches, 1);
        let log = batcher.flush_log();
        assert_eq!(log[0].occupancy, 2);
        assert_eq!(log[0].live, 1);
        assert_eq!(log[0].cancelled, 1);
    }

    #[test]
    fn cancelled_window_leader_does_not_poison_siblings_through_the_gateway() {
        use crate::{Gateway, ServiceTransport};
        // The regression this guards: the window-timer leader's own job is
        // cancelled while it holds the window open. It is filtered from the
        // batch, but the flush still runs on ITS thread — and the gateway's
        // resilient loop consults the thread-local cancel scope. Without the
        // suspend shield in `flush`, the whole batch came back as the
        // cancelled notice and the live sibling was poisoned.
        let service = sim(7);
        let reference = sim(7);
        let gateway: Arc<dyn LlmService> =
            Arc::new(Gateway::over(Arc::new(ServiceTransport::new("sim", service.clone()))));
        let batcher = Arc::new(Batcher::new(
            Arc::clone(&gateway),
            BatchConfig { max_batch_size: 8, max_wait: Duration::from_millis(500) },
        ));
        let token = CancelToken::unbounded();
        std::thread::scope(|scope| {
            let doomed = {
                let batcher = Arc::clone(&batcher);
                let token = token.clone();
                scope.spawn(move || {
                    // First to join: becomes the timer leader, so the window
                    // flush will run on this (cancelled) thread.
                    let _scope = CancelScope::enter(&token);
                    batcher.complete(&prompt(0))
                })
            };
            while batcher.pending_members() < 1 {
                std::thread::yield_now();
            }
            let survivor = {
                let batcher = Arc::clone(&batcher);
                scope.spawn(move || batcher.complete(&prompt(1)))
            };
            while batcher.pending_members() < 2 {
                std::thread::yield_now();
            }
            // Cancel the leader's job while it holds the window open; the
            // deadline then fires on its thread with the scope installed.
            token.cancel();
            assert_eq!(doomed.join().expect("no panic"), CANCELLED_NOTICE);
            assert_eq!(
                survivor.join().expect("no panic"),
                reference.complete(&prompt(1)),
                "the leader's cancellation leaked into its sibling's answer"
            );
        });
        // Only the survivor was billed, through the gateway, exactly once.
        assert_eq!(service.usage(), reference.usage());
        let snap = batcher.snapshot();
        assert_eq!(snap.members, 2);
        assert_eq!(snap.cancelled_members, 1);
        assert_eq!(snap.window_flushes, 1);
        let log = batcher.flush_log();
        assert_eq!(log[0].live, 1);
        assert_eq!(log[0].cancelled, 1);
    }

    #[test]
    fn identical_prompts_coalesce_inside_one_batch() {
        const MEMBERS: usize = 4;
        let service = sim(4);
        let batcher = Arc::new(Batcher::new(
            service.clone(),
            BatchConfig { max_batch_size: MEMBERS, max_wait: Duration::from_secs(30) },
        ));
        let barrier = Barrier::new(MEMBERS);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..MEMBERS)
                .map(|_| {
                    let batcher = Arc::clone(&batcher);
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        batcher.complete(&prompt(42))
                    })
                })
                .collect();
            let answers: Vec<String> =
                handles.into_iter().map(|h| h.join().expect("no panic")).collect();
            assert!(answers.windows(2).all(|w| w[0] == w[1]));
        });
        let usage = service.usage();
        assert_eq!(usage.calls, 1, "one member computed");
        assert_eq!(usage.cached_calls, MEMBERS as u64 - 1, "the rest coalesced");
        assert_eq!(batcher.snapshot().saved_members, MEMBERS as u64 - 1);
    }

    #[test]
    fn panicking_flush_fills_sibling_cells_with_the_abort_notice() {
        /// A service whose batched entry point always panics.
        struct Exploding;
        impl LlmService for Exploding {
            fn complete(&self, _request: &CompletionRequest) -> String {
                panic!("backend exploded")
            }
            fn complete_batch(&self, _requests: &[CompletionRequest]) -> BatchOutcome {
                panic!("backend exploded")
            }
            fn embed(&self, _text: &str) -> Vec<f64> {
                Vec::new()
            }
            fn usage(&self) -> Usage {
                Usage::default()
            }
            fn simulated_latency_ms(&self) -> u64 {
                0
            }
            fn generate_code(&self, _spec: &CodeGenSpec) -> GeneratedCode {
                unreachable!("not exercised")
            }
            fn suggest_fix(&self, _source: &str, _failures: &[String]) -> String {
                unreachable!("not exercised")
            }
            fn repair_code(
                &self,
                _spec: &CodeGenSpec,
                _previous: &GeneratedCode,
                _suggestion: &str,
            ) -> GeneratedCode {
                unreachable!("not exercised")
            }
        }
        let batcher = Arc::new(Batcher::new(
            Arc::new(Exploding),
            BatchConfig { max_batch_size: 2, max_wait: Duration::from_secs(30) },
        ));
        std::thread::scope(|scope| {
            let follower = {
                let batcher = Arc::clone(&batcher);
                scope.spawn(move || batcher.complete(&prompt(0)))
            };
            while batcher.pending_members() < 1 {
                std::thread::yield_now();
            }
            // Filling the batch flushes on this thread; the backend panics
            // here, and the sibling must be released with the abort notice
            // rather than hang.
            let flusher = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                batcher.complete(&prompt(1))
            }));
            assert!(flusher.is_err(), "the flusher observes the panic");
            let sibling = follower.join().expect("follower must not panic");
            assert!(sibling.starts_with("[batch aborted]"), "got: {sibling}");
        });
    }

    #[test]
    fn dead_job_never_joins_a_batch() {
        let service = sim(5);
        let batcher = Batcher::new(service.clone(), BatchConfig::default());
        let token = CancelToken::unbounded();
        token.cancel();
        let _scope = CancelScope::enter(&token);
        assert_eq!(batcher.complete(&prompt(0)), CANCELLED_NOTICE);
        assert_eq!(batcher.snapshot().batches, 0);
        assert_eq!(service.usage(), Usage::default());
    }

    #[test]
    fn batch_size_one_degenerates_to_per_call_flushing() {
        let service = sim(6);
        let reference = sim(6);
        let batcher = Batcher::new(
            service,
            BatchConfig { max_batch_size: 1, max_wait: Duration::from_secs(30) },
        );
        assert_eq!(batcher.complete(&prompt(7)), reference.complete(&prompt(7)));
        let snap = batcher.snapshot();
        assert_eq!(snap.size_flushes, 1, "size trigger fires immediately at capacity 1");
        assert_eq!(snap.window_flushes, 0);
    }

    #[test]
    fn snapshot_report_reads_like_the_other_metric_blocks() {
        let service = sim(8);
        let batcher =
            Batcher::new(service, BatchConfig { max_batch_size: 8, max_wait: Duration::ZERO });
        batcher.complete(&prompt(0));
        let report = batcher.snapshot().report();
        assert!(report.contains("batcher metrics"));
        assert!(report.contains("flush triggers"));
    }
}
