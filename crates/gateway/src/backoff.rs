//! Exponential backoff with full jitter.
//!
//! The schedule follows the AWS "full jitter" recipe: the delay before retry
//! `n` is drawn uniformly from `[0, min(cap, base·2ⁿ)]`. Jitter decorrelates
//! clients that failed together (a retry stampede is how one hiccup becomes
//! an outage), and the draw is seeded so a given `(seed, key, attempt)` always
//! produces the same delay — chaos tests stay exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Retry policy: attempt budget plus the jittered-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BackoffPolicy {
    /// Base delay; retry `n` (1-based) is bounded by `base · 2ⁿ`.
    pub base_ms: u64,
    /// Upper bound on any single delay.
    pub cap_ms: u64,
    /// Maximum calls per backend per request (first try + retries).
    pub max_attempts: u32,
    /// Seed for the jitter draw.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_ms: 50, cap_ms: 2_000, max_attempts: 4, seed: 0 }
    }
}

impl BackoffPolicy {
    /// The exponential ceiling for retry `attempt` (1-based): `min(cap,
    /// base·2ⁿ)`, saturating instead of overflowing for large `attempt`.
    pub fn ceiling_ms(&self, attempt: u32) -> u64 {
        // 128-bit shift: `base · 2ⁿ` must saturate at the cap, not wrap.
        let exp = u128::from(self.base_ms) << attempt.min(64);
        exp.min(u128::from(self.cap_ms)) as u64
    }

    /// The jittered delay before retry `attempt` (1-based) of the request
    /// identified by `key`: uniform in `[0, ceiling]`, deterministic per
    /// `(seed, key, attempt)`.
    pub fn delay_ms(&self, key: u64, attempt: u32) -> u64 {
        let ceiling = self.ceiling_ms(attempt);
        if ceiling == 0 {
            return 0;
        }
        let stream = self.seed ^ key ^ u64::from(attempt).wrapping_mul(0x517c_c1b7_2722_0a95);
        let mut rng = StdRng::seed_from_u64(stream);
        rng.gen_range(0..=ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Property: every delay respects both the cap and the exponential
    /// ceiling, across a seed sweep. (Plain seed-loop property test; the
    /// bounds are the contract, the sweep is the generator.)
    #[test]
    fn delays_are_bounded_by_cap_and_exponential_ceiling() {
        for seed in 0..50u64 {
            let policy = BackoffPolicy { base_ms: 25, cap_ms: 800, seed, ..Default::default() };
            for key in [0u64, 1, 0xdead_beef, u64::MAX] {
                for attempt in 1..=12u32 {
                    let delay = policy.delay_ms(key, attempt);
                    assert!(delay <= policy.cap_ms, "delay {delay} over cap");
                    assert!(
                        delay <= policy.ceiling_ms(attempt),
                        "delay {delay} over ceiling {} at attempt {attempt}",
                        policy.ceiling_ms(attempt)
                    );
                }
            }
        }
    }

    /// Property: jitter stays within [0, base·2ⁿ] before the cap bites.
    #[test]
    fn jitter_band_is_zero_to_base_times_two_to_the_n() {
        let policy =
            BackoffPolicy { base_ms: 10, cap_ms: u64::MAX / 4, seed: 9, ..Default::default() };
        for attempt in 1..=10u32 {
            let band = policy.base_ms << attempt;
            for key in 0..200u64 {
                let delay = policy.delay_ms(key, attempt);
                assert!(delay <= band, "delay {delay} outside [0, {band}] at attempt {attempt}");
            }
        }
    }

    /// Property: the schedule is a pure function of (seed, key, attempt).
    #[test]
    fn deterministic_under_a_fixed_seed() {
        for seed in 0..20u64 {
            let a = BackoffPolicy { seed, ..Default::default() };
            let b = BackoffPolicy { seed, ..Default::default() };
            for key in 0..20u64 {
                for attempt in 1..=6u32 {
                    assert_eq!(a.delay_ms(key, attempt), b.delay_ms(key, attempt));
                }
            }
        }
    }

    #[test]
    fn different_keys_decorrelate() {
        let policy = BackoffPolicy { base_ms: 100, cap_ms: 100_000, seed: 4, ..Default::default() };
        let delays: Vec<u64> = (0..64).map(|key| policy.delay_ms(key, 5)).collect();
        let distinct: std::collections::HashSet<u64> = delays.iter().copied().collect();
        // Full jitter must spread correlated failures out; identical delays
        // across the board would recreate the stampede.
        assert!(distinct.len() > 32, "only {} distinct delays across 64 keys", distinct.len());
    }

    #[test]
    fn ceiling_saturates_instead_of_overflowing() {
        let policy = BackoffPolicy { base_ms: u64::MAX / 2, cap_ms: 1_000, ..Default::default() };
        assert_eq!(policy.ceiling_ms(63), 1_000);
        assert_eq!(policy.ceiling_ms(64), 1_000);
        let zero = BackoffPolicy { base_ms: 0, cap_ms: 0, ..Default::default() };
        assert_eq!(zero.delay_ms(1, 1), 0);
    }
}
