//! Token-budget rate limiter.
//!
//! A token bucket denominated in *LLM tokens*, not calls — the quantity both
//! hosted-API quotas and the paper's cost model are written in. The bucket
//! refills by a fixed amount per admission check (a call-count clock, like
//! the breaker's cooldown, so behaviour is a pure function of the request
//! sequence rather than wall time).

use parking_lot::Mutex;
use serde::Serialize;

/// Bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TokenBudgetConfig {
    /// Bucket capacity: the largest burst of tokens admitted back-to-back.
    pub capacity: u64,
    /// Tokens restored on every admission check.
    pub refill_per_check: u64,
}

impl Default for TokenBudgetConfig {
    fn default() -> Self {
        TokenBudgetConfig { capacity: 100_000, refill_per_check: 500 }
    }
}

#[derive(Debug)]
struct BudgetState {
    available: u64,
    denied: u64,
}

/// A token bucket guarding one backend.
#[derive(Debug)]
pub struct TokenBudget {
    config: TokenBudgetConfig,
    state: Mutex<BudgetState>,
}

impl TokenBudget {
    pub fn new(config: TokenBudgetConfig) -> TokenBudget {
        TokenBudget {
            state: Mutex::new(BudgetState { available: config.capacity, denied: 0 }),
            config,
        }
    }

    /// Admit a call expected to cost `tokens`; on admission the cost is
    /// debited. Refill happens first, so a drained bucket recovers as
    /// traffic keeps arriving.
    pub fn try_consume(&self, tokens: u64) -> bool {
        let mut state = self.state.lock();
        state.available =
            (state.available + self.config.refill_per_check).min(self.config.capacity);
        if state.available >= tokens {
            state.available -= tokens;
            true
        } else {
            state.denied += 1;
            false
        }
    }

    pub fn available(&self) -> u64 {
        self.state.lock().available
    }

    pub fn denied(&self) -> u64 {
        self.state.lock().denied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity_then_denies() {
        let budget = TokenBudget::new(TokenBudgetConfig { capacity: 1_000, refill_per_check: 0 });
        assert!(budget.try_consume(600));
        assert!(budget.try_consume(400));
        assert!(!budget.try_consume(1));
        assert_eq!(budget.denied(), 1);
    }

    #[test]
    fn refill_restores_admission() {
        let budget = TokenBudget::new(TokenBudgetConfig { capacity: 100, refill_per_check: 50 });
        assert!(budget.try_consume(100));
        // 0 available; each check refills 50.
        assert!(!budget.try_consume(100));
        assert!(budget.try_consume(100), "two refills cover the cost");
        assert!(!budget.try_consume(100));
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let budget = TokenBudget::new(TokenBudgetConfig { capacity: 100, refill_per_check: 90 });
        for _ in 0..10 {
            assert!(!budget.try_consume(150), "cost above capacity can never be admitted");
        }
        assert_eq!(budget.available(), 100);
    }
}
