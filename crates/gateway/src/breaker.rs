//! Per-backend circuit breaker.
//!
//! Classic three-state machine. **Closed**: calls flow; outcomes feed a
//! rolling window, and when the window's failure rate crosses the threshold
//! the breaker opens. **Open**: calls are denied outright; after a cooldown
//! the breaker half-opens. **HalfOpen**: a small probe budget is let through;
//! enough successes close the breaker, any failure re-opens it.
//!
//! The cooldown is counted in *denied calls*, not wall-clock time. The whole
//! workspace simulates latency rather than sleeping, and a call-count clock
//! keeps the state machine a pure function of the call sequence — which is
//! what lets chaos tests assert exact transition counts.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Tuning knobs for [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakerConfig {
    /// Rolling outcome-window size.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip (avoids
    /// opening on the first failure of a cold backend).
    pub min_calls: usize,
    /// Failure rate in the window at or above which the breaker opens.
    pub failure_threshold: f64,
    /// Denied acquisitions while Open before the breaker half-opens.
    pub cooldown_denials: u32,
    /// Probe calls admitted while HalfOpen.
    pub probe_trials: u32,
    /// Probe successes required to close (≤ `probe_trials`).
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_calls: 8,
            failure_threshold: 0.5,
            cooldown_denials: 16,
            probe_trials: 3,
            probe_successes: 2,
        }
    }
}

/// Lifetime transition counters, exported into gateway metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct BreakerStats {
    /// Closed/HalfOpen → Open transitions.
    pub opened: u64,
    /// Open → HalfOpen transitions.
    pub half_opened: u64,
    /// HalfOpen → Closed transitions.
    pub closed: u64,
    /// Calls denied while Open (the breaker's "open time" in call counts).
    pub denied: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Rolling outcomes, `true` = failure.
    window: VecDeque<bool>,
    failures: usize,
    denials_since_open: u32,
    probes_in_flight: u32,
    probe_successes: u32,
    stats: BreakerStats,
}

/// A circuit breaker guarding one backend.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                failures: 0,
                denials_since_open: 0,
                probes_in_flight: 0,
                probe_successes: 0,
                stats: BreakerStats::default(),
            }),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    pub fn stats(&self) -> BreakerStats {
        self.inner.lock().stats
    }

    /// Ask to place a call. `true` admits the call; the caller must report
    /// the outcome via [`CircuitBreaker::on_success`] /
    /// [`CircuitBreaker::on_failure`]. `false` means the backend is shielded
    /// — skip it.
    pub fn acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.denials_since_open < self.config.cooldown_denials {
                    inner.denials_since_open += 1;
                    inner.stats.denied += 1;
                    false
                } else {
                    // Cooldown served: half-open and admit this call as the
                    // first probe.
                    inner.state = BreakerState::HalfOpen;
                    inner.stats.half_opened += 1;
                    inner.probes_in_flight = 1;
                    inner.probe_successes = 0;
                    true
                }
            }
            BreakerState::HalfOpen => {
                if inner.probes_in_flight < self.config.probe_trials {
                    inner.probes_in_flight += 1;
                    true
                } else {
                    inner.stats.denied += 1;
                    false
                }
            }
        }
    }

    /// Report a successful call.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => self.push_outcome(&mut inner, false),
            BreakerState::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= self.config.probe_successes {
                    inner.state = BreakerState::Closed;
                    inner.stats.closed += 1;
                    inner.window.clear();
                    inner.failures = 0;
                }
            }
            // A straggler finishing after the breaker opened; the window is
            // stale, ignore it.
            BreakerState::Open => {}
        }
    }

    /// Report a failed call.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                self.push_outcome(&mut inner, true);
                if inner.window.len() >= self.config.min_calls {
                    let rate = inner.failures as f64 / inner.window.len() as f64;
                    if rate >= self.config.failure_threshold {
                        self.trip(&mut inner);
                    }
                }
            }
            // Any probe failure sends the breaker straight back to Open.
            BreakerState::HalfOpen => self.trip(&mut inner),
            BreakerState::Open => {}
        }
    }

    fn push_outcome(&self, inner: &mut BreakerInner, failed: bool) {
        if self.config.window == 0 {
            return;
        }
        if inner.window.len() == self.config.window {
            if let Some(true) = inner.window.pop_front() {
                inner.failures -= 1;
            }
        }
        inner.window.push_back(failed);
        if failed {
            inner.failures += 1;
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = BreakerState::Open;
        inner.stats.opened += 1;
        inner.denials_since_open = 0;
        inner.probes_in_flight = 0;
        inner.probe_successes = 0;
        inner.window.clear();
        inner.failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_calls: 4,
            failure_threshold: 0.5,
            cooldown_denials: 3,
            probe_trials: 2,
            probe_successes: 2,
        }
    }

    fn drive_open(breaker: &CircuitBreaker) {
        // Four straight failures: window is at min_calls with rate 1.0.
        for _ in 0..4 {
            assert!(breaker.acquire());
            breaker.on_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn closed_to_open_on_failure_threshold() {
        let breaker = CircuitBreaker::new(quick_config());
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Below min_calls nothing trips, even at 100% failures.
        for _ in 0..3 {
            assert!(breaker.acquire());
            breaker.on_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.acquire());
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.stats().opened, 1);
    }

    #[test]
    fn successes_dilute_the_window() {
        let breaker = CircuitBreaker::new(quick_config());
        // Alternate success/failure: rate stays at 0.5... threshold is >=,
        // so interleave 2 successes per failure to stay under it.
        for _ in 0..12 {
            assert!(breaker.acquire());
            breaker.on_success();
            assert!(breaker.acquire());
            breaker.on_success();
            assert!(breaker.acquire());
            breaker.on_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn open_denies_until_cooldown_then_half_opens() {
        let breaker = CircuitBreaker::new(quick_config());
        drive_open(&breaker);
        // cooldown_denials = 3: exactly three denied acquires, then the next
        // one half-opens and is admitted as a probe.
        assert!(!breaker.acquire());
        assert!(!breaker.acquire());
        assert!(!breaker.acquire());
        assert!(breaker.acquire(), "post-cooldown acquire becomes the probe");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert_eq!(breaker.stats().half_opened, 1);
        assert_eq!(breaker.stats().denied, 3);
    }

    /// Serve the cooldown (3 denials) and take the half-opening probe slot.
    fn drive_half_open(breaker: &CircuitBreaker) {
        for _ in 0..3 {
            assert!(!breaker.acquire());
        }
        assert!(breaker.acquire());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let breaker = CircuitBreaker::new(quick_config());
        drive_open(&breaker);
        drive_half_open(&breaker);
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::HalfOpen, "one success is not enough");
        assert!(breaker.acquire(), "second probe slot");
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.stats().closed, 1);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let breaker = CircuitBreaker::new(quick_config());
        drive_open(&breaker);
        drive_half_open(&breaker);
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.stats().opened, 2);
        // The fresh Open state restarts the cooldown from zero.
        drive_half_open(&breaker);
    }

    #[test]
    fn half_open_caps_concurrent_probes() {
        let breaker = CircuitBreaker::new(quick_config());
        drive_open(&breaker);
        drive_half_open(&breaker);
        // probe_trials = 2: one probe was admitted on the half-open
        // transition, one more here; further acquires are denied until the
        // probes report back.
        assert!(breaker.acquire());
        assert!(!breaker.acquire());
        assert!(!breaker.acquire());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn window_rolls_old_outcomes_out() {
        let config = BreakerConfig { window: 4, min_calls: 4, ..quick_config() };
        let breaker = CircuitBreaker::new(config);
        // Two early failures, then a long run of successes pushes them out of
        // the window entirely.
        for _ in 0..2 {
            breaker.acquire();
            breaker.on_failure();
        }
        for _ in 0..6 {
            breaker.acquire();
            breaker.on_success();
        }
        // Window now holds 4 successes; two fresh failures put the rate at
        // exactly 0.5 and trip it.
        breaker.acquire();
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.acquire();
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn full_recovery_cycle_counts_transitions() {
        let breaker = CircuitBreaker::new(quick_config());
        for _ in 0..2 {
            drive_open(&breaker);
            drive_half_open(&breaker);
            breaker.on_success();
            assert!(breaker.acquire());
            breaker.on_success();
            assert_eq!(breaker.state(), BreakerState::Closed);
        }
        let stats = breaker.stats();
        assert_eq!(stats.opened, 2);
        assert_eq!(stats.half_opened, 2);
        assert_eq!(stats.closed, 2);
    }
}
