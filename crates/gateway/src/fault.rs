//! Deterministic fault injection — the chaos substrate.
//!
//! [`FaultInjector`] wraps a [`SimLlm`] and fails a configurable fraction of
//! completion calls with typed [`TransportError`]s. The injection decision is
//! a **pure function** of `(plan seed, prompt hash, per-prompt attempt
//! number)` — independent of thread interleaving, wall-clock, and call order
//! across prompts — so chaos tests can *replay* the plan and assert exact
//! retry/failover counts instead of asserting "roughly 20%".

use crate::{FaultClass, LlmTransport, TransportError};
use lingua_llm_sim::{CodeGenSpec, CompletionRequest, GeneratedCode, LlmService, SimLlm, Usage};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// The injector's prompt key: the workspace-wide FNV-1a prompt fingerprint
/// (see `lingua_llm_sim::hotpath::fingerprint`). Replaying a [`FaultPlan`]
/// therefore shares the hash every other layer already computed — same
/// function, same bits, no second pass over the prompt.
pub fn prompt_key(text: &str) -> u64 {
    lingua_llm_sim::fingerprint(text)
}

/// Per-class fault rates plus the seed that makes them deterministic.
///
/// Rates are probabilities in `[0, 1]` and are applied as cumulative bands
/// over one uniform draw per attempt, so the total fault probability is the
/// sum of the four rates (callers keep the sum ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub timeout_rate: f64,
    pub rate_limit_rate: f64,
    pub transient_rate: f64,
    pub malformed_rate: f64,
    /// Deadline reported by injected timeouts, in milliseconds.
    pub timeout_ms: u64,
    /// Retry-after hint carried by injected rate limits, in milliseconds.
    pub retry_after_ms: u64,
}

impl FaultPlan {
    /// No faults at all; the injector becomes a transparent wrapper.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            timeout_rate: 0.0,
            rate_limit_rate: 0.0,
            transient_rate: 0.0,
            malformed_rate: 0.0,
            timeout_ms: 10_000,
            retry_after_ms: 200,
        }
    }

    /// Only transient server faults, at the given rate.
    pub fn transient(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan { transient_rate: rate, ..FaultPlan::none(seed) }
    }

    /// A mixed plan: the total fault rate split evenly across all four
    /// classes.
    pub fn uniform(total_rate: f64, seed: u64) -> FaultPlan {
        let each = total_rate / 4.0;
        FaultPlan {
            timeout_rate: each,
            rate_limit_rate: each,
            transient_rate: each,
            malformed_rate: each,
            ..FaultPlan::none(seed)
        }
    }

    /// Sum of the per-class rates.
    pub fn total_rate(&self) -> f64 {
        self.timeout_rate + self.rate_limit_rate + self.transient_rate + self.malformed_rate
    }

    /// The fault decision for the `attempt`-th call (0-based) of `prompt`.
    ///
    /// This is the determinism contract: tests replay it to derive exact
    /// expected counts. It must stay a pure function of the plan, the prompt,
    /// and the attempt number.
    pub fn decide(&self, prompt: &str, attempt: u64) -> Option<FaultClass> {
        self.decide_key(prompt_key(prompt), attempt)
    }

    /// [`FaultPlan::decide`] with a precomputed prompt key.
    pub fn decide_key(&self, key: u64, attempt: u64) -> Option<FaultClass> {
        if self.total_rate() <= 0.0 {
            return None;
        }
        let stream = self.seed ^ key ^ attempt.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(stream);
        let draw: f64 = rng.gen_range(0.0..1.0);
        let mut band = self.timeout_rate;
        if draw < band {
            return Some(FaultClass::Timeout);
        }
        band += self.rate_limit_rate;
        if draw < band {
            return Some(FaultClass::RateLimited);
        }
        band += self.transient_rate;
        if draw < band {
            return Some(FaultClass::TransientServer);
        }
        band += self.malformed_rate;
        if draw < band {
            return Some(FaultClass::MalformedOutput);
        }
        None
    }
}

/// Counters kept by the injector, one bucket per fault class plus totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FaultCounts {
    pub injected: u64,
    pub passed: u64,
    pub timeouts: u64,
    pub rate_limited: u64,
    pub transient: u64,
    pub malformed: u64,
}

impl FaultCounts {
    fn record(&mut self, class: FaultClass) {
        self.injected += 1;
        match class {
            FaultClass::Timeout => self.timeouts += 1,
            FaultClass::RateLimited => self.rate_limited += 1,
            FaultClass::TransientServer => self.transient += 1,
            FaultClass::MalformedOutput => self.malformed += 1,
        }
    }
}

#[derive(Default)]
struct InjectorState {
    /// Calls seen so far per prompt key; the next call's attempt number.
    attempts: HashMap<u64, u64>,
    counts: FaultCounts,
}

/// A [`SimLlm`] backend that fails completion calls per a [`FaultPlan`].
///
/// Only `complete` is faulted — it is the hot per-record path the gateway's
/// retry/failover machinery protects. Embeddings and the code-generation
/// endpoints pass straight through.
pub struct FaultInjector {
    name: String,
    inner: Arc<SimLlm>,
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    pub fn new(name: impl Into<String>, inner: Arc<SimLlm>, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            name: name.into(),
            inner,
            plan,
            state: Mutex::new(InjectorState::default()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn counts(&self) -> FaultCounts {
        self.state.lock().counts
    }

    /// The wrapped service (for billing assertions in tests).
    pub fn service(&self) -> &Arc<SimLlm> {
        &self.inner
    }

    fn next_attempt(&self, key: u64) -> u64 {
        let mut state = self.state.lock();
        let attempt = state.attempts.entry(key).or_insert(0);
        let current = *attempt;
        *attempt += 1;
        current
    }
}

/// Corrupt a good response into a plausibly truncated payload.
fn mangle(response: &str) -> String {
    let head: String = response.chars().take(24).collect();
    format!("{{\"answer\": \"{head}")
}

impl LlmTransport for FaultInjector {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&self, request: &CompletionRequest) -> Result<String, TransportError> {
        let key = request.fingerprint();
        let attempt = self.next_attempt(key);
        let Some(class) = self.plan.decide_key(key, attempt) else {
            self.state.lock().counts.passed += 1;
            return Ok(self.inner.complete(request));
        };
        self.state.lock().counts.record(class);
        match class {
            // The prompt was transmitted and compute was spent before the
            // deadline fired: the aborted call still bills input tokens.
            FaultClass::Timeout => {
                self.inner.meter_failed_call(&request.prompt);
                Err(TransportError::Timeout { waited_ms: self.plan.timeout_ms })
            }
            // Load shedding rejects the call at the door; nothing billed.
            FaultClass::RateLimited => {
                Err(TransportError::RateLimited { retry_after_ms: self.plan.retry_after_ms })
            }
            FaultClass::TransientServer => {
                self.inner.meter_failed_call(&request.prompt);
                Err(TransportError::TransientServer { message: "upstream worker crashed".into() })
            }
            // The model really answered (and billed) but the payload arrived
            // broken.
            FaultClass::MalformedOutput => {
                let good = self.inner.complete(request);
                Err(TransportError::MalformedOutput { preview: mangle(&good) })
            }
        }
    }

    fn embed(&self, text: &str) -> Result<Vec<f64>, TransportError> {
        Ok(self.inner.embed(text))
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.inner.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.inner.generate_code(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.inner.suggest_fix(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.inner.repair_code(spec, previous, suggestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;

    fn sim() -> Arc<SimLlm> {
        let world = WorldSpec::generate(11);
        Arc::new(SimLlm::with_seed(&world, 11))
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::uniform(0.5, 42);
        for prompt in ["alpha", "beta", "gamma"] {
            for attempt in 0..16 {
                assert_eq!(plan.decide(prompt, attempt), plan.decide(prompt, attempt));
            }
        }
        // Across many (prompt, attempt) pairs the decision must vary — the
        // attempt number has to reach the RNG stream or retries would be
        // pointless.
        let outcomes: Vec<Option<FaultClass>> =
            (0..64).map(|attempt| plan.decide("same prompt", attempt)).collect();
        assert!(outcomes.iter().any(Option::is_some));
        assert!(outcomes.iter().any(Option::is_none));
    }

    #[test]
    fn observed_rate_tracks_the_plan() {
        let plan = FaultPlan::transient(0.2, 7);
        let faults =
            (0..2000).filter(|&i| plan.decide(&format!("prompt #{i}"), 0).is_some()).count();
        let rate = faults as f64 / 2000.0;
        assert!((0.15..0.25).contains(&rate), "observed fault rate {rate}");
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let injector = FaultInjector::new("sim", sim(), FaultPlan::none(1));
        let req = CompletionRequest::new("Summarize. Text: nothing ever fails here");
        for _ in 0..20 {
            assert!(injector.complete(&req).is_ok());
        }
        let counts = injector.counts();
        assert_eq!(counts.injected, 0);
        assert_eq!(counts.passed, 20);
    }

    #[test]
    fn injector_matches_its_plan_exactly() {
        let plan = FaultPlan::uniform(0.6, 99);
        let injector = FaultInjector::new("sim", sim(), plan);
        let prompts: Vec<String> =
            (0..50).map(|i| format!("Summarize. Text: document number {i}")).collect();
        let mut expected = FaultCounts::default();
        for prompt in &prompts {
            // Each prompt is called twice; the injector sees attempts 0, 1.
            for attempt in 0..2 {
                match plan.decide(prompt, attempt) {
                    Some(class) => expected.record(class),
                    None => expected.passed += 1,
                }
                let result = injector.complete(&CompletionRequest::new(prompt.clone()));
                assert_eq!(
                    result.err().map(|e| e.class()),
                    plan.decide(prompt, attempt),
                    "replay mismatch on {prompt:?} attempt {attempt}"
                );
            }
        }
        assert_eq!(injector.counts(), expected);
    }

    #[test]
    fn aborted_calls_bill_prompt_tokens_only() {
        let service = sim();
        // transient_rate 1.0: every call faults with a billed abort.
        let injector = FaultInjector::new("sim", service.clone(), FaultPlan::transient(1.0, 3));
        let before = service.usage();
        let err =
            injector.complete(&CompletionRequest::new("Summarize. Text: doomed call")).unwrap_err();
        assert_eq!(err.class(), FaultClass::TransientServer);
        let delta = service.usage().since(&before);
        assert_eq!(delta.failed_calls, 1);
        assert_eq!(delta.calls, 0);
        assert!(delta.tokens_in > 0);
        assert_eq!(delta.tokens_out, 0);
    }

    #[test]
    fn malformed_output_previews_the_real_response() {
        let plan = FaultPlan { malformed_rate: 1.0, ..FaultPlan::none(5) };
        let injector = FaultInjector::new("sim", sim(), plan);
        let err = injector
            .complete(&CompletionRequest::new("Summarize. Text: garbled on the wire"))
            .unwrap_err();
        match err {
            TransportError::MalformedOutput { preview } => {
                assert!(preview.starts_with("{\"answer\": \""));
            }
            other => panic!("expected malformed output, got {other:?}"),
        }
    }
}
