//! The fallible transport layer.
//!
//! [`LlmTransport`] is the [`lingua_llm_sim::LlmService`] contract with the
//! truth restored: calls over a network can fail. [`ServiceTransport`] adapts
//! any infallible service into a transport that never faults (the shape a
//! perfectly reliable backend would have); [`crate::FaultInjector`] is the
//! adversarial counterpart.

use crate::TransportError;
use lingua_llm_sim::{
    BatchOutcome, CodeGenSpec, CompletionRequest, GeneratedCode, LlmService, Usage,
};
use std::sync::Arc;

/// A named, fallible LLM backend.
///
/// Completions and embeddings — the hot, per-record paths — are fallible.
/// The structured code-generation endpoints stay infallible: they are called
/// a handful of times at pipeline-compile time and the repair loop around
/// them already tolerates bad output.
pub trait LlmTransport: Send + Sync {
    /// Stable backend name, used as the metrics key.
    fn name(&self) -> &str;
    /// Free-text completion.
    fn complete(&self, request: &CompletionRequest) -> Result<String, TransportError>;
    /// Batched completion: all-or-nothing over the wire. One faulted member
    /// fails the whole batch (that is what a single batched HTTP call does);
    /// the gateway places a batch as one wire call first and, when that call
    /// faults, re-dispatches the members through its resilient loop
    /// individually.
    ///
    /// The default adapts [`LlmTransport::complete`] one member at a time,
    /// attributing each member the usage delta its call produced; fault
    /// injectors therefore inherit per-member fault decisions for free.
    /// Transports over a genuinely batchable service override it.
    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Result<BatchOutcome, TransportError> {
        let mut outcome = BatchOutcome::with_capacity(requests.len());
        for request in requests {
            let before = self.usage();
            let response = self.complete(request)?;
            let split = self.usage().since(&before);
            outcome.batch_usage.merge(&split);
            outcome.splits.push(split);
            outcome.responses.push(Arc::from(response));
        }
        Ok(outcome)
    }
    /// Deterministic text embedding.
    fn embed(&self, text: &str) -> Result<Vec<f64>, TransportError>;
    /// Cumulative usage counters of the underlying service.
    fn usage(&self) -> Usage;
    /// Simulated wall-clock latency accumulated so far, in milliseconds.
    fn simulated_latency_ms(&self) -> u64;
    /// Generate an LLMGC module program.
    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode;
    /// Ask for a fix suggestion given code and failure descriptions.
    fn suggest_fix(&self, source: &str, failures: &[String]) -> String;
    /// Regenerate code after a failed validation.
    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode;
}

/// Adapter lifting an infallible [`LlmService`] into a transport that never
/// faults.
pub struct ServiceTransport {
    name: String,
    service: Arc<dyn LlmService>,
}

impl ServiceTransport {
    pub fn new(name: impl Into<String>, service: Arc<dyn LlmService>) -> ServiceTransport {
        ServiceTransport { name: name.into(), service }
    }
}

impl LlmTransport for ServiceTransport {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&self, request: &CompletionRequest) -> Result<String, TransportError> {
        Ok(self.service.complete(request))
    }

    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Result<BatchOutcome, TransportError> {
        Ok(self.service.complete_batch(requests))
    }

    fn embed(&self, text: &str) -> Result<Vec<f64>, TransportError> {
        Ok(self.service.embed(text))
    }

    fn usage(&self) -> Usage {
        self.service.usage()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.service.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.service.generate_code(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.service.suggest_fix(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.service.repair_code(spec, previous, suggestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    #[test]
    fn service_transport_never_faults_and_forwards_usage() {
        let world = WorldSpec::generate(7);
        let svc: Arc<dyn LlmService> = Arc::new(SimLlm::with_seed(&world, 7));
        let transport = ServiceTransport::new("sim", svc);
        assert_eq!(transport.name(), "sim");
        let req = CompletionRequest::new("Summarize. Text: a reliable backend");
        let first = transport.complete(&req).expect("infallible");
        let second = transport.complete(&req).expect("infallible");
        assert_eq!(first, second);
        assert!(!transport.embed("some text").unwrap().is_empty());
        // Two completions plus the embed (SimLlm bills embeds as calls too).
        assert_eq!(transport.usage().calls, 3);
        assert!(transport.simulated_latency_ms() > 0);
    }

    #[test]
    fn service_transport_batches_through_the_service() {
        let world = WorldSpec::generate(7);
        let svc: Arc<dyn LlmService> = Arc::new(SimLlm::with_seed(&world, 7));
        let transport = ServiceTransport::new("sim", svc);
        let requests = vec![
            CompletionRequest::new("Summarize. Text: batched one"),
            CompletionRequest::new("Summarize. Text: batched two"),
        ];
        let outcome = transport.complete_batch(&requests).expect("infallible");
        assert_eq!(outcome.responses.len(), 2);
        // The override reaches the simulator's genuine batched entry point,
        // which amortizes the whole flush into one backend call.
        assert_eq!(outcome.batch_usage.calls, 1);
        assert_eq!(transport.usage(), outcome.batch_usage);
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(summed, outcome.batch_usage);
    }
}
