//! Deterministic chaos integration tests.
//!
//! The fault decision is a pure function of `(plan seed, prompt, attempt)`
//! and the backoff schedule a pure function of `(seed, key, attempt)`, so a
//! test can *replay* the gateway's retry/failover policy over the same plans
//! and derive the exact expected counters — no tolerance bands, no "roughly
//! 20%". If any of these assertions drift, either the determinism contract
//! or the routing policy changed; both are breaking changes.

use lingua_dataset::world::WorldSpec;
use lingua_gateway::{
    prompt_key, BackendCounters, BackoffPolicy, BreakerConfig, FaultClass, FaultInjector,
    FaultPlan, Gateway, ServiceTransport, DEGRADED_NOTICE,
};
use lingua_llm_sim::{CompletionRequest, LlmService, SimLlm};
use std::sync::Arc;

fn sim(world_seed: u64, llm_seed: u64) -> Arc<SimLlm> {
    let world = WorldSpec::generate(world_seed);
    Arc::new(SimLlm::with_seed(&world, llm_seed))
}

fn prompts(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("Summarize. Text: chaos workload record {i}")).collect()
}

/// A breaker that never trips, so the replay below only has to model retry
/// and failover (the breaker state machine has its own exact-count tests).
fn breaker_disabled() -> BreakerConfig {
    BreakerConfig { min_calls: usize::MAX, ..BreakerConfig::default() }
}

/// Replay of `Gateway::call_resilient` over pure plan/backoff functions.
#[derive(Default)]
struct ExpectedBackend {
    counters: BackendCounters,
}

struct Replay {
    backends: Vec<ExpectedBackend>,
    failovers: u64,
    degraded_fallbacks: u64,
}

/// Mirror the gateway's routing policy: retry the same backend with jittered
/// backoff while the fault is retryable and the attempt budget lasts, then
/// fail over; a request no backend served goes to the fallback.
fn replay(plans: &[FaultPlan], backoff: &BackoffPolicy, prompts: &[String]) -> Replay {
    let mut out = Replay {
        backends: plans.iter().map(|_| ExpectedBackend::default()).collect(),
        failovers: 0,
        degraded_fallbacks: 0,
    };
    for prompt in prompts {
        let key = prompt_key(prompt);
        let mut served = false;
        for (idx, plan) in plans.iter().enumerate() {
            if idx > 0 {
                out.failovers += 1;
            }
            let expected = &mut out.backends[idx].counters;
            // Unique prompts: the injector's per-prompt attempt counter and
            // the gateway's per-backend attempt counter advance in lockstep.
            let mut attempt: u32 = 0;
            loop {
                expected.attempts += 1;
                if attempt > 0 {
                    expected.retries += 1;
                }
                let Some(class) = plan.decide_key(key, u64::from(attempt)) else {
                    expected.served += 1;
                    served = true;
                    break;
                };
                let mut retry_hint = None;
                match class {
                    FaultClass::Timeout => expected.timeouts += 1,
                    FaultClass::RateLimited => {
                        expected.rate_limited += 1;
                        retry_hint = Some(plan.retry_after_ms);
                    }
                    FaultClass::TransientServer => expected.transient += 1,
                    FaultClass::MalformedOutput => expected.malformed += 1,
                }
                attempt += 1;
                let retryable = class != FaultClass::MalformedOutput;
                if !retryable || attempt >= backoff.max_attempts {
                    break;
                }
                let mut delay = backoff.delay_ms(key, attempt);
                if let Some(hint) = retry_hint {
                    delay = delay.max(hint);
                }
                expected.backoff_ms += delay;
            }
            if served {
                break;
            }
        }
        if !served {
            out.degraded_fallbacks += 1;
        }
    }
    out
}

#[test]
fn chaos_counters_match_the_plan_replay_exactly() {
    let primary_plan = FaultPlan::uniform(0.5, 101);
    let standby_plan = FaultPlan::transient(0.25, 202);
    let backoff = BackoffPolicy { seed: 7, ..BackoffPolicy::default() };
    let workload = prompts(120);

    let primary = Arc::new(FaultInjector::new("primary", sim(41, 41), primary_plan));
    let standby = Arc::new(FaultInjector::new("standby", sim(41, 41), standby_plan));
    let fallback = sim(41, 41);
    let gateway = Gateway::builder()
        .backend(primary)
        .backend(standby)
        .fallback(Arc::new(ServiceTransport::new("cheap", fallback)))
        .backoff(backoff)
        .breaker(breaker_disabled())
        .build();

    for prompt in &workload {
        let response = gateway.complete(&CompletionRequest::new(prompt.clone()));
        assert_ne!(response, DEGRADED_NOTICE, "the clean fallback absorbs every outage");
    }

    let expected = replay(&[primary_plan, standby_plan], &backoff, &workload);
    let snap = gateway.snapshot();
    assert_eq!(snap.requests, workload.len() as u64);
    assert_eq!(snap.failovers, expected.failovers);
    assert_eq!(snap.degraded_fallbacks, expected.degraded_fallbacks);
    assert_eq!(snap.degraded_static, 0);
    assert_eq!(snap.degraded_cache_hits, 0, "every prompt is unique");
    for (idx, name) in ["primary", "standby"].iter().enumerate() {
        assert_eq!(
            snap.backends[idx].counters, expected.backends[idx].counters,
            "replayed counters diverge on backend {name}"
        );
    }
    // The chaos actually exercised every layer under test.
    assert!(snap.faults() > 0, "a 50% plan must inject");
    assert!(snap.retries() > 0, "transient faults must be retried");
    assert!(expected.failovers > 0, "exhausted retries must fail over");
    assert!(snap.added_backoff_ms() > 0, "retries must charge backoff latency");
}

#[test]
fn twenty_percent_transient_faults_cause_zero_request_failures() {
    // The acceptance bar: at a 20% transient-fault rate, a workload through
    // the gateway completes with zero request-level failures, and every
    // response matches what a healthy backend would have said.
    let plan = FaultPlan::transient(0.20, 99);
    let flaky = Arc::new(FaultInjector::new("flaky", sim(43, 43), plan));
    let standby = sim(43, 43);
    let reference = sim(43, 43);
    let gateway = Gateway::builder()
        .backend(flaky)
        .backend(Arc::new(ServiceTransport::new("standby", standby)))
        .build();

    let workload = prompts(200);
    for prompt in &workload {
        let request = CompletionRequest::new(prompt.clone());
        assert_eq!(
            gateway.complete(&request),
            reference.complete(&request),
            "a faulted-then-recovered request must still return the real answer"
        );
    }
    let snap = gateway.snapshot();
    assert_eq!(snap.requests, 200);
    assert_eq!(snap.degraded(), 0, "no request fell through to degraded mode");
    assert!(snap.faults() > 0, "the plan injected transient faults");
    assert_eq!(
        snap.backends[0].counters.served + snap.backends[1].counters.served,
        200,
        "every request was served by a real backend"
    );
}

#[test]
fn same_seed_same_story_different_seed_different_story() {
    // Two gateways over identical plans must produce identical snapshots;
    // changing only the plan seed must change the fault pattern.
    let workload = prompts(60);
    let run = |seed: u64| {
        let plan = FaultPlan::uniform(0.4, seed);
        let injector = Arc::new(FaultInjector::new("flaky", sim(47, 47), plan));
        let standby = Arc::new(ServiceTransport::new("standby", sim(47, 47)));
        let gateway = Gateway::builder()
            .backend(injector)
            .backend(standby)
            .breaker(breaker_disabled())
            .build();
        for prompt in &workload {
            gateway.complete(&CompletionRequest::new(prompt.clone()));
        }
        gateway.snapshot()
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "a fixed seed replays the exact same chaos");
    let c = run(4321);
    assert_ne!(
        a.backends[0].counters, c.backends[0].counters,
        "a different seed must produce different chaos"
    );
}
