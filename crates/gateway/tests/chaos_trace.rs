//! Chaos-trace reconciliation tests.
//!
//! `chaos.rs` proves the gateway's *counters* match a pure replay of the
//! fault plans. These tests raise the bar to the *trace*: the instant
//! stream recorded under each `gateway` span must replay the routing
//! decisions event for event — same names, same attributes, same order —
//! and the per-event tallies must reconcile with the aggregate snapshot.
//! Counters can be right by accident; an event-for-event transcript cannot.

use lingua_dataset::world::WorldSpec;
use lingua_gateway::{
    prompt_key, BackoffPolicy, BreakerConfig, FaultClass, FaultInjector, FaultPlan, Gateway,
    ServiceTransport, DEGRADED_NOTICE,
};
use lingua_llm_sim::{CompletionRequest, LlmService, SimLlm};
use lingua_trace::{ring_tracer, SpanKind, TraceTree};
use std::collections::BTreeMap;
use std::sync::Arc;

fn sim(world_seed: u64, llm_seed: u64) -> Arc<SimLlm> {
    let world = WorldSpec::generate(world_seed);
    Arc::new(SimLlm::with_seed(&world, llm_seed))
}

fn prompts(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("Summarize. Text: chaos trace record {i}")).collect()
}

/// A breaker that never trips, so the replay only models retry and failover.
fn breaker_disabled() -> BreakerConfig {
    BreakerConfig { min_calls: usize::MAX, ..BreakerConfig::default() }
}

type Attrs = BTreeMap<String, String>;

fn attrs(pairs: &[(&str, String)]) -> Attrs {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// Pure replay of `Gateway::call_resilient` for one request, emitting the
/// exact instant stream the tracer should have recorded plus the request
/// span's terminal `path` attribute.
fn expected_request_trace(
    backends: &[(&str, FaultPlan)],
    backoff: &BackoffPolicy,
    prompt: &str,
) -> (Vec<(String, Attrs)>, &'static str) {
    let key = prompt_key(prompt);
    let mut events = Vec::new();
    for (idx, (name, plan)) in backends.iter().enumerate() {
        if idx > 0 {
            events.push(("failover".to_string(), attrs(&[("to", name.to_string())])));
        }
        let mut attempt: u32 = 0;
        loop {
            events.push((
                "attempt".to_string(),
                attrs(&[("backend", name.to_string()), ("retry", (attempt > 0).to_string())]),
            ));
            let Some(class) = plan.decide_key(key, u64::from(attempt)) else {
                events.push(("served".to_string(), attrs(&[("backend", name.to_string())])));
                return (events, "served");
            };
            events.push((
                "fault".to_string(),
                attrs(&[("backend", name.to_string()), ("class", class.label().to_string())]),
            ));
            attempt += 1;
            if class == FaultClass::MalformedOutput || attempt >= backoff.max_attempts {
                break;
            }
            let mut delay = backoff.delay_ms(key, attempt);
            if class == FaultClass::RateLimited {
                delay = delay.max(plan.retry_after_ms);
            }
            events.push((
                "backoff".to_string(),
                attrs(&[("backend", name.to_string()), ("delay_ms", delay.to_string())]),
            ));
        }
    }
    events.push(("degraded_fallback".to_string(), Attrs::new()));
    (events, "degraded_fallback")
}

#[test]
fn trace_replays_the_same_story_as_the_counters() {
    let primary_plan = FaultPlan::uniform(0.5, 101);
    let standby_plan = FaultPlan::transient(0.25, 202);
    let backoff = BackoffPolicy { seed: 7, ..BackoffPolicy::default() };
    let workload = prompts(120);
    let (tracer, sink) = ring_tracer(1 << 15);

    let gateway = Gateway::builder()
        .backend(Arc::new(FaultInjector::new("primary", sim(41, 41), primary_plan)))
        .backend(Arc::new(FaultInjector::new("standby", sim(41, 41), standby_plan)))
        .fallback(Arc::new(ServiceTransport::new("cheap", sim(41, 41))))
        .backoff(backoff)
        .breaker(breaker_disabled())
        .tracer(tracer.clone())
        .build();
    for prompt in &workload {
        let response = gateway.complete(&CompletionRequest::new(prompt.clone()));
        assert_ne!(response, DEGRADED_NOTICE, "the clean fallback absorbs every outage");
    }

    assert_eq!(tracer.dropped(), 0, "the ring must be sized for the workload");
    let tree = TraceTree::build(&sink.events()).expect("trace stream is well-formed");
    let requests = tree.spans_of_kind(SpanKind::Gateway);
    assert_eq!(requests.len(), workload.len(), "one gateway span per request");

    // Event for event: each request's instants equal a pure replay of the
    // fault plans and backoff schedule.
    let plans = [("primary", primary_plan), ("standby", standby_plan)];
    for (span, prompt) in requests.iter().zip(&workload) {
        let (expected, path) = expected_request_trace(&plans, &backoff, prompt);
        assert_eq!(span.name, "complete");
        assert_eq!(span.attrs.get("path").map(String::as_str), Some(path));
        let actual: Vec<(String, Attrs)> =
            span.instants.iter().map(|i| (i.name.clone(), i.attrs.clone())).collect();
        assert_eq!(actual, expected, "instant stream diverges for {prompt:?}");
    }

    // In aggregate, the instants reconcile with the snapshot counters.
    let snap = gateway.snapshot();
    let with = |name: &str, key: &str, value: &str| -> u64 {
        requests
            .iter()
            .flat_map(|s| &s.instants)
            .filter(|i| i.name == name && i.attrs.get(key).map(String::as_str) == Some(value))
            .count() as u64
    };
    for backend in &snap.backends {
        let name = backend.name.as_str();
        assert_eq!(with("attempt", "backend", name), backend.counters.attempts);
        assert_eq!(with("served", "backend", name), backend.counters.served);
        assert_eq!(with("fault", "backend", name), backend.counters.faults());
        let retries = requests
            .iter()
            .flat_map(|s| &s.instants)
            .filter(|i| {
                i.name == "attempt"
                    && i.attrs.get("backend").map(String::as_str) == Some(name)
                    && i.attrs.get("retry").map(String::as_str) == Some("true")
            })
            .count() as u64;
        assert_eq!(retries, backend.counters.retries);
        for class in [FaultClass::Timeout, FaultClass::RateLimited, FaultClass::TransientServer] {
            let faults = requests
                .iter()
                .flat_map(|s| &s.instants)
                .filter(|i| {
                    i.name == "fault"
                        && i.attrs.get("backend").map(String::as_str) == Some(name)
                        && i.attrs.get("class").map(String::as_str) == Some(class.label())
                })
                .count() as u64;
            let expected = match class {
                FaultClass::Timeout => backend.counters.timeouts,
                FaultClass::RateLimited => backend.counters.rate_limited,
                FaultClass::TransientServer => backend.counters.transient,
                FaultClass::MalformedOutput => backend.counters.malformed,
            };
            assert_eq!(faults, expected, "fault class {} diverges on {name}", class.label());
        }
        let backoff_ms: u64 = requests
            .iter()
            .flat_map(|s| &s.instants)
            .filter(|i| {
                i.name == "backoff" && i.attrs.get("backend").map(String::as_str) == Some(name)
            })
            .map(|i| i.attrs["delay_ms"].parse::<u64>().expect("delay_ms is numeric"))
            .sum();
        assert_eq!(backoff_ms, backend.counters.backoff_ms, "backoff charge diverges on {name}");
    }
    let named = |name: &str| -> u64 {
        requests.iter().flat_map(|s| &s.instants).filter(|i| i.name == name).count() as u64
    };
    assert_eq!(named("failover"), snap.failovers);
    assert_eq!(named("degraded_fallback"), snap.degraded_fallbacks);
    assert_eq!(snap.degraded_static, 0);

    // The chaos really exercised every layer the trace claims to cover.
    assert!(snap.faults() > 0, "a 50% plan must inject");
    assert!(snap.retries() > 0, "transient faults must be retried");
    assert!(snap.failovers > 0, "exhausted retries must fail over");
}

#[test]
fn breaker_transitions_are_visible_in_the_trace() {
    // Same deterministic walk as the breaker-shielding unit test: a dead
    // primary, one attempt per request, breaker trips after 4 failures.
    let (tracer, sink) = ring_tracer(1 << 14);
    let standby = sim(7, 7);
    let gateway = Gateway::builder()
        .backend(Arc::new(FaultInjector::new("dead", sim(7, 7), FaultPlan::transient(1.0, 9))))
        .backend(Arc::new(ServiceTransport::new("standby", standby)))
        .backoff(BackoffPolicy { max_attempts: 1, ..BackoffPolicy::default() })
        .breaker(BreakerConfig {
            window: 8,
            min_calls: 4,
            failure_threshold: 0.5,
            cooldown_denials: 3,
            probe_trials: 2,
            probe_successes: 2,
        })
        .tracer(tracer.clone())
        .build();
    for i in 0..12 {
        gateway.complete(&CompletionRequest::new(format!("Summarize. Text: breaker req {i}")));
    }

    let snap = gateway.snapshot();
    let tree = TraceTree::build(&sink.events()).expect("trace stream is well-formed");
    let requests = tree.spans_of_kind(SpanKind::Gateway);
    assert_eq!(requests.len(), 12);
    let named = |name: &str| -> u64 {
        requests.iter().flat_map(|s| &s.instants).filter(|i| i.name == name).count() as u64
    };
    assert_eq!(named("breaker_denied"), snap.backends[0].counters.breaker_denied);
    assert_eq!(named("failover"), snap.failovers);
    assert_eq!(named("served"), 12, "every request lands on the standby");
    // Each breaker trip is stamped on the fault that caused it.
    let opened = requests
        .iter()
        .flat_map(|s| &s.instants)
        .filter(|i| i.name == "fault" && i.attrs.get("breaker").map(String::as_str) == Some("open"))
        .count() as u64;
    assert_eq!(opened, snap.backends[0].breaker.opened);
    assert!(opened > 0, "the breaker must have tripped at least once");
    assert!(named("breaker_denied") > 0, "cooldown denials must be traced");
}
