//! Seeded replay of exact batch compositions under real thread contention.
//!
//! The batcher's unit tests prove the flush state machine on two-to-four
//! member scenarios; this suite replays *workloads* — eight submitter
//! threads, many rounds — and asserts the batch compositions (counts,
//! occupancies, flush reasons) and the token ledger **exactly**, not
//! statistically. Everything here is deterministic: barriers pin which
//! members share a flush, `max_wait` is set so only one trigger can ever
//! fire, and the simulator under the batcher is a pure function of
//! `(seed, prompt)`.
//!
//! The conservation law under test, at every level:
//!
//! ```text
//!   sum(member splits) == batched call usage == backend ledger delta
//! ```
//!
//! token for token, and therefore dollar for dollar to the cent.

use lingua_dataset::world::WorldSpec;
use lingua_gateway::{BatchConfig, Batcher, FaultInjector, FaultPlan, FlushReason, Gateway};
use lingua_llm_sim::{
    BatchOutcome, CancelScope, CancelToken, CodeGenSpec, CompletionRequest, GeneratedCode,
    LlmService, SimLlm, SimLlmConfig, TokenPricing, Usage, CANCELLED_NOTICE,
};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const THREADS: usize = 8;
const ROUNDS: usize = 16;

/// A fresh simulator over the same seeded world. `cache` controls whether
/// identical prompts can coalesce; the conservation tests disable it so
/// every live member must bill its own tokens.
fn sim(seed: u64, cache: bool) -> Arc<SimLlm> {
    let world = WorldSpec::generate(47);
    Arc::new(SimLlm::new(&world, SimLlmConfig { seed, cache_enabled: cache, ..Default::default() }))
}

fn prompt(thread: usize, round: usize) -> CompletionRequest {
    CompletionRequest::new(format!(
        "Summarize. Text: replay workload thread {thread} round {round}"
    ))
}

/// Forwards everything to a shared simulator while keeping every
/// [`BatchOutcome`] the batcher's flushes produced — the oracle for
/// member-level split conservation under contention.
struct Recording {
    inner: Arc<SimLlm>,
    outcomes: Mutex<Vec<BatchOutcome>>,
}

impl Recording {
    fn new(inner: Arc<SimLlm>) -> Recording {
        Recording { inner, outcomes: Mutex::new(Vec::new()) }
    }

    fn outcomes(&self) -> Vec<BatchOutcome> {
        self.outcomes.lock().clone()
    }
}

impl LlmService for Recording {
    fn complete(&self, request: &CompletionRequest) -> String {
        self.inner.complete(request)
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> BatchOutcome {
        let outcome = self.inner.complete_batch(requests);
        self.outcomes.lock().push(outcome.clone());
        outcome
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        self.inner.embed(text)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.inner.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.inner.generate_code(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.inner.suggest_fix(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.inner.repair_code(spec, previous, suggestion)
    }
}

/// Eight threads, sixteen rounds, one barrier per round: every round's eight
/// members must land in exactly one size-triggered flush. The composition
/// replay is exact — batch count, occupancy, flush reason, and the ledger.
#[test]
fn eight_thread_rounds_replay_as_exact_size_flushes() {
    let service = sim(101, false);
    let batcher = Arc::new(Batcher::new(
        service.clone() as Arc<dyn LlmService>,
        // The window is effectively infinite, so the size trigger is the
        // only one that can fire; occupancy is pinned by the barrier.
        BatchConfig { max_batch_size: THREADS, max_wait: Duration::from_secs(3600) },
    ));
    let reference = sim(101, false);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let batcher = Arc::clone(&batcher);
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut answers = Vec::with_capacity(ROUNDS);
                    for round in 0..ROUNDS {
                        barrier.wait();
                        answers.push(batcher.complete(&prompt(thread, round)));
                    }
                    answers
                })
            })
            .collect();
        for (thread, handle) in handles.into_iter().enumerate() {
            let answers = handle.join().expect("no submitter panicked");
            for (round, answer) in answers.into_iter().enumerate() {
                assert_eq!(
                    answer,
                    reference.complete(&prompt(thread, round)),
                    "batched answer diverged for thread {thread} round {round}"
                );
            }
        }
    });

    let snap = batcher.snapshot();
    assert_eq!(snap.batches, ROUNDS as u64, "one flush per barrier round");
    assert_eq!(snap.members, (THREADS * ROUNDS) as u64);
    assert_eq!(snap.size_flushes, ROUNDS as u64);
    assert_eq!(snap.window_flushes, 0, "the infinite window never fired");
    assert_eq!(snap.max_occupancy, THREADS as u64);
    assert_eq!(snap.cancelled_members, 0);
    assert!((snap.mean_occupancy() - THREADS as f64).abs() < f64::EPSILON);

    let log = batcher.flush_log();
    assert_eq!(log.len(), ROUNDS);
    let mut replayed = Usage::default();
    for (index, record) in log.iter().enumerate() {
        assert_eq!(record.occupancy, THREADS, "flush {index} occupancy");
        assert_eq!(record.live, THREADS, "flush {index} live members");
        assert_eq!(record.cancelled, 0);
        assert_eq!(record.reason, FlushReason::Size, "flush {index} trigger");
        assert_eq!(record.usage.calls, 1, "each flush is one backend call");
        replayed.merge(&record.usage);
    }
    // The replay log reconciles with the backend ledger token for token —
    // and with the reference run's tokens (the reference billed one call per
    // member where the batcher amortized each round into one).
    assert_eq!(replayed, service.usage(), "flush log == ledger, all seven fields");
    let ledger = service.usage();
    let unbatched = reference.usage();
    assert_eq!(ledger.tokens_in, unbatched.tokens_in);
    assert_eq!(ledger.tokens_out, unbatched.tokens_out);
    assert_eq!(ledger.calls, ROUNDS as u64);
    assert_eq!(unbatched.calls, (THREADS * ROUNDS) as u64);
    let pricing = TokenPricing::default();
    let cents = |usd: f64| (usd * 100.0).round() as i64;
    assert_eq!(
        cents(ledger.cost_usd(&pricing)),
        cents(unbatched.cost_usd(&pricing)),
        "batched and unbatched workloads cost the same to the cent"
    );
}

/// Member-level conservation under contention: for every flush the batcher
/// placed, the per-member usage splits sum to the batched call's usage
/// exactly — and the batched usages sum to the ledger.
#[test]
fn member_splits_conserve_the_batched_usage_under_contention() {
    let inner = sim(202, true);
    let recording = Arc::new(Recording::new(inner.clone()));
    let batcher = Arc::new(Batcher::new(
        recording.clone() as Arc<dyn LlmService>,
        BatchConfig { max_batch_size: THREADS, max_wait: Duration::from_secs(3600) },
    ));
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let batcher = Arc::clone(&batcher);
            let barrier = &barrier;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    barrier.wait();
                    // Half the threads repeat a shared prompt each round, so
                    // flushes mix billed members with in-batch coalesces.
                    let request =
                        if thread % 2 == 0 { prompt(0, round) } else { prompt(thread, round) };
                    batcher.complete(&request);
                }
            });
        }
    });

    let outcomes = recording.outcomes();
    assert_eq!(outcomes.len(), ROUNDS, "one batched backend call per round");
    let mut total = Usage::default();
    for (index, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.responses.len(), THREADS);
        assert_eq!(outcome.splits.len(), THREADS);
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(
            summed, outcome.batch_usage,
            "flush {index}: member splits must sum to the batched usage exactly"
        );
        assert_eq!(
            outcome.batch_usage.calls, 1,
            "flush {index}: the whole batch is one billed call"
        );
        assert_eq!(
            outcome.saved_members(),
            THREADS / 2 - 1,
            "flush {index}: the round's repeated prompt coalesces its duplicates in-batch"
        );
        total.merge(&outcome.batch_usage);
    }
    assert_eq!(total, inner.usage(), "summed batch usages reconcile with the ledger");
    assert_eq!(batcher.snapshot().saved_members, total.cached_calls);
}

/// A single submitter can only ever window-flush alone: the replay is a run
/// of occupancy-1 window flushes, and the batched answers still match an
/// unbatched reference call for call.
#[test]
fn single_threaded_replay_is_all_window_flushes() {
    let service = sim(303, false);
    let reference = sim(303, false);
    let batcher = Batcher::new(
        service.clone() as Arc<dyn LlmService>,
        BatchConfig { max_batch_size: THREADS, max_wait: Duration::from_millis(1) },
    );
    for round in 0..ROUNDS {
        assert_eq!(batcher.complete(&prompt(0, round)), reference.complete(&prompt(0, round)));
    }
    let snap = batcher.snapshot();
    assert_eq!(snap.batches, ROUNDS as u64);
    assert_eq!(snap.window_flushes, ROUNDS as u64);
    assert_eq!(snap.size_flushes, 0);
    assert_eq!(snap.max_occupancy, 1);
    for record in batcher.flush_log() {
        assert_eq!(record.occupancy, 1);
        assert_eq!(record.reason, FlushReason::Window);
    }
    assert_eq!(service.usage(), reference.usage(), "occupancy-1 batching bills identically");
}

/// Gateway batch-split replay: a faulted batched first attempt re-dispatches
/// the members through the per-member resilient loop, and because the fault
/// plan is a pure function of `(seed, prompt, attempt)`, the *entire*
/// per-member attempt schedule replays exactly — which member faulted where,
/// how many attempts and retries each burned, and what the ledger billed.
#[test]
fn split_batch_replays_exact_per_member_attempt_schedules() {
    let plan = FaultPlan::transient(0.35, 57);
    let find = |pred: &dyn Fn(&str) -> bool| -> CompletionRequest {
        (0..50_000)
            .map(|i| format!("Summarize. Text: split schedule candidate {i}"))
            .find(|p| pred(p))
            .map(CompletionRequest::new)
            .expect("a matching prompt exists")
    };
    // Pin each member's fault pattern by construction:
    //   A passes every attempt it will see — attempt 0 inside the batched
    //     wire call, attempt 1 as its split re-dispatch;
    //   B faults attempt 0 (failing the wire call, so C is never reached
    //     there), faults its first split attempt (1), passes the retry (2);
    //   C first executes during the split — faults attempt 0, passes 1.
    let a = find(&|p| plan.decide(p, 0).is_none() && plan.decide(p, 1).is_none());
    let b = find(&|p| {
        plan.decide(p, 0).is_some() && plan.decide(p, 1).is_some() && plan.decide(p, 2).is_none()
    });
    let c = find(&|p| plan.decide(p, 0).is_some() && plan.decide(p, 1).is_none());
    let requests = vec![a, b, c];

    let service = sim(505, false);
    let reference = sim(505, false);
    let injector = Arc::new(FaultInjector::new("flaky", service.clone(), plan));
    let gateway = Gateway::over(injector.clone());
    let outcome = gateway.complete_batch(&requests);

    for (request, response) in requests.iter().zip(&outcome.responses) {
        assert_eq!(response.as_ref(), reference.complete(request), "split answers diverged");
    }
    let mut summed = Usage::default();
    for split in &outcome.splits {
        summed.merge(split);
    }
    assert_eq!(summed, outcome.batch_usage, "member splits conserve the batch usage");

    // The injector saw exactly the schedule above: A passed 0 and 1, B
    // faulted 0 and 1 then passed 2, C faulted 0 then passed 1.
    let counts = injector.counts();
    assert_eq!(counts.passed, 4, "A twice, B once, C once");
    assert_eq!(counts.injected, 3, "B twice, C once");
    assert_eq!(counts.transient, 3);

    // And the gateway booked the same walk: one batched attempt plus
    // 1 (A) + 2 (B) + 2 (C) split attempts, with B's and C's second
    // attempts counted as retries.
    let snap = gateway.snapshot();
    let primary = &snap.backends[0].counters;
    assert_eq!(primary.attempts, 6);
    assert_eq!(primary.retries, 2);
    assert_eq!(primary.faults(), 3);
    assert_eq!(primary.served, 3, "each member serves once after the split");
    assert_eq!(snap.batches, 1);
    assert_eq!(snap.batch_members, 3);
    assert_eq!(snap.batch_splits, 1);
    assert_eq!(snap.degraded(), 0, "per-member retries absorbed every fault");
    assert!(snap.added_backoff_ms() > 0, "B's and C's retries charged backoff");

    // Ledger: the split recomputed A once (the wire call's partial work is
    // discarded), so four billed calls serve three logical requests, and the
    // three transient faults billed their aborted prompts.
    let ledger = service.usage();
    assert_eq!(ledger.calls, 4);
    assert_eq!(ledger.failed_calls, 3);
    assert_eq!(reference.usage().calls, 3);
}

/// Mid-batch cancellation replay: seven members join, three are cancelled
/// while the batch is still filling, the eighth arrival flushes. The
/// composition is exact — 8 occupancy, 5 live, 3 cancelled — and the ledger
/// bills precisely the five survivors' tokens in one call.
#[test]
fn cancelled_members_are_excluded_from_the_replayed_composition() {
    const JOINERS: usize = 7;
    const DOOMED: usize = 3;
    let service = sim(404, false);
    let reference = sim(404, false);
    let batcher = Arc::new(Batcher::new(
        service.clone() as Arc<dyn LlmService>,
        BatchConfig { max_batch_size: JOINERS + 1, max_wait: Duration::from_secs(3600) },
    ));
    let tokens: Vec<CancelToken> = (0..JOINERS).map(|_| CancelToken::unbounded()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..JOINERS)
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                let token = tokens[i].clone();
                scope.spawn(move || {
                    let _scope = CancelScope::enter(&token);
                    batcher.complete(&prompt(i, 0))
                })
            })
            .collect();
        // Wait until all seven are in the filling batch, cancel the first
        // three *after* they joined, then flush by filling the batch.
        while batcher.pending_members() < JOINERS {
            std::thread::yield_now();
        }
        for token in tokens.iter().take(DOOMED) {
            token.cancel();
        }
        let flusher = batcher.complete(&prompt(JOINERS, 0));
        assert_eq!(flusher, reference.complete(&prompt(JOINERS, 0)));
        for (i, handle) in handles.into_iter().enumerate() {
            let answer = handle.join().expect("no member panicked");
            if i < DOOMED {
                assert_eq!(answer, CANCELLED_NOTICE, "member {i} was cancelled in-batch");
            } else {
                assert_eq!(answer, reference.complete(&prompt(i, 0)), "member {i} survived");
            }
        }
    });

    let log = batcher.flush_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].occupancy, JOINERS + 1);
    assert_eq!(log[0].live, JOINERS + 1 - DOOMED);
    assert_eq!(log[0].cancelled, DOOMED);
    assert_eq!(log[0].reason, FlushReason::Size);
    let snap = batcher.snapshot();
    assert_eq!(snap.cancelled_members, DOOMED as u64);
    // The reference served the five survivors one call each; the batcher
    // billed the same tokens in a single call, and nothing for the doomed.
    let ledger = service.usage();
    let unbatched = reference.usage();
    assert_eq!(ledger.calls, 1);
    assert_eq!(unbatched.calls, (JOINERS + 1 - DOOMED) as u64);
    assert_eq!(ledger.tokens_in, unbatched.tokens_in, "cancelled members billed nothing");
    assert_eq!(ledger.tokens_out, unbatched.tokens_out);
    assert_eq!(log[0].usage, ledger, "the flush record carries the exact billed usage");
}
