//! [`TracedLlm`]: an [`LlmService`] wrapper that emits one `LlmCall` span
//! per call with exact token attribution.
//!
//! The accounting mirrors `lingua-serve`'s `UsageMeter` formula for formula:
//! tokens are recomputed with [`count_tokens`] over the *same strings* the
//! meter (and `SimLlm`'s own meter) bill, so a span tree's cost rollup
//! reconciles with the per-job `Usage` total exactly — to the token, and
//! therefore to the cent.

use crate::event::SpanKind;
use crate::tracer::Tracer;
use lingua_llm_sim::cost::count_tokens;
use lingua_llm_sim::{
    CodeGenSpec, CompletionRequest, GeneratedCode, LlmService, Usage, CANCELLED_NOTICE,
};
use std::sync::Arc;

/// Wraps a shared LLM service, emitting an `LlmCall` span per call.
pub struct TracedLlm {
    inner: Arc<dyn LlmService>,
    tracer: Tracer,
}

impl TracedLlm {
    /// Wrap `inner` unless the tracer is disabled, in which case the service
    /// is returned untouched (zero overhead on the hot path).
    pub fn wrap(tracer: &Tracer, inner: Arc<dyn LlmService>) -> Arc<dyn LlmService> {
        if tracer.is_enabled() {
            Arc::new(TracedLlm { inner, tracer: tracer.clone() })
        } else {
            inner
        }
    }

    fn call_usage(tokens_in: usize, tokens_out: usize) -> Usage {
        let mut usage = Usage::default();
        usage.record(tokens_in, tokens_out);
        usage
    }
}

impl LlmService for TracedLlm {
    fn complete(&self, request: &CompletionRequest) -> String {
        let mut span = self.tracer.span(SpanKind::LlmCall, "complete");
        let response = self.inner.complete(request);
        if response == CANCELLED_NOTICE {
            // The call was never placed and nothing was billed downstream;
            // attributing usage here would desync the span rollup from the
            // meters (which all skip the notice).
            span.attr("cancelled", "true");
        } else {
            span.set_usage(Self::call_usage(
                count_tokens(&request.prompt),
                count_tokens(&response),
            ));
        }
        response
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        let mut span = self.tracer.span(SpanKind::LlmCall, "embed");
        let embedding = self.inner.embed(text);
        span.set_usage(Self::call_usage(count_tokens(text), 0));
        embedding
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.inner.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        let mut span = self.tracer.span(SpanKind::LlmCall, "generate_code");
        let code = self.inner.generate_code(spec);
        span.set_usage(Self::call_usage(count_tokens(&spec.task), count_tokens(&code.source)));
        code
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        let mut span = self.tracer.span(SpanKind::LlmCall, "suggest_fix");
        let suggestion = self.inner.suggest_fix(source, failures);
        // Bill the same request string `SimLlm::suggest_fix` meters.
        let request = format!("{source}\n{}", failures.join("\n"));
        span.set_usage(Self::call_usage(count_tokens(&request), count_tokens(&suggestion)));
        suggestion
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        let mut span = self.tracer.span(SpanKind::LlmCall, "repair_code");
        let code = self.inner.repair_code(spec, previous, suggestion);
        // Bill the same request string `SimLlm::repair_code` meters.
        let request = format!("{}\n{suggestion}", previous.source);
        span.set_usage(Self::call_usage(count_tokens(&request), count_tokens(&code.source)));
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::sink::{RingSink, TraceSink};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;

    #[test]
    fn disabled_tracer_returns_the_inner_service() {
        let world = WorldSpec::generate(5);
        let inner: Arc<dyn LlmService> = Arc::new(SimLlm::with_seed(&world, 5));
        let wrapped = TracedLlm::wrap(&Tracer::disabled(), Arc::clone(&inner));
        assert!(Arc::ptr_eq(&wrapped, &inner), "no wrapper when tracing is off");
    }

    #[test]
    fn each_call_kind_emits_a_span_with_usage() {
        let world = WorldSpec::generate(5);
        let sink = Arc::new(RingSink::new(256));
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let llm = TracedLlm::wrap(&tracer, Arc::new(SimLlm::with_seed(&world, 5)));

        let prompt = "Summarize.\nText: alpha beta gamma";
        let response = llm.complete(&CompletionRequest::new(prompt));
        llm.embed("alpha beta");

        let events = sink.events();
        let ends: Vec<_> = events.iter().filter(|e| e.phase == Phase::End).collect();
        assert_eq!(ends.len(), 2);
        let complete_end = ends.iter().find(|e| e.name == "complete").unwrap();
        let usage = complete_end.usage.expect("usage attributed on end edge");
        assert_eq!(usage.calls, 1);
        assert_eq!(usage.tokens_in, count_tokens(prompt) as u64);
        assert_eq!(usage.tokens_out, count_tokens(&response) as u64);
        let embed_end = ends.iter().find(|e| e.name == "embed").unwrap();
        assert_eq!(embed_end.usage.unwrap().tokens_out, 0);
    }

    #[test]
    fn traced_usage_matches_a_usage_meter_exactly() {
        // The invariant golden tests rely on: TracedLlm and SimLlm's own
        // meter bill identical token counts for identical traffic.
        let world = WorldSpec::generate(5);
        let sim = Arc::new(SimLlm::with_seed(&world, 5));
        let sink = Arc::new(RingSink::new(256));
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let llm = TracedLlm::wrap(&tracer, Arc::clone(&sim) as Arc<dyn LlmService>);

        llm.complete(&CompletionRequest::new("Summarize.\nText: one two three"));
        llm.complete(&CompletionRequest::new("Determine if the records match.\nA: x\nB: y"));
        let spec = CodeGenSpec {
            task: "tokenize the text into words".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        let code = llm.generate_code(&spec);
        let fix = llm.suggest_fix(&code.source, &["case 3 failed".to_string()]);
        llm.repair_code(&spec, &code, &fix);

        let mut rolled = Usage::default();
        for event in sink.events() {
            if event.phase == Phase::End {
                if let Some(usage) = event.usage {
                    rolled.merge(&usage);
                }
            }
        }
        let booked = sim.usage();
        assert_eq!(rolled.calls, booked.calls);
        assert_eq!(rolled.tokens_in, booked.tokens_in);
        assert_eq!(rolled.tokens_out, booked.tokens_out);
    }
}
