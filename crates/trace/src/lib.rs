//! # lingua-trace
//!
//! Hierarchical execution tracing for the Lingua Manga stack: one causality
//! spine from a serve job down to every LLM call it provoked, with exact
//! token/cost attribution at each level.
//!
//! Why the paper's reproduction needs this: the optimizer's whole value
//! proposition (§3.2) is *rerouting* work — a Simulator takeover answers
//! from a student model, a Validator retry regenerates code, a Connector
//! denies an over-broad query, a gateway fails over to a standby backend.
//! Aggregate counters say *how often* those paths fired; a trace says *which
//! record took which path and what it cost*. Because every layer of this
//! repo is seeded and deterministic, traces double as the strongest
//! regression fixture available: a **golden trace** pins the entire
//! decision sequence of a pipeline run, not just its outputs.
//!
//! Design points:
//!
//! * **Logical clock** ([`clock::LogicalClock`]): timestamps are a
//!   process-wide event counter, never wall time, so seeded runs emit
//!   bit-identical streams.
//! * **Disabled-by-default** ([`Tracer::disabled`]): every emit is one
//!   branch; attribute closures never run; the LLM wrapper is not even
//!   installed. Production can leave the plumbing in place for free.
//! * **Ring-buffered sink** ([`RingSink`]): bounded memory with counted
//!   eviction for always-on tracing.
//! * **Cost rollups** ([`TraceTree::cost_of`]): usage is attributed only on
//!   `LlmCall` spans, using the same token formulas the usage meters bill,
//!   so a subtree rollup reconciles with `Usage` totals exactly.
//! * **Golden serialization** ([`TraceTree::golden`]): stable fields only,
//!   roots sorted canonically — byte-identical across runs and worker
//!   counts.
//! * **Chrome export** ([`chrome::chrome_trace_json`]): open in
//!   `chrome://tracing` or Perfetto.

pub mod chrome;
pub mod clock;
pub mod event;
pub mod llm;
pub mod sink;
pub mod summary;
pub mod tracer;
pub mod tree;

pub use chrome::chrome_trace_json;
pub use event::{Phase, SpanKind, TraceEvent};
pub use llm::TracedLlm;
pub use sink::{NullSink, RingSink, TraceSink};
pub use summary::TraceSummary;
pub use tracer::{EnterGuard, ManualSpan, SpanGuard, Tracer};
pub use tree::{InstantNode, SpanNode, TraceError, TraceTree};

use std::sync::Arc;

/// Convenience: a tracer over a fresh [`RingSink`] of `capacity` events.
pub fn ring_tracer(capacity: usize) -> (Tracer, Arc<RingSink>) {
    let sink = Arc::new(RingSink::new(capacity));
    (Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>), sink)
}
