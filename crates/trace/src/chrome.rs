//! Chrome `trace_event` export: open the JSON in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) to see the span forest on a timeline.
//!
//! Logical timestamps are mapped 1:1 onto microseconds — the visual widths
//! are causal distance, not wall time, which is exactly what a deterministic
//! trace can promise. Span edges become `B`/`E` duration events, instants
//! become `i` events scoped to their thread.

use crate::event::{Phase, TraceEvent};
use serde_json::{json, Value};

/// Render an event stream as a Chrome JSON-array trace.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    serde_json::to_string_pretty(&chrome_trace_value(events)).expect("chrome trace serializes")
}

fn chrome_trace_value(events: &[TraceEvent]) -> Value {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    let records: Vec<Value> = sorted.iter().map(|e| chrome_record(e)).collect();
    json!({
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "logical (1 event = 1 us)",
            "source": "lingua-trace",
        },
    })
}

fn chrome_record(event: &TraceEvent) -> Value {
    let ph = match event.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    };
    let mut args = serde_json::Map::new();
    for (key, value) in &event.attrs {
        args.insert(key.clone(), json!(value));
    }
    if let Some(usage) = &event.usage {
        args.insert("llm_calls".into(), json!(usage.calls));
        args.insert("tokens_in".into(), json!(usage.tokens_in));
        args.insert("tokens_out".into(), json!(usage.tokens_out));
    }
    let mut record = serde_json::Map::new();
    record.insert("name".into(), Value::String(event.name.clone()));
    record.insert("cat".into(), json!(event.kind.as_str()));
    record.insert("ph".into(), json!(ph));
    record.insert("ts".into(), json!(event.seq));
    record.insert("pid".into(), json!(1));
    record.insert("tid".into(), json!(event.thread));
    if event.phase == Phase::Instant {
        record.insert("s".into(), json!("t"));
    }
    if !args.is_empty() {
        record.insert("args".into(), Value::Object(args));
    }
    Value::Object(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::sink::{RingSink, TraceSink};
    use crate::tracer::Tracer;
    use lingua_llm_sim::Usage;
    use std::sync::Arc;

    #[test]
    fn exports_balanced_duration_events() {
        let sink = Arc::new(RingSink::new(256));
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        {
            let _p = tracer.span(SpanKind::Pipeline, "er");
            let mut call = tracer.span(SpanKind::LlmCall, "complete");
            let mut usage = Usage::default();
            usage.record(12, 3);
            call.set_usage(usage);
            drop(call);
            tracer.instant(SpanKind::Gateway, "failover", || vec![("to".into(), "standby".into())]);
        }
        let text = chrome_trace_json(&sink.events());
        assert!(text.contains("traceEvents"), "serialized trace carries the event array");
        let parsed = chrome_trace_value(&sink.events());
        let records = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(records.len(), 5);
        let begins = records.iter().filter(|r| r["ph"] == "B").count();
        let ends = records.iter().filter(|r| r["ph"] == "E").count();
        assert_eq!(begins, ends, "every B has a matching E");
        let call_end = records.iter().find(|r| r["ph"] == "E" && r["name"] == "complete").unwrap();
        assert_eq!(call_end["args"]["tokens_in"], 12);
        let instant = records.iter().find(|r| r["ph"] == "i").unwrap();
        assert_eq!(instant["cat"], "gateway");
        assert_eq!(instant["args"]["to"], "standby");
        // Timestamps are the logical clock, strictly increasing.
        let ts: Vec<u64> = records.iter().map(|r| r["ts"].as_u64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }
}
