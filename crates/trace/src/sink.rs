//! Trace sinks: where emitted events go.
//!
//! The tracer is hot-path code, so the contract is deliberately minimal: a
//! sink receives owned events one at a time and must tolerate concurrent
//! callers. The bundled [`RingSink`] keeps the newest `capacity` events in a
//! bounded ring so long-running servers can leave tracing on without
//! unbounded growth; eviction is counted, never silent.

use crate::event::TraceEvent;
use crate::summary::TraceSummary;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Receives every emitted event. Implementations must be thread-safe.
pub trait TraceSink: Send + Sync {
    fn record(&self, event: TraceEvent);
    /// Events evicted or discarded by the sink (0 for lossless sinks).
    fn dropped(&self) -> u64 {
        0
    }
    /// Aggregate view of what the sink currently holds, if it keeps one.
    fn summary(&self) -> Option<TraceSummary> {
        None
    }
}

/// A sink that discards everything (useful to measure tracer overhead).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}

struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded in-memory collector: keeps the newest `capacity` events.
pub struct RingSink {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner { events: VecDeque::new(), dropped: 0 }),
        }
    }

    /// Copy out the retained events, oldest first (seq order).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Discard everything retained (the dropped counter is kept).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    fn summary(&self) -> Option<TraceSummary> {
        let inner = self.inner.lock();
        let mut summary = TraceSummary::from_events(inner.events.iter());
        summary.dropped = inner.dropped;
        Some(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, SpanKind};

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            span: seq,
            parent: None,
            thread: 0,
            phase: Phase::Instant,
            kind: SpanKind::Op,
            name: format!("e{seq}"),
            attrs: Vec::new(),
            usage: None,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let sink = RingSink::new(3);
        for seq in 0..5 {
            sink.record(event(seq));
        }
        let kept: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.len(), 3);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2, "clearing does not forget evictions");
    }

    #[test]
    fn null_sink_drops_nothing_it_admits_nothing() {
        let sink = NullSink;
        sink.record(event(1));
        assert_eq!(sink.dropped(), 0);
        assert!(sink.summary().is_none());
    }
}
