//! The tracer handle: span guards, manual cross-thread spans, and instants.
//!
//! A [`Tracer`] is a cheap clone-able handle that is either *disabled* (the
//! default — every operation is a branch on `None` and returns immediately,
//! allocating nothing) or *enabled* around a shared [`TraceSink`]. Parenting
//! is implicit through a thread-local span stack: opening a span pushes it,
//! dropping the guard pops it, and anything emitted in between becomes its
//! child. Work that crosses threads (a serve job: submitted on the caller's
//! thread, executed on a worker) uses the manual [`Tracer::begin`] /
//! [`Tracer::enter`] / [`Tracer::end`] triple instead.

use crate::clock::LogicalClock;
use crate::event::{Phase, SpanKind, TraceEvent};
use crate::sink::TraceSink;
use crate::summary::TraceSummary;
use lingua_llm_sim::Usage;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Process-wide thread ordinals: small, stable-for-the-thread integers for
// the `thread` field (golden serialization never includes them).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORD: Cell<Option<u64>> = const { Cell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_ordinal() -> u64 {
    THREAD_ORD.with(|cell| match cell.get() {
        Some(ord) => ord,
        None => {
            let ord = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(ord));
            ord
        }
    })
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    clock: LogicalClock,
    next_span: AtomicU64,
}

/// Handle for emitting trace events. Disabled by default; see module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

/// A span opened by [`Tracer::begin`], to be closed on any thread via
/// [`Tracer::end`]. Consuming it on `end` makes "closed exactly once" a
/// type-level guarantee for manual spans.
#[derive(Debug)]
pub struct ManualSpan {
    id: u64,
    kind: SpanKind,
    name: String,
}

impl ManualSpan {
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Tracer {
    /// The no-op tracer: every emit is a single branch, nothing allocates.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    pub fn new(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                clock: LogicalClock::new(),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The innermost open span on this thread, if tracing is enabled.
    pub fn current(&self) -> Option<u64> {
        self.inner.as_ref()?;
        SPAN_STACK.with(|stack| stack.borrow().last().copied())
    }

    /// Aggregate view from the sink, when it keeps one (e.g. [`crate::RingSink`]).
    pub fn summary(&self) -> Option<TraceSummary> {
        self.inner.as_ref().and_then(|inner| inner.sink.summary())
    }

    /// Events the sink lost (ring eviction).
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map(|inner| inner.sink.dropped()).unwrap_or(0)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        span: u64,
        parent: Option<u64>,
        phase: Phase,
        kind: SpanKind,
        name: &str,
        attrs: Vec<(String, String)>,
        usage: Option<Usage>,
    ) {
        if let Some(inner) = &self.inner {
            inner.sink.record(TraceEvent {
                seq: inner.clock.tick(),
                span,
                parent,
                thread: thread_ordinal(),
                phase,
                kind,
                name: name.to_string(),
                attrs,
                usage,
            });
        }
    }

    /// Open a scoped span: pushed as the current parent on this thread,
    /// closed (and popped) when the returned guard drops.
    pub fn span(&self, kind: SpanKind, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tracer: Tracer::disabled(),
                id: 0,
                kind,
                name: String::new(),
                attrs: Vec::new(),
                usage: None,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = self.current();
        self.emit(id, parent, Phase::Begin, kind, name, Vec::new(), None);
        SPAN_STACK.with(|stack| stack.borrow_mut().push(id));
        SpanGuard {
            tracer: self.clone(),
            id,
            kind,
            name: name.to_string(),
            attrs: Vec::new(),
            usage: None,
        }
    }

    /// Emit a point event under the current span. The attribute closure only
    /// runs when tracing is enabled, keeping disabled call sites free of
    /// allocation.
    pub fn instant<F>(&self, kind: SpanKind, name: &str, attrs: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        self.instant_under(self.current(), kind, name, attrs);
    }

    /// Emit a point event under an explicit parent span.
    pub fn instant_under<F>(&self, parent: Option<u64>, kind: SpanKind, name: &str, attrs: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let Some(inner) = &self.inner else { return };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        self.emit(id, parent, Phase::Instant, kind, name, attrs(), None);
    }

    /// Open a manual span (not pushed on any stack): the begin edge is
    /// emitted here with `attrs`, the end edge when [`Tracer::end`] consumes
    /// the returned handle — possibly on a different thread.
    pub fn begin<F>(&self, kind: SpanKind, name: &str, attrs: F) -> ManualSpan
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let Some(inner) = &self.inner else {
            return ManualSpan { id: 0, kind, name: String::new() };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        self.emit(id, self.current(), Phase::Begin, kind, name, attrs(), None);
        ManualSpan { id, kind, name: name.to_string() }
    }

    /// Close a manual span with final attributes.
    pub fn end<F>(&self, span: ManualSpan, attrs: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        if self.inner.is_none() {
            return;
        }
        self.emit(span.id, None, Phase::End, span.kind, &span.name, attrs(), None);
    }

    /// Make a manual span the current parent on *this* thread for the guard's
    /// lifetime — how a worker thread nests its work under a job span that
    /// was begun on the submitting thread.
    pub fn enter(&self, span: &ManualSpan) -> EnterGuard {
        if self.inner.is_none() {
            return EnterGuard { tracer: Tracer::disabled(), id: 0 };
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push(span.id));
        EnterGuard { tracer: self.clone(), id: span.id }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

/// Guard for a scoped span; the end edge is emitted on drop with whatever
/// attributes and usage were accumulated.
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
    kind: SpanKind,
    name: String,
    attrs: Vec<(String, String)>,
    usage: Option<Usage>,
}

impl SpanGuard {
    /// Attach a key/value annotation, reported on the end edge.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if self.tracer.is_enabled() {
            self.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Attach exact usage accounting (LLM call spans).
    pub fn set_usage(&mut self, usage: Usage) {
        if self.tracer.is_enabled() {
            self.usage = Some(usage);
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.id), "span guards must nest");
            stack.pop();
        });
        let attrs = std::mem::take(&mut self.attrs);
        self.tracer.emit(self.id, None, Phase::End, self.kind, &self.name, attrs, self.usage);
    }
}

/// Guard returned by [`Tracer::enter`]; pops the entered span on drop.
pub struct EnterGuard {
    tracer: Tracer,
    id: u64,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.id), "enter guards must nest");
            stack.pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn ring_tracer() -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::new(1024));
        (Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>), sink)
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_never_runs_attr_closures() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut guard = tracer.span(SpanKind::Op, "noop");
        guard.attr("k", "v");
        drop(guard);
        tracer.instant(SpanKind::Gateway, "retry", || panic!("must not run"));
        let manual = tracer.begin(SpanKind::ServeJob, "job", || panic!("must not run"));
        let _enter = tracer.enter(&manual);
        tracer.end(manual, || panic!("must not run"));
        assert_eq!(tracer.current(), None);
        assert_eq!(tracer.dropped(), 0);
        assert!(tracer.summary().is_none());
    }

    #[test]
    fn scoped_spans_nest_through_the_thread_stack() {
        let (tracer, sink) = ring_tracer();
        {
            let _outer = tracer.span(SpanKind::Pipeline, "p");
            let outer_id = tracer.current().unwrap();
            {
                let mut inner = tracer.span(SpanKind::Op, "o");
                inner.attr("module", "judge");
                tracer.instant(SpanKind::Simulator, "student_serve", || {
                    vec![("confidence".into(), "0.9".into())]
                });
            }
            assert_eq!(tracer.current(), Some(outer_id));
        }
        assert_eq!(tracer.current(), None);
        let events = sink.events();
        assert_eq!(events.len(), 5, "2 begins + 1 instant + 2 ends");
        let begin_op = events.iter().find(|e| e.phase == Phase::Begin && e.name == "o").unwrap();
        let begin_p = events.iter().find(|e| e.phase == Phase::Begin && e.name == "p").unwrap();
        assert_eq!(begin_op.parent, Some(begin_p.span));
        let instant = events.iter().find(|e| e.phase == Phase::Instant).unwrap();
        assert_eq!(instant.parent, Some(begin_op.span));
        assert_eq!(instant.attrs, vec![("confidence".to_string(), "0.9".to_string())]);
        let end_op = events.iter().find(|e| e.phase == Phase::End && e.name == "o").unwrap();
        assert_eq!(end_op.attrs, vec![("module".to_string(), "judge".to_string())]);
        // Logical clock: seqs are unique and increasing in emission order.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn manual_spans_cross_threads() {
        let (tracer, sink) = ring_tracer();
        let job = tracer.begin(SpanKind::ServeJob, "job", || vec![("job".into(), "7".into())]);
        let job_id = job.id();
        let worker_tracer = tracer.clone();
        let handle = std::thread::spawn(move || {
            let _enter = worker_tracer.enter(&job);
            {
                let _run = worker_tracer.span(SpanKind::Pipeline, "run");
            }
            worker_tracer.end(job, || vec![("path".into(), "executed".into())]);
        });
        handle.join().unwrap();
        let events = sink.events();
        let run_begin = events.iter().find(|e| e.phase == Phase::Begin && e.name == "run").unwrap();
        assert_eq!(run_begin.parent, Some(job_id), "worker nests under the entered span");
        let job_end = events.iter().find(|e| e.phase == Phase::End && e.name == "job").unwrap();
        assert_eq!(job_end.span, job_id);
        assert_eq!(job_end.attrs, vec![("path".to_string(), "executed".to_string())]);
        let job_begin = events.iter().find(|e| e.phase == Phase::Begin && e.name == "job").unwrap();
        assert_ne!(job_begin.thread, run_begin.thread, "begin and work on different threads");
    }
}
