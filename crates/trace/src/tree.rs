//! Span-tree reconstruction, well-formedness checking, per-span cost
//! rollups, and the canonical "golden" serialization used by snapshot tests.
//!
//! Golden rules: only *stable* fields survive serialization — span kind,
//! name, attributes, instant decisions, and rolled-up LLM usage. Sequence
//! numbers, span ids, and thread ordinals are scheduling-dependent and are
//! excluded; root spans are sorted by content so a 4-worker run serializes
//! byte-identically to a 1-worker run of the same workload.

use crate::event::{Phase, SpanKind, TraceEvent};
use lingua_llm_sim::Usage;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Why an event stream failed well-formedness checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An `End` edge arrived for a span with no `Begin`.
    EndWithoutBegin(u64),
    /// A span's `End` edge was seen twice.
    DoubleEnd(u64),
    /// A span was begun but never ended.
    Unclosed(u64),
    /// A child or instant references a parent that was not open at the time.
    ParentNotOpen { child: u64, parent: u64 },
    /// Two events carry the same logical timestamp.
    DuplicateSeq(u64),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::EndWithoutBegin(id) => write!(f, "span {id}: end without begin"),
            TraceError::DoubleEnd(id) => write!(f, "span {id}: ended twice"),
            TraceError::Unclosed(id) => write!(f, "span {id}: begun but never ended"),
            TraceError::ParentNotOpen { child, parent } => {
                write!(f, "event {child}: parent {parent} not open at emission")
            }
            TraceError::DuplicateSeq(seq) => write!(f, "duplicate logical timestamp {seq}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A point decision recorded inside a span.
#[derive(Debug, Clone)]
pub struct InstantNode {
    pub seq: u64,
    pub kind: SpanKind,
    pub name: String,
    pub attrs: BTreeMap<String, String>,
}

/// A reconstructed span with its children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub id: u64,
    pub kind: SpanKind,
    pub name: String,
    pub begin_seq: u64,
    pub end_seq: u64,
    /// Begin- and end-edge attributes, merged (end wins on key collision).
    pub attrs: BTreeMap<String, String>,
    /// Usage attributed directly to this span (LLM call spans).
    pub usage: Option<Usage>,
    pub instants: Vec<InstantNode>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total usage attributed to this span and all descendants — the
    /// "cost of" rollup: for any span, what its subtree spent on LLM calls.
    pub fn rollup(&self) -> Usage {
        let mut total = self.usage.unwrap_or_default();
        for child in &self.children {
            total.merge(&child.rollup());
        }
        total
    }

    /// Count of descendant spans (excluding self) of a given kind.
    pub fn count_kind(&self, kind: SpanKind) -> u64 {
        let mut n = 0;
        for child in &self.children {
            if child.kind == kind {
                n += 1;
            }
            n += child.count_kind(kind);
        }
        n
    }

    /// Stable serialization of this span for golden fixtures.
    pub fn golden(&self) -> Value {
        let rollup = self.rollup();
        let mut node = serde_json::Map::new();
        node.insert("kind".into(), json!(self.kind.as_str()));
        node.insert("name".into(), Value::String(self.name.clone()));
        if !self.attrs.is_empty() {
            node.insert("attrs".into(), attrs_value(&self.attrs));
        }
        if !self.instants.is_empty() {
            // Instants in causal order; attrs inline, seq excluded.
            let instants: Vec<Value> = self
                .instants
                .iter()
                .map(|i| {
                    let mut v = serde_json::Map::new();
                    v.insert("kind".into(), json!(i.kind.as_str()));
                    v.insert("name".into(), Value::String(i.name.clone()));
                    if !i.attrs.is_empty() {
                        v.insert("attrs".into(), attrs_value(&i.attrs));
                    }
                    Value::Object(v)
                })
                .collect();
            node.insert("events".into(), Value::Array(instants));
        }
        if rollup.calls + rollup.cached_calls + rollup.failed_calls > 0 {
            node.insert(
                "llm".into(),
                json!({
                    "calls": rollup.calls,
                    "cached_calls": rollup.cached_calls,
                    "failed_calls": rollup.failed_calls,
                    "tokens_in": rollup.tokens_in,
                    "tokens_out": rollup.tokens_out,
                }),
            );
        }
        if !self.children.is_empty() {
            let children: Vec<Value> = self.children.iter().map(|c| c.golden()).collect();
            node.insert("children".into(), Value::Array(children));
        }
        Value::Object(node)
    }
}

/// Attribute maps as JSON objects, built explicitly so the serialization
/// stays independent of `json!` macro conveniences.
fn attrs_value(attrs: &BTreeMap<String, String>) -> Value {
    Value::Object(attrs.iter().map(|(k, v)| (k.clone(), Value::String(v.clone()))).collect())
}

/// A reconstructed forest of spans.
#[derive(Debug, Clone, Default)]
pub struct TraceTree {
    pub roots: Vec<SpanNode>,
}

impl TraceTree {
    /// Rebuild the span forest from an event stream, enforcing
    /// well-formedness: unique timestamps, every span closed exactly once,
    /// and every parent open when a child or instant is emitted under it.
    pub fn build(events: &[TraceEvent]) -> Result<TraceTree, TraceError> {
        let mut sorted: Vec<&TraceEvent> = events.iter().collect();
        sorted.sort_by_key(|e| e.seq);
        for window in sorted.windows(2) {
            if window[0].seq == window[1].seq {
                return Err(TraceError::DuplicateSeq(window[0].seq));
            }
        }

        // Span id → (node, parent, closed?).
        let mut open: BTreeMap<u64, (SpanNode, Option<u64>)> = BTreeMap::new();
        let mut closed: BTreeMap<u64, (SpanNode, Option<u64>)> = BTreeMap::new();
        for event in &sorted {
            match event.phase {
                Phase::Begin => {
                    if let Some(parent) = event.parent {
                        if !open.contains_key(&parent) {
                            return Err(TraceError::ParentNotOpen { child: event.span, parent });
                        }
                    }
                    let node = SpanNode {
                        id: event.span,
                        kind: event.kind,
                        name: event.name.clone(),
                        begin_seq: event.seq,
                        end_seq: 0,
                        attrs: event.attrs.iter().cloned().collect(),
                        usage: None,
                        instants: Vec::new(),
                        children: Vec::new(),
                    };
                    open.insert(event.span, (node, event.parent));
                }
                Phase::End => {
                    let Some((mut node, parent)) = open.remove(&event.span) else {
                        return Err(if closed.contains_key(&event.span) {
                            TraceError::DoubleEnd(event.span)
                        } else {
                            TraceError::EndWithoutBegin(event.span)
                        });
                    };
                    node.end_seq = event.seq;
                    for (k, v) in &event.attrs {
                        node.attrs.insert(k.clone(), v.clone());
                    }
                    node.usage = event.usage;
                    closed.insert(event.span, (node, parent));
                }
                Phase::Instant => {
                    if let Some(parent) = event.parent {
                        let Some((node, _)) = open.get_mut(&parent) else {
                            return Err(TraceError::ParentNotOpen { child: event.span, parent });
                        };
                        node.instants.push(InstantNode {
                            seq: event.seq,
                            kind: event.kind,
                            name: event.name.clone(),
                            attrs: event.attrs.iter().cloned().collect(),
                        });
                    }
                    // Orphan instants (no parent) are allowed but not kept.
                }
            }
        }
        if let Some((&id, _)) = open.iter().next() {
            return Err(TraceError::Unclosed(id));
        }

        // Attach children to parents, deepest spans first so subtrees are
        // complete before they are attached. End-seq order guarantees a
        // child closed before its parent.
        let mut by_end: Vec<u64> = closed.keys().copied().collect();
        by_end.sort_by_key(|id| closed[id].0.end_seq);
        let mut roots = Vec::new();
        for id in by_end {
            let (node, parent) = closed.remove(&id).expect("visited once");
            match parent.and_then(|p| closed.get_mut(&p)) {
                Some((parent_node, _)) => parent_node.children.push(node),
                None => roots.push(node),
            }
        }
        // Children accumulated in end order; restore causal begin order.
        fn order(node: &mut SpanNode) {
            node.children.sort_by_key(|c| c.begin_seq);
            node.instants.sort_by_key(|i| i.seq);
            for child in &mut node.children {
                order(child);
            }
        }
        roots.sort_by_key(|r| r.begin_seq);
        roots.iter_mut().for_each(order);
        Ok(TraceTree { roots })
    }

    /// Find a span anywhere in the forest.
    pub fn find(&self, id: u64) -> Option<&SpanNode> {
        fn walk(node: &SpanNode, id: u64) -> Option<&SpanNode> {
            if node.id == id {
                return Some(node);
            }
            node.children.iter().find_map(|c| walk(c, id))
        }
        self.roots.iter().find_map(|r| walk(r, id))
    }

    /// The cost rollup of one span's subtree (zero if the span is unknown).
    pub fn cost_of(&self, id: u64) -> Usage {
        self.find(id).map(|n| n.rollup()).unwrap_or_default()
    }

    /// Total usage attributed across the whole forest.
    pub fn total_usage(&self) -> Usage {
        let mut total = Usage::default();
        for root in &self.roots {
            total.merge(&root.rollup());
        }
        total
    }

    /// All spans of a kind, in begin order.
    pub fn spans_of_kind(&self, kind: SpanKind) -> Vec<&SpanNode> {
        fn walk<'a>(node: &'a SpanNode, kind: SpanKind, out: &mut Vec<&'a SpanNode>) {
            if node.kind == kind {
                out.push(node);
            }
            for child in &node.children {
                walk(child, kind, out);
            }
        }
        let mut out = Vec::new();
        for root in &self.roots {
            walk(root, kind, &mut out);
        }
        out
    }

    /// Canonical golden serialization: roots sorted by their own serialized
    /// content, so worker scheduling cannot reorder the fixture.
    pub fn golden(&self) -> Value {
        let mut roots: Vec<Value> = self.roots.iter().map(|r| r.golden()).collect();
        roots.sort_by_key(|v| serde_json::to_string(v).expect("json value serializes"));
        json!({ "roots": roots })
    }

    /// Pretty-printed canonical golden JSON (the fixture file format).
    pub fn golden_pretty(&self) -> String {
        let mut text = serde_json::to_string_pretty(&self.golden()).expect("serializable");
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{RingSink, TraceSink};
    use crate::tracer::Tracer;
    use std::sync::Arc;

    fn ring_tracer() -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::new(4096));
        (Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>), sink)
    }

    fn usage(tokens_in: usize, tokens_out: usize) -> Usage {
        let mut u = Usage::default();
        u.record(tokens_in, tokens_out);
        u
    }

    #[test]
    fn rebuilds_nesting_and_rolls_up_cost() {
        let (tracer, sink) = ring_tracer();
        let pipeline_id;
        {
            let pipeline = tracer.span(SpanKind::Pipeline, "er");
            pipeline_id = pipeline.id();
            {
                let _op = tracer.span(SpanKind::Op, "judge");
                let mut call = tracer.span(SpanKind::LlmCall, "complete");
                call.set_usage(usage(100, 10));
            }
            {
                let _op = tracer.span(SpanKind::Op, "judge");
                let mut call = tracer.span(SpanKind::LlmCall, "complete");
                call.set_usage(usage(50, 5));
            }
        }
        let tree = TraceTree::build(&sink.events()).unwrap();
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.roots[0];
        assert_eq!(root.kind, SpanKind::Pipeline);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.count_kind(SpanKind::LlmCall), 2);
        let total = tree.cost_of(pipeline_id);
        assert_eq!(total.calls, 2);
        assert_eq!(total.tokens_in, 150);
        assert_eq!(total.tokens_out, 15);
        // Per-op rollup only sees its own call.
        let first_op = tree.cost_of(root.children[0].id);
        assert_eq!(first_op.tokens_in, 100);
        assert_eq!(tree.total_usage().tokens_in, 150);
        assert_eq!(tree.spans_of_kind(SpanKind::LlmCall).len(), 2);
    }

    #[test]
    fn golden_is_stable_under_root_reordering() {
        // Two independent jobs traced in either order serialize identically
        // after canonicalization — the 1-vs-4-worker guarantee.
        let make = |order: &[usize]| {
            let (tracer, sink) = ring_tracer();
            for &i in order {
                let job = tracer.begin(SpanKind::ServeJob, "job", || {
                    vec![("fingerprint".into(), format!("f{i}"))]
                });
                let enter = tracer.enter(&job);
                let mut call = tracer.span(SpanKind::LlmCall, "complete");
                call.set_usage(usage(10 * (i + 1), i + 1));
                drop(call);
                drop(enter);
                tracer.end(job, || vec![("path".into(), "executed".into())]);
            }
            TraceTree::build(&sink.events()).unwrap().golden_pretty()
        };
        assert_eq!(make(&[0, 1]), make(&[1, 0]));
    }

    #[test]
    fn golden_excludes_ids_seqs_and_threads() {
        let (tracer, sink) = ring_tracer();
        {
            let _span = tracer.span(SpanKind::Module, "judge");
        }
        let text = TraceTree::build(&sink.events()).unwrap().golden_pretty();
        assert!(text.contains("\"module\""));
        assert!(!text.contains("seq"));
        assert!(!text.contains("thread"));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let (tracer, sink) = ring_tracer();
        let manual = tracer.begin(SpanKind::ServeJob, "job", Vec::new);
        let id = manual.id();
        // Unclosed span.
        let err = TraceTree::build(&sink.events()).unwrap_err();
        assert_eq!(err, TraceError::Unclosed(id));
        tracer.end(manual, Vec::new);
        assert!(TraceTree::build(&sink.events()).is_ok());
        // Double end: forge a second end edge.
        let mut events = sink.events();
        let end = events.last().unwrap().clone();
        events.push(TraceEvent { seq: end.seq + 1, ..end.clone() });
        assert_eq!(TraceTree::build(&events).unwrap_err(), TraceError::DoubleEnd(id));
        // End without begin.
        let orphan = vec![events.last().unwrap().clone()];
        assert!(matches!(TraceTree::build(&orphan).unwrap_err(), TraceError::EndWithoutBegin(_)));
        // Duplicate timestamps.
        let dup = vec![events[0].clone(), events[0].clone()];
        assert!(matches!(TraceTree::build(&dup).unwrap_err(), TraceError::DuplicateSeq(_)));
    }

    #[test]
    fn instant_under_closed_parent_is_rejected() {
        let (tracer, sink) = ring_tracer();
        let span_id;
        {
            let span = tracer.span(SpanKind::Op, "o");
            span_id = span.id();
        }
        let mut events = sink.events();
        let last_seq = events.last().unwrap().seq;
        events.push(TraceEvent {
            seq: last_seq + 1,
            span: 999,
            parent: Some(span_id),
            thread: 0,
            phase: Phase::Instant,
            kind: SpanKind::Gateway,
            name: "late".into(),
            attrs: Vec::new(),
            usage: None,
        });
        assert_eq!(
            TraceTree::build(&events).unwrap_err(),
            TraceError::ParentNotOpen { child: 999, parent: span_id }
        );
    }
}
