//! The deterministic logical clock.
//!
//! Trace timestamps must order events *causally*, survive golden-fixture
//! comparison, and cost one atomic increment. Wall time fails the first two,
//! so the clock is a process-wide call counter: every emitted event ticks it
//! once, and a seeded single-threaded run assigns the same timestamps on
//! every execution. Under concurrency the ordering is whatever the atomic
//! observed — still monotone per thread, still a valid linearisation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A strictly increasing event counter.
#[derive(Debug, Default)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl LogicalClock {
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Take the next timestamp. Each value is handed out exactly once.
    pub fn tick(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Timestamps handed out so far.
    pub fn now(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_unique_and_increasing() {
        let clock = LogicalClock::new();
        let a = clock.tick();
        let b = clock.tick();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn ticks_are_unique_across_threads() {
        let clock = std::sync::Arc::new(LogicalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = std::sync::Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| clock.tick()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for handle in handles {
            let ticks = handle.join().unwrap();
            assert!(ticks.windows(2).all(|w| w[0] < w[1]), "monotone per thread");
            all.extend(ticks);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "no timestamp handed out twice");
    }
}
