//! An aggregate view of a trace, cheap enough to embed in metrics
//! snapshots (`lingua-serve` folds one into its `MetricsSnapshot`).

use crate::event::{Phase, SpanKind, TraceEvent};
use serde::Serialize;
use std::collections::BTreeMap;

/// Rolled-up trace counters: how many spans of each kind, how much LLM
/// traffic the trace attributes, and whether the sink lost anything.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TraceSummary {
    /// Events currently retained by the sink.
    pub events: u64,
    /// Completed spans (end edges seen).
    pub spans: u64,
    /// Instant events.
    pub instants: u64,
    /// Events the sink evicted or discarded.
    pub dropped: u64,
    /// LLM calls attributed by the trace (`LlmCall` end edges).
    pub llm_calls: u64,
    /// Input tokens attributed by the trace.
    pub tokens_in: u64,
    /// Output tokens attributed by the trace.
    pub tokens_out: u64,
    /// Completed spans by kind label.
    pub spans_by_kind: BTreeMap<&'static str, u64>,
}

impl TraceSummary {
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for event in events {
            summary.events += 1;
            match event.phase {
                Phase::End => {
                    summary.spans += 1;
                    *summary.spans_by_kind.entry(event.kind.as_str()).or_default() += 1;
                    if event.kind == SpanKind::LlmCall {
                        if let Some(usage) = &event.usage {
                            summary.llm_calls += usage.calls + usage.cached_calls;
                            summary.tokens_in += usage.tokens_in;
                            summary.tokens_out += usage.tokens_out;
                        }
                    }
                }
                Phase::Instant => summary.instants += 1,
                Phase::Begin => {}
            }
        }
        summary
    }

    /// One-line rendering for text reports.
    pub fn report_line(&self) -> String {
        format!(
            "trace           {} span(s), {} instant(s), {} llm call(s) attributed \
             ({} tokens in, {} tokens out), {} event(s) dropped",
            self.spans,
            self.instants,
            self.llm_calls,
            self.tokens_in,
            self.tokens_out,
            self.dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_llm_sim::Usage;

    #[test]
    fn summary_counts_spans_instants_and_usage() {
        let mut usage = Usage::default();
        usage.record(10, 5);
        let events = vec![
            TraceEvent {
                seq: 0,
                span: 1,
                parent: None,
                thread: 0,
                phase: Phase::Begin,
                kind: SpanKind::LlmCall,
                name: "complete".into(),
                attrs: Vec::new(),
                usage: None,
            },
            TraceEvent {
                seq: 1,
                span: 1,
                parent: None,
                thread: 0,
                phase: Phase::End,
                kind: SpanKind::LlmCall,
                name: "complete".into(),
                attrs: Vec::new(),
                usage: Some(usage),
            },
            TraceEvent {
                seq: 2,
                span: 2,
                parent: None,
                thread: 0,
                phase: Phase::Instant,
                kind: SpanKind::Gateway,
                name: "retry".into(),
                attrs: Vec::new(),
                usage: None,
            },
        ];
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.events, 3);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.llm_calls, 1);
        assert_eq!(summary.tokens_in, 10);
        assert_eq!(summary.tokens_out, 5);
        assert_eq!(summary.spans_by_kind.get("llm_call"), Some(&1));
        assert!(summary.report_line().contains("1 span(s)"));
    }
}
