//! Trace events: the wire format every sink receives.
//!
//! An event is either the begin/end edge of a *span* (an interval with
//! children) or an *instant* (a point decision — a retry, a takeover, a
//! failover). Timestamps are **logical**: a process-wide call counter, not
//! wall time, so a seeded run emits a bit-identical event stream every time.

use lingua_llm_sim::Usage;
use serde::Serialize;

/// What layer of the system a span or instant belongs to.
///
/// The taxonomy mirrors the stack: serve jobs contain pipeline runs, which
/// contain op/module invocations, which contain optimizer decisions and LLM
/// calls, which (behind a gateway) contain gateway requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum SpanKind {
    /// One serve-layer job: queued → deduped/cached/executed.
    ServeJob,
    /// One `Executor::run` over a compiled pipeline.
    Pipeline,
    /// One `Compiler::compile` of a logical pipeline.
    Compile,
    /// One operator execution inside a pipeline run.
    Op,
    /// One module invocation through the registry (`call_module`).
    Module,
    /// One `Validator::validate_and_fix` session.
    Validator,
    /// Simulator (teacher/student) routing decisions.
    Simulator,
    /// Privacy-aware connector queries.
    Connector,
    /// One request entering the resilience gateway.
    Gateway,
    /// One call on an `LlmService` (tokens attributed on the end edge).
    LlmCall,
    /// Serve-layer supervision: worker panics, restarts, watchdog nudges.
    Supervisor,
    /// One event-time window in the streaming engine: begins when the first
    /// record lands, ends when the watermark closes it. Watermark advances
    /// and late-record drops are instants of this kind.
    StreamWindow,
    /// One cost-based planning session (`lingua-plan`): the span records the
    /// objective and plan-level totals; per-op `choose` instants under it
    /// carry the chosen physical alternative and its estimated $/ms/accuracy,
    /// so estimated-vs-actual cost is auditable per job afterwards.
    Plan,
    /// One micro-batch flush in the continuous batcher: the span carries the
    /// member count and flush reason; per-member `split` instants under it
    /// carry each member's usage split as attributes (never as `usage` —
    /// token attribution stays on `LlmCall` end edges so the trace
    /// conservation laws keep a single source of truth).
    Batch,
    /// One journal replay at server start (`lingua-durable`): the span
    /// brackets cache restoration and ledger restore; its end edge carries
    /// how much state survived the crash and how much tail was damaged.
    Recovery,
}

impl SpanKind {
    /// Stable lowercase label used in golden fixtures and Chrome categories.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::ServeJob => "serve_job",
            SpanKind::Pipeline => "pipeline",
            SpanKind::Compile => "compile",
            SpanKind::Op => "op",
            SpanKind::Module => "module",
            SpanKind::Validator => "validator",
            SpanKind::Simulator => "simulator",
            SpanKind::Connector => "connector",
            SpanKind::Gateway => "gateway",
            SpanKind::LlmCall => "llm_call",
            SpanKind::Supervisor => "supervisor",
            SpanKind::StreamWindow => "stream_window",
            SpanKind::Plan => "plan",
            SpanKind::Batch => "batch",
            SpanKind::Recovery => "recovery",
        }
    }
}

/// Which edge of a span an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Phase {
    Begin,
    End,
    Instant,
}

/// One record in the trace stream.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Logical timestamp: strictly increasing across the whole process.
    pub seq: u64,
    /// Span id; `Begin` and `End` edges of one span share it. Instants get
    /// their own id so every event is addressable.
    pub span: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Process-wide thread ordinal (small integer, assigned on first emit).
    pub thread: u64,
    pub phase: Phase,
    pub kind: SpanKind,
    pub name: String,
    /// Deterministic key/value annotations (paths taken, confidences,
    /// backend names). Never durations — those would break golden traces.
    pub attrs: Vec<(String, String)>,
    /// Exact usage booked by this event; set on `LlmCall` end edges only.
    pub usage: Option<Usage>,
}
