//! Conservation laws for the concurrent LLM hot path.
//!
//! N threads hammer one shared `SimLlm` with overlapping prompts; afterwards
//! the hit/miss/insertion/eviction/coalesce counters must reconcile *exactly*
//! with the total number of calls, and the usage ledger must account for
//! every token — billed or saved — to the cent. The laws extend the PR 3
//! trace-conservation style to the cache itself:
//!
//! 1. every call either billed or saved:
//!    `total = usage.calls + usage.cached_calls`
//! 2. every saved call came from a hit or a coalesced flight:
//!    `usage.cached_calls = stats.hits + stats.coalesced`
//! 3. every cache miss either led a flight (and billed) or coalesced:
//!    `stats.misses = usage.calls + stats.coalesced`
//! 4. every billed call inserted its response (fresh or racing refresh):
//!    `stats.insertions + stats.updates = usage.calls`
//! 5. every inserted entry is either resident or was evicted:
//!    `stats.insertions = stats.len + stats.evictions`
//! 6. token conservation: `tokens_in + tokens_in_saved` equals the sum of
//!    prompt tokens over all calls, and likewise for outputs against a
//!    same-seed uncached reference service — hence cost + savings is exact.

use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::cost::count_tokens;
use lingua_llm_sim::{CompletionRequest, LlmService, SimLlm, SimLlmConfig};
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;
const ROUNDS: usize = 60;
/// Far below the distinct-prompt count so evictions really happen.
const CAPACITY: usize = 24;

fn prompt(i: usize) -> String {
    format!("Summarize. Text: stress corpus document number {i} with a few extra words")
}

#[test]
fn counters_reconcile_exactly_under_contention() {
    let world = WorldSpec::generate(29);
    let svc = Arc::new(SimLlm::new(
        &world,
        SimLlmConfig {
            seed: 29,
            cache_enabled: true,
            cache_capacity: CAPACITY,
            ..Default::default()
        },
    ));

    // Every thread walks the same 40-prompt pool at a different stride, so
    // threads overlap heavily (hits + coalescing) while still thrashing the
    // 24-entry cache (misses + evictions).
    let distinct = 40usize;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut tally = vec![0u64; distinct];
                for r in 0..ROUNDS {
                    let i = (r * (t + 1) + t) % distinct;
                    let request = CompletionRequest::new(prompt(i));
                    let response = svc.complete(&request);
                    assert!(!response.is_empty());
                    tally[i] += 1;
                }
                tally
            })
        })
        .collect();
    let mut per_prompt = vec![0u64; distinct];
    for handle in handles {
        for (i, n) in handle.join().unwrap().into_iter().enumerate() {
            per_prompt[i] += n;
        }
    }
    let total: u64 = per_prompt.iter().sum();
    assert_eq!(total, (THREADS * ROUNDS) as u64);

    let usage = svc.usage();
    let stats = svc.cache_stats();

    // Laws 1-5: the books balance call-for-call.
    assert_eq!(total, usage.calls + usage.cached_calls, "every call billed or saved");
    assert_eq!(usage.cached_calls, stats.hits + stats.coalesced, "savings are hits + coalesces");
    assert_eq!(stats.misses, usage.calls + stats.coalesced, "misses led or coalesced");
    assert_eq!(stats.insertions + stats.updates, usage.calls, "every billed call inserted");
    assert_eq!(stats.insertions, stats.len as u64 + stats.evictions, "resident or evicted");
    assert!(svc.cache_len() <= CAPACITY, "capacity bound holds under contention");
    assert_eq!(svc.cache_len(), stats.len);

    // The workload really exercised all three interesting paths.
    assert!(usage.cached_calls > 0, "overlapping strides must produce savings");
    assert!(stats.evictions > 0, "a 24-slot cache over 40 prompts must evict");
    assert!(usage.calls >= distinct as u64, "each distinct prompt was computed at least once");

    // Law 6: token-exact (hence cent-exact) conservation against a same-seed
    // uncached reference. Billed-vs-saved split depends on thread
    // interleaving; the sum never does.
    let reference =
        SimLlm::new(&world, SimLlmConfig { seed: 29, cache_enabled: false, ..Default::default() });
    let mut expected_in = 0u64;
    let mut expected_out = 0u64;
    for (i, &n) in per_prompt.iter().enumerate() {
        let text = prompt(i);
        let response = reference.complete(&CompletionRequest::new(text.clone()));
        expected_in += n * count_tokens(&text) as u64;
        expected_out += n * count_tokens(&response) as u64;
    }
    assert_eq!(usage.tokens_in + usage.tokens_in_saved, expected_in, "input tokens conserve");
    assert_eq!(usage.tokens_out + usage.tokens_out_saved, expected_out, "output tokens conserve");

    // Billed + saved dollars equal the dollars of the would-be-uncached run,
    // to well below a cent (the tallies are integer-token-exact; only the
    // final float multiplication differs in association order).
    let pricing = svc.pricing();
    let would_be = lingua_llm_sim::Usage {
        tokens_in: expected_in,
        tokens_out: expected_out,
        ..Default::default()
    };
    let actual_usd = usage.cost_usd(pricing) + usage.saved_usd(pricing);
    assert!(
        (actual_usd - would_be.cost_usd(pricing)).abs() < 5e-3,
        "bill + savings ({actual_usd}) must match the uncached cost to the cent"
    );
}

/// Same laws under a coalescing storm: every thread asks for the *same*
/// prompt at the same instant, repeatedly. Exactly one flight per generation
/// computes; everyone else hits or coalesces.
#[test]
fn coalescing_storm_books_every_call() {
    let world = WorldSpec::generate(31);
    let svc = Arc::new(SimLlm::new(
        &world,
        SimLlmConfig { seed: 31, cache_enabled: true, cache_capacity: 8, ..Default::default() },
    ));
    let storms = 12usize;
    for storm in 0..storms {
        let barrier = Arc::new(Barrier::new(THREADS));
        let request = prompt(1000 + storm);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let barrier = Arc::clone(&barrier);
                let request = request.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    svc.complete(&CompletionRequest::new(request))
                })
            })
            .collect();
        let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            responses.windows(2).all(|w| w[0] == w[1]),
            "coalesced and hit responses are byte-identical to the leader's"
        );
    }

    let usage = svc.usage();
    let stats = svc.cache_stats();
    let total = (storms * THREADS) as u64;
    assert_eq!(total, usage.calls + usage.cached_calls);
    assert_eq!(usage.cached_calls, stats.hits + stats.coalesced);
    assert_eq!(stats.misses, usage.calls + stats.coalesced);
    assert_eq!(stats.insertions + stats.updates, usage.calls);
    // One storm = one distinct prompt: at least one billed call each, and
    // with 8 threads racing, the saved calls dominate the bill.
    assert!(usage.calls >= storms as u64);
    assert!(usage.cached_calls >= usage.calls, "storms must mostly coalesce or hit");
}
