//! Property tests for the simulated LLM: total robustness to arbitrary
//! prompts, determinism, and monotone metering.

use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{CompletionRequest, LlmService, SimLlm};
use proptest::prelude::*;
use std::sync::OnceLock;

fn service() -> &'static SimLlm {
    static SERVICE: OnceLock<(WorldSpec, SimLlm)> = OnceLock::new();
    let (_, svc) = SERVICE.get_or_init(|| {
        let world = WorldSpec::generate(999);
        let svc = SimLlm::with_seed(&world, 999);
        (world, svc)
    });
    svc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The service never panics, whatever the prompt — including prompts with
    /// section markers, partial records, and non-ASCII content.
    #[test]
    fn completion_is_total(prompt in "[ -~àéüşğ\n]{0,200}") {
        let svc = service();
        let _ = svc.complete(&CompletionRequest::new(&prompt));
    }

    /// Same prompt → same answer (temperature-0 semantics).
    #[test]
    fn completion_is_deterministic(prompt in "[ -~\n]{0,120}") {
        let svc = service();
        let a = svc.complete(&CompletionRequest::new(&prompt));
        let b = svc.complete(&CompletionRequest::new(&prompt));
        prop_assert_eq!(a, b);
    }

    /// Metering is monotone: every completion strictly grows the counters.
    #[test]
    fn metering_is_monotone(prompt in "[a-z ]{1,80}") {
        let svc = service();
        let before = svc.usage();
        let _ = svc.complete(&CompletionRequest::new(&prompt));
        let after = svc.usage();
        prop_assert_eq!(after.calls, before.calls + 1);
        prop_assert!(after.tokens_in > before.tokens_in);
    }

    /// Structured prompts with adversarial record content are handled:
    /// fields containing the protocol's own separators must not panic and
    /// must still produce a yes/no-shaped answer.
    #[test]
    fn entity_match_prompts_with_adversarial_fields(
        a in "[ -~]{0,40}",
        b in "[ -~]{0,40}",
    ) {
        let svc = service();
        let prompt = format!(
            "Please determine if the following two records refer to the same entity.\n\
             Record A: beer_name: {a}; brewery: {b}\n\
             Record B: beer_name: {b}; brewery: {a}\n\
             Answer yes or no."
        );
        let response = svc.complete(&CompletionRequest::new(&prompt));
        prop_assert!(!response.is_empty());
    }

    /// Embeddings: deterministic, fixed-dimension, finite.
    #[test]
    fn embeddings_are_well_formed(text in "[ -~]{0,120}") {
        let svc = service();
        let e = svc.embed(&text);
        prop_assert_eq!(e.len(), 512);
        prop_assert!(e.iter().all(|x| x.is_finite()));
        prop_assert_eq!(svc.embed(&text), e);
    }
}
