//! # lingua-llm-sim
//!
//! A **deterministic simulated LLM service** — the substitution this
//! reproduction makes for the OpenAI-hosted models (GPT-3 / ChatGPT / Codex)
//! that the Lingua Manga paper builds on. See `DESIGN.md` §1 for the full
//! substitution argument.
//!
//! The simulator is *not* a mock that returns canned answers. It is a
//! parameterized generative model of LLM behaviour:
//!
//! * [`prompt`] really parses prompts and routes them to task behaviours
//!   (entity matching, imputation, name tagging, language detection, schema
//!   matching, summarisation, fix suggestions).
//! * [`knowledge`] holds a *calibrated subset* of the ground-truth world
//!   ([`lingua_dataset::world::WorldSpec`]) — the LLM "knows" some entities,
//!   some product lines, some person names, exactly like a real pre-trained
//!   model partially overlaps enterprise data.
//! * [`noise`] models output instability: verbose phrasings, hedging, and
//!   occasional hallucinations, all seeded.
//! * [`codegen`] emits **real MangaScript programs** (ASTs, pretty-printed to
//!   source) with a seeded bug-injection model; the `lingua-core` Validator
//!   executes them, observes genuine failures, and drives the paper's
//!   suggest-and-regenerate repair loop.
//! * [`cost`] meters tokens and dollars for every call, which is what the
//!   paper's efficiency claims (§3.2 Simulator, §4.3's 1/6-calls economy) are
//!   measured in.
//!
//! Determinism: every response is a pure function of `(service seed, prompt)`.
//! The calibration constants live in [`calibration`] and are documented
//! against the paper's published numbers.

pub mod behaviors;
pub mod calibration;
pub mod cancel;
pub mod codegen;
pub mod cost;
pub mod embeddings;
pub mod hotpath;
pub mod knowledge;
pub mod noise;
pub mod prompt;
pub mod service;

pub use calibration::Calibration;
pub use cancel::{CancelReason, CancelScope, CancelToken, CANCELLED_NOTICE};
pub use codegen::{BugKind, CodeGenSpec, GeneratedCode, TemplateKind};
pub use cost::{AtomicUsage, TokenPricing, Usage};
pub use hotpath::{fingerprint, CacheStats, Flight, Fnv1a, ShardedLru, Singleflight};
pub use knowledge::KnowledgeBase;
pub use prompt::TaskIntent;
pub use service::{BatchOutcome, CompletionRequest, LlmService, SimLlm, SimLlmConfig};
