//! Token counting and dollar-cost accounting.
//!
//! The paper's core efficiency argument is that LLM calls are expensive in
//! money, latency, and privacy; the optimizer exists to minimize them. Every
//! call through [`crate::SimLlm`] is metered here so benchmark binaries can
//! report call counts and simulated spend.

use serde::{Deserialize, Serialize};

/// Approximate tokenizer: whitespace-split words plus a surcharge for long
/// words (BPE splits them) and punctuation. Close enough to real tokenizers
/// to make relative comparisons meaningful.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    for word in text.split_whitespace() {
        let chars = word.chars().count();
        // ~1 token per 4 characters, minimum 1 per word.
        tokens += 1 + chars / 5;
    }
    tokens.max(if text.is_empty() { 0 } else { 1 })
}

/// Per-1k-token pricing, defaulting to GPT-3.5-era rates (USD).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenPricing {
    pub input_per_1k: f64,
    pub output_per_1k: f64,
}

impl Default for TokenPricing {
    fn default() -> Self {
        TokenPricing { input_per_1k: 0.0015, output_per_1k: 0.002 }
    }
}

/// Cumulative usage across a service's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Usage {
    pub calls: u64,
    pub tokens_in: u64,
    pub tokens_out: u64,
    /// Calls answered from the response cache (not counted in `calls`).
    pub cache_hits: u64,
}

impl Usage {
    pub fn record(&mut self, tokens_in: usize, tokens_out: usize) {
        self.calls += 1;
        self.tokens_in += tokens_in as u64;
        self.tokens_out += tokens_out as u64;
    }

    pub fn cost_usd(&self, pricing: &TokenPricing) -> f64 {
        self.tokens_in as f64 / 1000.0 * pricing.input_per_1k
            + self.tokens_out as f64 / 1000.0 * pricing.output_per_1k
    }

    /// Usage delta since an earlier snapshot.
    pub fn since(&self, earlier: &Usage) -> Usage {
        Usage {
            calls: self.calls - earlier.calls,
            tokens_in: self.tokens_in - earlier.tokens_in,
            tokens_out: self.tokens_out - earlier.tokens_out,
            cache_hits: self.cache_hits - earlier.cache_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counts_scale_with_text() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("hi"), 1);
        let short = count_tokens("determine if these entities match");
        let long = count_tokens(
            "determine if these entities match: record a has a very long description field",
        );
        assert!(long > short);
        // Long words cost more than one token.
        assert!(count_tokens("internationalization") >= 4);
    }

    #[test]
    fn usage_accumulates_and_prices() {
        let mut u = Usage::default();
        u.record(1000, 500);
        u.record(500, 250);
        assert_eq!(u.calls, 2);
        assert_eq!(u.tokens_in, 1500);
        assert_eq!(u.tokens_out, 750);
        let cost = u.cost_usd(&TokenPricing::default());
        assert!((cost - (1.5 * 0.0015 + 0.75 * 0.002)).abs() < 1e-12);
    }

    #[test]
    fn since_computes_deltas() {
        let mut u = Usage::default();
        u.record(100, 10);
        let snapshot = u;
        u.record(200, 20);
        let delta = u.since(&snapshot);
        assert_eq!(delta.calls, 1);
        assert_eq!(delta.tokens_in, 200);
        assert_eq!(delta.tokens_out, 20);
    }
}
