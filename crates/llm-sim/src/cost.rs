//! Token counting and dollar-cost accounting.
//!
//! The paper's core efficiency argument is that LLM calls are expensive in
//! money, latency, and privacy; the optimizer exists to minimize them. Every
//! call through [`crate::SimLlm`] is metered here so benchmark binaries can
//! report call counts and simulated spend.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Approximate tokenizer: whitespace-split words plus a surcharge for long
/// words (BPE splits them) and punctuation. Close enough to real tokenizers
/// to make relative comparisons meaningful.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    for word in text.split_whitespace() {
        let chars = word.chars().count();
        // ~1 token per 4 characters, minimum 1 per word.
        tokens += 1 + chars / 5;
    }
    tokens.max(if text.is_empty() { 0 } else { 1 })
}

/// Per-1k-token pricing, defaulting to GPT-3.5-era rates (USD).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenPricing {
    pub input_per_1k: f64,
    pub output_per_1k: f64,
}

impl Default for TokenPricing {
    fn default() -> Self {
        TokenPricing { input_per_1k: 0.0015, output_per_1k: 0.002 }
    }
}

/// Cumulative usage across a service's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Usage {
    pub calls: u64,
    pub tokens_in: u64,
    pub tokens_out: u64,
    /// Calls answered from a response cache (not counted in `calls`).
    pub cached_calls: u64,
    /// Input tokens the cached calls would have billed. Together with
    /// `tokens_out_saved` this makes cache savings exact instead of inferred
    /// from hit counts.
    pub tokens_in_saved: u64,
    /// Output tokens the cached calls would have billed.
    pub tokens_out_saved: u64,
    /// Calls aborted by a transport fault before a response was produced
    /// (not counted in `calls`; any billed prompt tokens land in
    /// `tokens_in`).
    pub failed_calls: u64,
}

impl Usage {
    pub fn record(&mut self, tokens_in: usize, tokens_out: usize) {
        self.calls += 1;
        self.tokens_in += tokens_in as u64;
        self.tokens_out += tokens_out as u64;
    }

    /// Record a call answered from a cache: nothing billed, exact savings
    /// booked.
    pub fn record_cached(&mut self, tokens_in: usize, tokens_out: usize) {
        self.cached_calls += 1;
        self.tokens_in_saved += tokens_in as u64;
        self.tokens_out_saved += tokens_out as u64;
    }

    /// Record a call aborted by a transport fault: the prompt was billed but
    /// no response was produced.
    pub fn record_failed(&mut self, tokens_in: usize) {
        self.failed_calls += 1;
        self.tokens_in += tokens_in as u64;
    }

    pub fn cost_usd(&self, pricing: &TokenPricing) -> f64 {
        self.tokens_in as f64 / 1000.0 * pricing.input_per_1k
            + self.tokens_out as f64 / 1000.0 * pricing.output_per_1k
    }

    /// Dollars the cached calls avoided spending.
    pub fn saved_usd(&self, pricing: &TokenPricing) -> f64 {
        self.tokens_in_saved as f64 / 1000.0 * pricing.input_per_1k
            + self.tokens_out_saved as f64 / 1000.0 * pricing.output_per_1k
    }

    /// Add another usage tally into this one (e.g. summing per-backend
    /// counters at a gateway).
    pub fn merge(&mut self, other: &Usage) {
        self.calls += other.calls;
        self.tokens_in += other.tokens_in;
        self.tokens_out += other.tokens_out;
        self.cached_calls += other.cached_calls;
        self.tokens_in_saved += other.tokens_in_saved;
        self.tokens_out_saved += other.tokens_out_saved;
        self.failed_calls += other.failed_calls;
    }

    /// Usage delta since an earlier snapshot.
    pub fn since(&self, earlier: &Usage) -> Usage {
        Usage {
            calls: self.calls - earlier.calls,
            tokens_in: self.tokens_in - earlier.tokens_in,
            tokens_out: self.tokens_out - earlier.tokens_out,
            cached_calls: self.cached_calls - earlier.cached_calls,
            tokens_in_saved: self.tokens_in_saved - earlier.tokens_in_saved,
            tokens_out_saved: self.tokens_out_saved - earlier.tokens_out_saved,
            failed_calls: self.failed_calls - earlier.failed_calls,
        }
    }
}

/// Lock-free usage accounting for the concurrent hot path.
///
/// Each counter is an independent atomic, so recording a call never takes a
/// lock and never contends with the response cache. [`AtomicUsage::snapshot`]
/// reads the counters individually; under quiescence (after workers join, or
/// between experiment arms) the snapshot is exact to the token — and
/// therefore to the cent — which is what the conservation suites assert. A
/// snapshot raced by in-flight writers may split one call across two reads,
/// but it never invents or loses a token once the writers drain.
#[derive(Debug, Default)]
pub struct AtomicUsage {
    calls: AtomicU64,
    tokens_in: AtomicU64,
    tokens_out: AtomicU64,
    cached_calls: AtomicU64,
    tokens_in_saved: AtomicU64,
    tokens_out_saved: AtomicU64,
    failed_calls: AtomicU64,
}

impl AtomicUsage {
    pub fn new() -> AtomicUsage {
        AtomicUsage::default()
    }

    /// Record a billed call (see [`Usage::record`]).
    pub fn record(&self, tokens_in: usize, tokens_out: usize) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.tokens_in.fetch_add(tokens_in as u64, Ordering::Relaxed);
        self.tokens_out.fetch_add(tokens_out as u64, Ordering::Relaxed);
    }

    /// Record a call answered from a cache (see [`Usage::record_cached`]).
    pub fn record_cached(&self, tokens_in: usize, tokens_out: usize) {
        self.cached_calls.fetch_add(1, Ordering::Relaxed);
        self.tokens_in_saved.fetch_add(tokens_in as u64, Ordering::Relaxed);
        self.tokens_out_saved.fetch_add(tokens_out as u64, Ordering::Relaxed);
    }

    /// Record a transport-faulted call (see [`Usage::record_failed`]).
    pub fn record_failed(&self, tokens_in: usize) {
        self.failed_calls.fetch_add(1, Ordering::Relaxed);
        self.tokens_in.fetch_add(tokens_in as u64, Ordering::Relaxed);
    }

    /// Point-in-time [`Usage`] view. Never blocks writers.
    pub fn snapshot(&self) -> Usage {
        Usage {
            calls: self.calls.load(Ordering::Relaxed),
            tokens_in: self.tokens_in.load(Ordering::Relaxed),
            tokens_out: self.tokens_out.load(Ordering::Relaxed),
            cached_calls: self.cached_calls.load(Ordering::Relaxed),
            tokens_in_saved: self.tokens_in_saved.load(Ordering::Relaxed),
            tokens_out_saved: self.tokens_out_saved.load(Ordering::Relaxed),
            failed_calls: self.failed_calls.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between experiment arms).
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.tokens_in.store(0, Ordering::Relaxed);
        self.tokens_out.store(0, Ordering::Relaxed);
        self.cached_calls.store(0, Ordering::Relaxed);
        self.tokens_in_saved.store(0, Ordering::Relaxed);
        self.tokens_out_saved.store(0, Ordering::Relaxed);
        self.failed_calls.store(0, Ordering::Relaxed);
    }

    /// Merge a finished [`Usage`] tally into the atomic counters.
    pub fn merge(&self, other: &Usage) {
        self.calls.fetch_add(other.calls, Ordering::Relaxed);
        self.tokens_in.fetch_add(other.tokens_in, Ordering::Relaxed);
        self.tokens_out.fetch_add(other.tokens_out, Ordering::Relaxed);
        self.cached_calls.fetch_add(other.cached_calls, Ordering::Relaxed);
        self.tokens_in_saved.fetch_add(other.tokens_in_saved, Ordering::Relaxed);
        self.tokens_out_saved.fetch_add(other.tokens_out_saved, Ordering::Relaxed);
        self.failed_calls.fetch_add(other.failed_calls, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counts_scale_with_text() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("hi"), 1);
        let short = count_tokens("determine if these entities match");
        let long = count_tokens(
            "determine if these entities match: record a has a very long description field",
        );
        assert!(long > short);
        // Long words cost more than one token.
        assert!(count_tokens("internationalization") >= 4);
    }

    #[test]
    fn usage_accumulates_and_prices() {
        let mut u = Usage::default();
        u.record(1000, 500);
        u.record(500, 250);
        assert_eq!(u.calls, 2);
        assert_eq!(u.tokens_in, 1500);
        assert_eq!(u.tokens_out, 750);
        let cost = u.cost_usd(&TokenPricing::default());
        assert!((cost - (1.5 * 0.0015 + 0.75 * 0.002)).abs() < 1e-12);
    }

    #[test]
    fn since_computes_deltas() {
        let mut u = Usage::default();
        u.record(100, 10);
        let snapshot = u;
        u.record(200, 20);
        u.record_cached(50, 5);
        u.record_failed(30);
        let delta = u.since(&snapshot);
        assert_eq!(delta.calls, 1);
        assert_eq!(delta.tokens_in, 230);
        assert_eq!(delta.tokens_out, 20);
        assert_eq!(delta.cached_calls, 1);
        assert_eq!(delta.tokens_in_saved, 50);
        assert_eq!(delta.tokens_out_saved, 5);
        assert_eq!(delta.failed_calls, 1);
    }

    #[test]
    fn cached_calls_book_exact_savings() {
        let mut u = Usage::default();
        u.record_cached(1000, 500);
        u.record_cached(1000, 500);
        assert_eq!(u.cached_calls, 2);
        assert_eq!(u.calls, 0, "cached calls bill nothing");
        assert_eq!(u.cost_usd(&TokenPricing::default()), 0.0);
        let saved = u.saved_usd(&TokenPricing::default());
        assert!((saved - (2.0 * 0.0015 + 1.0 * 0.002)).abs() < 1e-12);
    }

    #[test]
    fn failed_calls_bill_prompt_tokens() {
        let mut u = Usage::default();
        u.record_failed(1000);
        assert_eq!(u.failed_calls, 1);
        assert_eq!(u.calls, 0);
        assert_eq!(u.tokens_in, 1000);
        let cost = u.cost_usd(&TokenPricing::default());
        assert!((cost - 0.0015).abs() < 1e-12, "aborted calls still cost input tokens");
    }

    #[test]
    fn atomic_usage_mirrors_usage_semantics() {
        let atomic = AtomicUsage::new();
        atomic.record(1000, 500);
        atomic.record_cached(50, 5);
        atomic.record_failed(30);
        let mut reference = Usage::default();
        reference.record(1000, 500);
        reference.record_cached(50, 5);
        reference.record_failed(30);
        assert_eq!(atomic.snapshot(), reference);
        atomic.merge(&reference);
        assert_eq!(atomic.snapshot().calls, 2);
        assert_eq!(atomic.snapshot().tokens_in, 2060);
        atomic.reset();
        assert_eq!(atomic.snapshot(), Usage::default());
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = Usage::default();
        a.record(10, 5);
        let mut b = Usage::default();
        b.record(20, 10);
        b.record_cached(7, 3);
        b.record_failed(4);
        a.merge(&b);
        assert_eq!(a.calls, 2);
        assert_eq!(a.tokens_in, 34);
        assert_eq!(a.tokens_out, 15);
        assert_eq!(a.cached_calls, 1);
        assert_eq!(a.tokens_in_saved, 7);
        assert_eq!(a.tokens_out_saved, 3);
        assert_eq!(a.failed_calls, 1);
    }
}
