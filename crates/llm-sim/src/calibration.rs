//! Calibration constants for the simulated LLM.
//!
//! Each constant is documented against the paper number it was tuned to
//! reproduce. Everything else in the system — baselines, optimizer behaviour,
//! dataset difficulty — interacts with these constants, so the reported
//! experiment results are *emergent* from the simulation rather than
//! hard-coded.

use serde::{Deserialize, Serialize};

/// Behavioural parameters of the simulated LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    // -- knowledge coverage ---------------------------------------------------
    /// Probability the LLM "knows" a given beer entity (brewery + name).
    /// Beer databases are niche → moderate coverage. Drives the gap between
    /// Lingua Manga (89.66 F1) and the supervised ceiling (94.37) on
    /// BeerAdvo-RateBeer in Table 1.
    pub beer_entity_coverage: f64,
    /// Restaurant knowledge (Fodors/Zagats-style entities are famous →
    /// high coverage; Table 1 row 2 has every method ≥ 87).
    pub restaurant_entity_coverage: f64,
    /// Song knowledge (long-tail catalogue → moderate).
    pub song_entity_coverage: f64,
    /// Error rate even on entities the LLM knows (mis-recall).
    pub known_entity_error: f64,

    /// Probability a product *line* → manufacturer fact is known
    /// ("PlayStation → Sony"). Tuned so the pure-LLM imputation accuracy
    /// lands near the paper's 93.92% given the 5/6-easy dataset mix.
    pub product_line_coverage: f64,
    /// Accuracy of reading a manufacturer that is literally present in the
    /// product text (reading comprehension, near-perfect).
    pub text_mention_accuracy: f64,
    /// Expected chance of guessing the right manufacturer with no knowledge
    /// at all. Documents the emergent rate (the blind guesser picks
    /// deterministically from the candidate vocabulary, ≈ 1/|vocabulary|);
    /// not consumed by the behaviours directly.
    pub blind_guess_accuracy: f64,

    /// Per-language person-name lexicon coverage `(english, other-latin,
    /// romanized-cjk)`. English corpora dominate pre-training.
    pub name_coverage_english: f64,
    pub name_coverage_latin: f64,
    pub name_coverage_cjk: f64,

    // -- output instability -----------------------------------------------------
    /// Probability of a verbose / decorated answer ("They appear to be the
    /// same entity.") when the prompt does NOT pin the output format. This is
    /// what sinks the FMs baseline's naive parser (Table 1, FMs column; §4.3
    /// FMs 84.6%).
    pub verbose_answer_rate_unpinned: f64,
    /// Same, when the prompt explicitly says "Answer yes or no." — prompt
    /// engineering reduces but does not eliminate format drift.
    pub verbose_answer_rate_pinned: f64,
    /// Rate of outright hallucinated answers (confidently wrong).
    pub hallucination_rate: f64,

    // -- entity-match heuristic (when entities are unknown) ---------------------
    /// Decision threshold on the record-similarity score for a *naive* prompt
    /// (no examples). Deliberately low: LLMs say "yes" too eagerly for
    /// superficially similar records.
    pub match_threshold_naive: f64,
    /// Threshold once the prompt carries a few labeled examples
    /// (the in-context calibration Lingua Manga's templates provide).
    pub match_threshold_calibrated: f64,

    // -- code generation -----------------------------------------------------
    /// Probability the first generation of an LLMGC module carries a bug.
    pub codegen_bug_rate: f64,
    /// Probability a repair attempt (with a correct suggestion) removes the
    /// bug rather than introducing a different one.
    pub repair_success_rate: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            beer_entity_coverage: 0.86,
            restaurant_entity_coverage: 0.88,
            song_entity_coverage: 0.60,
            known_entity_error: 0.006,

            product_line_coverage: 0.68,
            text_mention_accuracy: 0.99,
            blind_guess_accuracy: 0.03,

            name_coverage_english: 0.97,
            name_coverage_latin: 0.93,
            name_coverage_cjk: 0.88,

            verbose_answer_rate_unpinned: 0.22,
            verbose_answer_rate_pinned: 0.015,
            hallucination_rate: 0.01,

            match_threshold_naive: 0.56,
            match_threshold_calibrated: 0.66,

            codegen_bug_rate: 0.45,
            repair_success_rate: 0.85,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_probabilities() {
        let c = Calibration::default();
        for p in [
            c.beer_entity_coverage,
            c.restaurant_entity_coverage,
            c.song_entity_coverage,
            c.known_entity_error,
            c.product_line_coverage,
            c.text_mention_accuracy,
            c.blind_guess_accuracy,
            c.name_coverage_english,
            c.name_coverage_latin,
            c.name_coverage_cjk,
            c.verbose_answer_rate_unpinned,
            c.verbose_answer_rate_pinned,
            c.hallucination_rate,
            c.match_threshold_naive,
            c.match_threshold_calibrated,
            c.codegen_bug_rate,
            c.repair_success_rate,
        ] {
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn calibrated_threshold_is_stricter_than_naive() {
        let c = Calibration::default();
        assert!(c.match_threshold_calibrated > c.match_threshold_naive);
        assert!(c.verbose_answer_rate_pinned < c.verbose_answer_rate_unpinned);
        assert!(c.name_coverage_english > c.name_coverage_cjk);
    }
}
