//! The concurrent LLM hot path: prompt fingerprints, a lock-striped sharded
//! LRU response cache, and singleflight request coalescing.
//!
//! Every completion in the system — whether it enters through `lingua-serve`,
//! `lingua-gateway`, or a bare [`crate::SimLlm`] — funnels through this
//! machinery. The design goals, in order:
//!
//! 1. **No global serialization.** The old hot path took one `Mutex<State>`
//!    per call for the cache lookup, the FIFO eviction bookkeeping, *and* the
//!    usage metering, so eight workers degenerated to a convoy. Here the
//!    cache is striped across shards (each with its own lock) and metering
//!    lives in atomics ([`crate::cost::AtomicUsage`]), so two calls only
//!    contend when their prompts land on the same shard.
//! 2. **Hash once.** A prompt's 64-bit FNV-1a [`fingerprint`] is computed at
//!    most once per call chain ([`crate::CompletionRequest::fingerprint`]
//!    memoizes it), then reused by the gateway's stale cache, the simulator's
//!    response cache, and the fault injector — the layers stop re-hashing
//!    the same bytes.
//! 3. **Compute once.** Concurrent identical prompts coalesce through
//!    [`Singleflight`]: one leader computes, followers wait and share the
//!    leader's `Arc`'d response, booked as cache savings.
//! 4. **Determinism survives.** Sharding changes *where* a response is
//!    cached and *who* computes it, never *what* is computed: responses stay
//!    a pure function of `(seed, prompt)`, so the calibration and
//!    golden-trace suites see byte-identical outputs.

use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The canonical 64-bit prompt fingerprint: FNV-1a over the raw bytes.
///
/// This is bit-identical to the key `lingua-gateway` has always used for
/// backoff jitter and fault-plan decisions (`prompt_key`), so adopting it as
/// the shared fingerprint changed no replayed chaos schedule.
pub fn fingerprint(text: &str) -> u64 {
    let mut hasher = Fnv1a::new();
    hasher.write(text.as_bytes());
    hasher.finish()
}

/// Incremental FNV-1a 64-bit hasher, shared by prompt fingerprints here and
/// structured input fingerprints in `lingua-serve`.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Hash a length-prefixed string (prefixing prevents concatenation
    /// ambiguity: `("ab","c")` must differ from `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Point-in-time counters of a [`ShardedLru`] (plus the coalescing counter
/// its owner folds in). Snapshots read atomics only — they never take a
/// shard lock, so observing a busy cache cannot stall its writers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Inserts of a key not currently cached.
    pub insertions: u64,
    /// Inserts that overwrote a live entry (a racing recompute).
    pub updates: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Calls that coalesced onto an in-flight identical computation
    /// (filled by the cache's owner from its [`Singleflight`]).
    pub coalesced: u64,
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an O(1) LRU over a slab-backed intrusive list. `head` is the
/// most recently used entry, `tail` the eviction candidate.
struct LruShard<V> {
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<V> LruShard<V> {
    fn new(capacity: usize) -> LruShard<V> {
        LruShard {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Insert or refresh `key`.
    fn insert(&mut self, key: u64, value: V) -> InsertOutcome {
        if self.capacity == 0 {
            return InsertOutcome::Noop;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.touch(idx);
            return InsertOutcome::Updated;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full shard has a tail");
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot { key, value, prev: NIL, next: NIL };
                idx
            }
            None => {
                self.slots.push(Slot { key, value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        InsertOutcome::Inserted { evicted }
    }
}

/// What an [`LruShard::insert`] actually did, so the owning [`ShardedLru`]
/// only counts events that happened (a zero-capacity shard stores nothing
/// and must report nothing, or `insertions == len + evictions` breaks).
enum InsertOutcome {
    /// Capacity is zero: nothing was stored.
    Noop,
    /// The key was live; its value was refreshed in place.
    Updated,
    /// A new entry was stored, displacing the shard's LRU entry if full.
    Inserted { evicted: bool },
}

struct Shard<V> {
    lru: Mutex<LruShard<V>>,
    /// Mirrors `lru.map.len()` so `len()` snapshots never take the lock.
    len: AtomicUsize,
}

/// A lock-striped sharded LRU cache keyed by precomputed 64-bit
/// fingerprints.
///
/// The total `capacity` is partitioned across the shards exactly (the first
/// `capacity % shards` shards hold one extra slot), so the cache as a whole
/// **never** holds more than `capacity` entries — the bound sharding must
/// not relax. The shard count is clamped to the capacity so no shard
/// degenerates to zero slots while others starve.
pub struct ShardedLru<V> {
    shards: Box<[Shard<V>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    updates: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count: enough stripes that 8 workers rarely collide, cheap
/// enough that a tiny cache is not fragmented.
pub const DEFAULT_SHARDS: usize = 16;

impl<V: Clone> ShardedLru<V> {
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1).min(capacity.max(1));
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards: Vec<Shard<V>> = (0..shards)
            .map(|i| Shard {
                lru: Mutex::new(LruShard::new(base + usize::from(i < extra))),
                len: AtomicUsize::new(0),
            })
            .collect();
        ShardedLru {
            shards: shards.into_boxed_slice(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Which shard a fingerprint lands on. The fingerprint is
    /// Fibonacci-mixed first so shard choice uses different bits than the
    /// in-shard `HashMap` does.
    fn shard(&self, key: u64) -> &Shard<V> {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let shard = self.shard(key);
        let mut lru = shard.lru.lock();
        match lru.map.get(&key).copied() {
            Some(idx) => {
                lru.touch(idx);
                let value = lru.slots[idx].value.clone();
                drop(lru);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(lru);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's LRU entry at
    /// capacity.
    pub fn insert(&self, key: u64, value: V) {
        let shard = self.shard(key);
        let mut lru = shard.lru.lock();
        let outcome = lru.insert(key, value);
        // The len mirror must be stored while the shard lock is still held:
        // publishing it after unlock would let two racing inserts land their
        // stores out of lock order, leaving a stale (smaller) len visible
        // forever and breaking `insertions == len + evictions`.
        shard.len.store(lru.map.len(), Ordering::Relaxed);
        drop(lru);
        match outcome {
            InsertOutcome::Noop => {}
            InsertOutcome::Updated => {
                self.updates.fetch_add(1, Ordering::Relaxed);
            }
            InsertOutcome::Inserted { evicted } => {
                self.insertions.fetch_add(1, Ordering::Relaxed);
                if evicted {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Entries currently cached. Reads per-shard atomics only — never blocks
    /// a writer.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len.load(Ordering::Relaxed)).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lock-free counter snapshot (`coalesced` is left to the owner).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            coalesced: 0,
        }
    }
}

/// Outcome of a [`Singleflight::join`].
pub enum Flight<V> {
    /// This caller computed the value (and was billed for it).
    Led(V),
    /// This caller attached to a concurrent identical computation and shares
    /// its result — a cache saving, not a billed call.
    Coalesced(V),
}

enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader published; followers clone this.
    Published(V),
    /// The leader unwound before publishing; followers retry as leaders.
    Aborted,
}

struct FlightCell<V> {
    result: Mutex<FlightState<V>>,
    ready: Condvar,
}

/// Request coalescing: concurrent calls for the same key compute once.
///
/// The first caller for a key becomes the *leader* and runs `compute`;
/// callers arriving while the leader is in flight become *followers* and
/// block until the leader publishes. Followers of a deterministic service
/// receive exactly the bytes they would have computed, so coalescing is
/// invisible except in the bill. A leader publishes before it unregisters,
/// so a follower can never be stranded by a completed flight.
///
/// Panic safety: a leader whose `compute` unwinds (a panicking module
/// somewhere beneath the LLM call) marks the flight `Aborted` and wakes
/// every follower on its way out, via a drop guard that runs during
/// unwinding. Followers of an aborted flight loop back and re-contend —
/// one becomes the new leader and recomputes. The panic itself propagates
/// to the leader's caller (serve's `catch_unwind` isolation); no thread is
/// ever left blocked on a dead flight.
pub struct Singleflight<V> {
    inflight: Mutex<HashMap<u64, Arc<FlightCell<V>>>>,
    coalesced: AtomicU64,
}

/// Unregisters a leader's flight and wakes followers if the leader unwinds
/// before publishing. Disarmed on the successful path.
struct AbortGuard<'a, V> {
    flights: &'a Singleflight<V>,
    key: u64,
    armed: bool,
}

impl<V> Drop for AbortGuard<'_, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let cell = self.flights.inflight.lock().remove(&self.key);
        if let Some(cell) = cell {
            *cell.result.lock() = FlightState::Aborted;
            cell.ready.notify_all();
        }
    }
}

impl<V> Default for Singleflight<V> {
    fn default() -> Self {
        Singleflight { inflight: Mutex::new(HashMap::new()), coalesced: AtomicU64::new(0) }
    }
}

impl<V: Clone> Singleflight<V> {
    pub fn new() -> Singleflight<V> {
        Singleflight::default()
    }

    /// Calls coalesced onto another caller's flight so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    pub fn join(&self, key: u64, compute: impl FnOnce() -> V) -> Flight<V> {
        let mut compute = Some(compute);
        loop {
            let existing = {
                let mut inflight = self.inflight.lock();
                match inflight.entry(key) {
                    std::collections::hash_map::Entry::Occupied(cell) => {
                        Some(Arc::clone(cell.get()))
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(Arc::new(FlightCell {
                            result: Mutex::new(FlightState::Pending),
                            ready: Condvar::new(),
                        }));
                        None
                    }
                }
            };
            if let Some(cell) = existing {
                let mut state = cell.result.lock();
                loop {
                    match &*state {
                        FlightState::Pending => cell.ready.wait(&mut state),
                        FlightState::Published(value) => {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            return Flight::Coalesced(value.clone());
                        }
                        FlightState::Aborted => break,
                    }
                }
                // The leader unwound before publishing: re-contend. Whoever
                // wins the next registration recomputes.
                continue;
            }
            // Leader. If `compute` unwinds, the guard aborts the flight so
            // followers retry instead of waiting forever.
            let mut guard = AbortGuard { flights: self, key, armed: true };
            let value = (compute.take().expect("leader path runs at most once"))();
            // Publish to waiting followers *before* unregistering, so a
            // follower holding the cell always finds a result; unregistering
            // only affects later arrivals, which become fresh leaders (and
            // likely cache-hit).
            {
                let cell = {
                    let inflight = self.inflight.lock();
                    Arc::clone(inflight.get(&key).expect("leader's flight is registered"))
                };
                *cell.result.lock() = FlightState::Published(value.clone());
                cell.ready.notify_all();
            }
            self.inflight.lock().remove(&key);
            guard.armed = false;
            return Flight::Led(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Barrier;

    #[test]
    fn fingerprint_is_fnv1a() {
        // Locked constants: gateway fault plans replay against these values.
        assert_eq!(fingerprint(""), FNV_OFFSET);
        assert_eq!(fingerprint("a"), (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME));
        assert_ne!(fingerprint("ab"), fingerprint("ba"));
    }

    #[test]
    fn lru_evicts_least_recently_used_not_oldest() {
        let cache: ShardedLru<u32> = ShardedLru::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(1), Some(10)); // refresh 1: now 2 is LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(2), None, "2 was least recently used");
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(3), Some(30));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn reinserting_a_live_key_updates_in_place() {
        let cache: ShardedLru<u32> = ShardedLru::new(2, 1);
        cache.insert(1, 10);
        cache.insert(1, 11);
        assert_eq!(cache.get(1), Some(11));
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn zero_capacity_stores_nothing_and_counts_nothing() {
        let cache: ShardedLru<u32> = ShardedLru::new(0, 8);
        cache.insert(1, 10);
        cache.insert(1, 11);
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.len(), 0);
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0, "a no-op insert must not be counted");
        assert_eq!(stats.updates, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.insertions, stats.len as u64 + stats.evictions, "conservation holds");
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let cache: ShardedLru<u32> = ShardedLru::new(3, 16);
        assert_eq!(cache.shard_count(), 3);
        for key in 0..100u64 {
            cache.insert(key, key as u32);
            assert!(cache.len() <= 3, "capacity bound holds at every step");
        }
    }

    #[test]
    fn capacity_partitions_exactly_across_shards() {
        // 10 slots over 4 shards: 3+3+2+2. Filling every shard to the brim
        // can never exceed the configured total.
        let cache: ShardedLru<u64> = ShardedLru::new(10, 4);
        for key in 0..10_000u64 {
            cache.insert(key, key);
        }
        assert!(cache.len() <= 10);
    }

    #[test]
    fn singleflight_coalesces_concurrent_identical_keys() {
        let flights: Arc<Singleflight<u64>> = Arc::new(Singleflight::new());
        let computes = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flights = Arc::clone(&flights);
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match flights.join(42, || {
                        // Widen the in-flight window so followers really race
                        // into it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        computes.fetch_add(1, Ordering::Relaxed);
                        7u64
                    }) {
                        Flight::Led(v) | Flight::Coalesced(v) => v,
                    }
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 7);
        }
        let led = computes.load(Ordering::Relaxed);
        assert!(led >= 1, "someone computed");
        assert_eq!(flights.coalesced() + led, 8, "every call either led or coalesced");
    }

    #[test]
    fn singleflight_panicked_leader_does_not_strand_followers() {
        let flights: Arc<Singleflight<u64>> = Arc::new(Singleflight::new());
        let attached = Arc::new(Barrier::new(2));
        let leader = {
            let flights = Arc::clone(&flights);
            let attached = Arc::clone(&attached);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flights.join(7, || {
                        attached.wait();
                        // Give the follower time to block on the flight.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("leader dies mid-flight");
                    })
                }));
                assert!(result.is_err(), "the panic propagates to the leader's caller");
            })
        };
        let follower = {
            let flights = Arc::clone(&flights);
            let attached = Arc::clone(&attached);
            std::thread::spawn(move || {
                attached.wait();
                // Either attaches to the doomed flight, observes the abort,
                // and retries as the new leader — or arrives after the abort
                // and leads directly. Both terminate with the recomputed
                // value; pre-fix, this wait never woke.
                match flights.join(7, || 42u64) {
                    Flight::Led(v) | Flight::Coalesced(v) => v,
                }
            })
        };
        leader.join().unwrap();
        assert_eq!(follower.join().unwrap(), 42);
        // The aborted flight left no residue: the next call leads cleanly.
        assert!(matches!(flights.join(7, || 9u64), Flight::Led(9)));
    }

    #[test]
    fn singleflight_sequential_calls_each_lead() {
        let flights: Singleflight<u64> = Singleflight::new();
        assert!(matches!(flights.join(1, || 5), Flight::Led(5)));
        assert!(matches!(flights.join(1, || 6), Flight::Led(6)));
        assert_eq!(flights.coalesced(), 0);
    }

    /// Reference model for single-shard LRU: keys in recency order, most
    /// recent first. Only referenced from inside `proptest!`, which offline
    /// stub builds expand to nothing — hence the `allow`.
    #[allow(dead_code)]
    fn model_get(model: &mut Vec<u64>, key: u64) -> bool {
        if let Some(pos) = model.iter().position(|&k| k == key) {
            let k = model.remove(pos);
            model.insert(0, k);
            true
        } else {
            false
        }
    }

    #[allow(dead_code)]
    fn model_insert(model: &mut Vec<u64>, key: u64, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if let Some(pos) = model.iter().position(|&k| k == key) {
            model.remove(pos);
        } else if model.len() >= capacity {
            model.pop();
        }
        model.insert(0, key);
    }

    proptest! {
        /// The sharded cache never exceeds its total capacity, whatever the
        /// shard count and key stream.
        #[test]
        fn sharded_len_never_exceeds_capacity(
            capacity in 0usize..48,
            shards in 1usize..24,
            keys in proptest::collection::vec(0u64..64, 0..400),
        ) {
            let cache: ShardedLru<u64> = ShardedLru::new(capacity, shards);
            for key in keys {
                cache.insert(key, key);
                prop_assert!(cache.len() <= capacity);
            }
            prop_assert_eq!(cache.len(), cache.stats().len);
        }

        /// With a single shard the cache is an exact LRU: every get and every
        /// eviction matches a reference recency-list model.
        #[test]
        fn single_shard_is_exact_lru(
            capacity in 1usize..16,
            ops in proptest::collection::vec((any::<bool>(), 0u64..32), 0..300),
        ) {
            let cache: ShardedLru<u64> = ShardedLru::new(capacity, 1);
            let mut model: Vec<u64> = Vec::new();
            for (is_insert, key) in ops {
                if is_insert {
                    cache.insert(key, key);
                    model_insert(&mut model, key, capacity);
                } else {
                    let hit = cache.get(key).is_some();
                    prop_assert_eq!(hit, model_get(&mut model, key));
                }
                prop_assert_eq!(cache.len(), model.len());
            }
        }
    }
}
