//! Language detection — the module the §4.2 multilingual fix plugs into the
//! name-extraction pipeline.

use crate::calibration::Calibration;
use crate::knowledge::KnowledgeBase;
use crate::prompt::ParsedPrompt;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Produce the response for a language-detection prompt: the ISO-ish code,
/// possibly wrapped in prose when the format is not pinned.
pub fn respond(
    kb: &KnowledgeBase,
    calibration: &Calibration,
    parsed: &ParsedPrompt,
    rng: &mut StdRng,
) -> String {
    let text = parsed.payload.trim();
    if text.is_empty() {
        return "Please provide text to identify.".to_string();
    }
    let (language, _margin) = kb.detect_language(text);
    let code = language.code();
    let verbose_rate = if parsed.format_pinned {
        calibration.verbose_answer_rate_pinned
    } else {
        calibration.verbose_answer_rate_unpinned
    };
    if rng.gen_bool(verbose_rate) {
        format!("The text appears to be written in {} ({code}).", language_name(code))
    } else {
        code.to_string()
    }
}

fn language_name(code: &str) -> &'static str {
    match code {
        "en" => "English",
        "fr" => "French",
        "de" => "German",
        "es" => "Spanish",
        "it" => "Italian",
        "tr" => "Turkish",
        "zh" => "Chinese",
        "ja" => "Japanese",
        _ => "an unknown language",
    }
}

/// Robust code extraction from a possibly-verbose answer.
pub fn parse_language_code(text: &str) -> Option<&'static str> {
    let lower = text.to_lowercase();
    for code in ["en", "fr", "de", "es", "it", "tr", "zh", "ja"] {
        if lower.trim() == code
            || lower.contains(&format!("({code})"))
            || lower.contains(language_name(code).to_lowercase().as_str())
        {
            return Some(match code {
                "en" => "en",
                "fr" => "fr",
                "de" => "de",
                "es" => "es",
                "it" => "it",
                "tr" => "tr",
                "zh" => "zh",
                _ => "ja",
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt;
    use lingua_dataset::generators::names::{generate, NamesConfig};
    use lingua_dataset::world::{Language, WorldSpec};
    use rand::SeedableRng;

    #[test]
    fn detects_each_language_robustly() {
        let world = WorldSpec::generate(5);
        let cal = Calibration::default();
        let kb = KnowledgeBase::from_world(&world, &cal, 5);
        for lang in Language::ALL {
            let config =
                NamesConfig { passages: 4, language_mix: vec![(lang, 1.0)], sentences: (2, 3) };
            let corpus = generate(&world, &config, 9);
            let mut correct = 0;
            for (i, passage) in corpus.iter().enumerate() {
                let text = format!("What language is this text?\nText: {}", passage.text);
                let parsed = prompt::parse(&text);
                let mut rng = StdRng::seed_from_u64(i as u64);
                let response = respond(&kb, &cal, &parsed, &mut rng);
                if parse_language_code(&response) == Some(lang.code()) {
                    correct += 1;
                }
            }
            assert!(correct >= 3, "{lang:?}: {correct}/4");
        }
    }

    #[test]
    fn verbose_answers_still_parse() {
        assert_eq!(
            parse_language_code("The text appears to be written in French (fr)."),
            Some("fr")
        );
        assert_eq!(parse_language_code("de"), Some("de"));
        assert_eq!(parse_language_code("no idea"), None);
    }

    #[test]
    fn empty_text_asks_for_input() {
        let world = WorldSpec::generate(5);
        let cal = Calibration::default();
        let kb = KnowledgeBase::from_world(&world, &cal, 5);
        let parsed = prompt::parse("What language is this text?");
        let mut rng = StdRng::seed_from_u64(0);
        assert!(respond(&kb, &cal, &parsed, &mut rng).contains("provide"));
    }
}
