//! Per-intent response behaviours.
//!
//! Each behaviour receives the knowledge base, the calibration, the parsed
//! prompt, and a per-call seeded RNG, and produces the response text a real
//! LLM would have produced — including surface-form instability.

pub mod entity_match;
pub mod impute;
pub mod langdetect;
pub mod schema_match;
pub mod summarize;
pub mod tag;
