//! Manufacturer imputation (the §4.3 Buy-dataset task).
//!
//! 1. If a known brand appears verbatim in the text → read it off (near-
//!    perfect comprehension).
//! 2. Else, if a known product line appears → answer the line's owner
//!    ("PlayStation 2 …" → Sony): the world-knowledge path that statistical
//!    imputers cannot take.
//! 3. Else guess deterministically from the candidate vocabulary — right only
//!    by luck.

use crate::calibration::Calibration;
use crate::knowledge::KnowledgeBase;
use crate::noise;
use crate::prompt::ParsedPrompt;
use lingua_ml::features::fxhash;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Produce the response text for an imputation prompt.
pub fn respond(
    kb: &KnowledgeBase,
    calibration: &Calibration,
    parsed: &ParsedPrompt,
    rng: &mut StdRng,
) -> String {
    // Categorical answers drift less than free-form prose: even unpinned,
    // a model asked for a manufacturer mostly emits a short name.
    let verbose_rate = if parsed.format_pinned {
        calibration.verbose_answer_rate_pinned
    } else {
        calibration.verbose_answer_rate_unpinned * 0.55
    };
    let text = &parsed.payload;
    if text.trim().is_empty() {
        return "Please provide the product to impute.".to_string();
    }
    let vocabulary: &[String] =
        if parsed.candidates.is_empty() { kb.manufacturers() } else { &parsed.candidates };

    // Step 1: brand read-off.
    if let Some(maker) = kb.manufacturer_in_text(text) {
        if rng.gen_bool(calibration.text_mention_accuracy) {
            return noise::render_category(rng, maker, verbose_rate);
        }
        // Rare comprehension slip: misread as another brand.
        let wrong = pick_other(vocabulary, maker, text);
        return noise::render_category(rng, &wrong, verbose_rate);
    }

    // Step 2: product-line knowledge.
    if let Some(owner) = kb.line_owner_in_text(text) {
        let mut answer = owner.to_string();
        if rng.gen_bool(calibration.known_entity_error) {
            answer = pick_other(vocabulary, owner, text);
        }
        return noise::render_category(rng, &answer, verbose_rate);
    }

    // Step 3: blind guess, stable per product text.
    let guess = if vocabulary.is_empty() {
        "Unknown".to_string()
    } else {
        vocabulary[(fxhash(text.as_bytes()) as usize) % vocabulary.len()].clone()
    };
    noise::render_category(rng, &guess, verbose_rate)
}

fn pick_other(vocabulary: &[String], not: &str, key: &str) -> String {
    let others: Vec<&String> = vocabulary.iter().filter(|v| *v != not).collect();
    if others.is_empty() {
        return not.to_string();
    }
    others[(fxhash(key.as_bytes()) as usize) % others.len()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt;
    use lingua_dataset::world::{BrandMention, WorldSpec};
    use rand::SeedableRng;

    fn setup() -> (WorldSpec, KnowledgeBase, Calibration) {
        let world = WorldSpec::generate(5);
        let cal = Calibration::default();
        let kb = KnowledgeBase::from_world(&world, &cal, 5);
        (world, kb, cal)
    }

    fn ask(kb: &KnowledgeBase, cal: &Calibration, name: &str, desc: &str, seed: u64) -> String {
        let text = format!(
            "Fill in the missing manufacturer.\nProduct: {name} - {desc}\nAnswer with only the manufacturer name.",
        );
        let parsed = prompt::parse(&text);
        let mut rng = StdRng::seed_from_u64(seed);
        respond(kb, cal, &parsed, &mut rng)
    }

    #[test]
    fn easy_cases_are_nearly_perfect() {
        let (world, kb, cal) = setup();
        let vocab: Vec<String> = kb.manufacturers().to_vec();
        let mut correct = 0;
        let mut total = 0;
        for p in
            world.products.iter().filter(|p| p.mention != BrandMention::KnowledgeOnly).take(150)
        {
            let answer = ask(&kb, &cal, &p.name, &p.description, p.id);
            if noise::normalize_category(&answer, &vocab) == p.manufacturer {
                correct += 1;
            }
            total += 1;
        }
        assert!(correct as f64 / total as f64 > 0.95, "{correct}/{total}");
    }

    #[test]
    fn hard_cases_track_line_coverage() {
        let (world, kb, cal) = setup();
        let vocab: Vec<String> = kb.manufacturers().to_vec();
        let mut correct = 0;
        let mut total = 0;
        for p in world.products.iter().filter(|p| p.mention == BrandMention::KnowledgeOnly) {
            let answer = ask(&kb, &cal, &p.name, &p.description, p.id);
            if noise::normalize_category(&answer, &vocab) == p.manufacturer {
                correct += 1;
            }
            total += 1;
        }
        let rate = correct as f64 / total as f64;
        // Should be near product_line_coverage (0.68) plus a little luck.
        assert!((0.50..0.85).contains(&rate), "hard-case accuracy {rate} over {total}");
    }

    #[test]
    fn responses_are_deterministic_per_seed() {
        let (world, kb, cal) = setup();
        let p = &world.products[0];
        let a = ask(&kb, &cal, &p.name, &p.description, 1);
        let b = ask(&kb, &cal, &p.name, &p.description, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_product_asks_for_input() {
        let (_, kb, cal) = setup();
        let parsed = prompt::parse("Fill in the missing manufacturer.");
        let mut rng = StdRng::seed_from_u64(0);
        assert!(respond(&kb, &cal, &parsed, &mut rng).contains("provide"));
    }
}
