//! Extractive summarisation — one of the "various extra tasks" the paper's
//! introduction lists as part of real curation workflows.

use crate::prompt::ParsedPrompt;
use lingua_ml::textsim;
use std::collections::BTreeMap;

/// Produce a short extractive summary: the lead sentence plus the most
/// frequent content words.
pub fn respond(parsed: &ParsedPrompt) -> String {
    let text = parsed.payload.trim();
    if text.is_empty() {
        return "Please provide text to summarize.".to_string();
    }
    let lead: String =
        text.split_inclusive(['.', '!', '?']).next().unwrap_or(text).trim().to_string();

    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for token in textsim::tokens(text) {
        if token.chars().count() > 3 {
            *counts.entry(token).or_default() += 1;
        }
    }
    let mut ranked: Vec<(&String, &usize)> = counts.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let keywords: Vec<&str> = ranked.iter().take(5).map(|(word, _)| word.as_str()).collect();

    if keywords.is_empty() {
        lead
    } else {
        format!("{lead} Key terms: {}.", keywords.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt;

    #[test]
    fn summary_contains_lead_and_keywords() {
        let text = "Summarize the following.\nText: The merger was approved by the board. \
                    The merger will close next quarter. Analysts praised the merger terms.";
        let parsed = prompt::parse(text);
        let summary = respond(&parsed);
        assert!(summary.starts_with("The merger was approved by the board."), "{summary}");
        assert!(summary.contains("merger"), "{summary}");
    }

    #[test]
    fn empty_text_asks_for_input() {
        let parsed = prompt::parse("Summarize the following.");
        assert!(respond(&parsed).contains("provide"));
    }

    #[test]
    fn single_sentence_passthrough() {
        let parsed = prompt::parse("Summarize.\nText: Tiny note");
        let summary = respond(&parsed);
        assert!(summary.contains("Tiny note"), "{summary}");
    }
}
