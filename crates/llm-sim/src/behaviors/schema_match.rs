//! Schema matching: align two column lists — a classic data-integration task
//! from the paper's introduction (Data Tamer's territory).
//!
//! Prompt protocol:
//!
//! ```text
//! Perform schema matching between the tables.
//! Columns A: product_name, maker, cost
//! Columns B: name, manufacturer, price_usd
//! ```
//!
//! Response: `product_name -> name; maker -> manufacturer; cost -> price_usd`

use lingua_ml::textsim;

/// Semantic synonym groups the model "knows" — the world knowledge a real
/// LLM brings to column alignment beyond string similarity.
const SYNONYMS: &[&[&str]] = &[
    &["name", "title", "product_name", "song_name", "beer_name", "label"],
    &["manufacturer", "maker", "brand", "producer", "vendor", "company"],
    &["price", "cost", "price_usd", "amount", "msrp"],
    &["description", "details", "summary", "info", "text"],
    &["address", "addr", "street", "location"],
    &["city", "town", "municipality"],
    &["phone", "telephone", "phone_number", "tel"],
    &["artist", "artist_name", "singer", "band", "performer"],
    &["album", "album_name", "record"],
    &["year", "released", "release_year", "date"],
    &["time", "duration", "length"],
    &["genre", "category", "style", "type"],
];

fn synonym_group(column: &str) -> Option<usize> {
    let norm = column.to_lowercase();
    SYNONYMS.iter().position(|group| group.contains(&norm.as_str()))
}

/// Similarity between two column names: synonym-group identity dominates,
/// string similarity breaks ties.
pub fn column_similarity(a: &str, b: &str) -> f64 {
    let string_sim =
        textsim::jaro_winkler(&a.to_lowercase(), &b.to_lowercase()).max(textsim::overlap_tokens(
            &a.to_lowercase().replace('_', " "),
            &b.to_lowercase().replace('_', " "),
        ));
    match (synonym_group(a), synonym_group(b)) {
        (Some(ga), Some(gb)) if ga == gb => 0.9 + 0.1 * string_sim,
        _ => string_sim,
    }
}

/// Greedy best-first one-to-one matching between two column lists. Pairs
/// below `threshold` stay unmatched.
pub fn match_columns(a: &[String], b: &[String], threshold: f64) -> Vec<(String, String)> {
    let mut scored: Vec<(f64, usize, usize)> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        for (j, cb) in b.iter().enumerate() {
            scored.push((column_similarity(ca, cb), i, j));
        }
    }
    scored.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
    let mut used_a = vec![false; a.len()];
    let mut used_b = vec![false; b.len()];
    let mut out = Vec::new();
    for (score, i, j) in scored {
        if score < threshold {
            break;
        }
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            out.push((a[i].clone(), b[j].clone()));
        }
    }
    out
}

/// Produce the response for a schema-matching prompt (parses the raw prompt
/// for the `Columns A:` / `Columns B:` lines).
pub fn respond(raw_prompt: &str) -> String {
    let mut cols_a: Vec<String> = Vec::new();
    let mut cols_b: Vec<String> = Vec::new();
    for line in raw_prompt.lines() {
        let t = line.trim();
        let lower = t.to_lowercase();
        if let Some(rest) = lower.strip_prefix("columns a:") {
            cols_a =
                rest.split(',').map(|c| c.trim().to_string()).filter(|c| !c.is_empty()).collect();
        } else if let Some(rest) = lower.strip_prefix("columns b:") {
            cols_b =
                rest.split(',').map(|c| c.trim().to_string()).filter(|c| !c.is_empty()).collect();
        }
    }
    if cols_a.is_empty() || cols_b.is_empty() {
        return "Please list the columns of both tables.".to_string();
    }
    let pairs = match_columns(&cols_a, &cols_b, 0.6);
    if pairs.is_empty() {
        return "No confident column correspondences found.".to_string();
    }
    pairs.iter().map(|(a, b)| format!("{a} -> {b}")).collect::<Vec<_>>().join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonyms_align_across_vocabularies() {
        let response = respond(
            "Perform schema matching between the tables.\n\
             Columns A: product_name, maker, cost\n\
             Columns B: name, manufacturer, price_usd",
        );
        assert!(response.contains("product_name -> name"), "{response}");
        assert!(response.contains("maker -> manufacturer"), "{response}");
        assert!(response.contains("cost -> price_usd"), "{response}");
    }

    #[test]
    fn string_similarity_handles_unknown_columns() {
        let pairs = match_columns(
            &["customer_id".to_string(), "zzz".to_string()],
            &["customerid".to_string(), "qqq".to_string()],
            0.6,
        );
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "customer_id");
    }

    #[test]
    fn matching_is_one_to_one() {
        let pairs =
            match_columns(&["name".to_string(), "title".to_string()], &["name".to_string()], 0.5);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn missing_columns_get_a_clarification() {
        assert!(respond("Perform schema matching.").contains("list the columns"));
    }

    #[test]
    fn low_similarity_yields_no_matches() {
        let pairs = match_columns(&["alpha".to_string()], &["zu".to_string()], 0.8);
        assert!(pairs.is_empty());
    }
}
