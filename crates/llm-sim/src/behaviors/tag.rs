//! Person-name tagging: "Is this phrase a person name?" (the LLM tagger in
//! the Figure-3 name-extraction pipeline).
//!
//! The model consults its per-language name lexicons. With a language hint in
//! the prompt (supplied by the language-detection module of §4.2) it uses the
//! right lexicon; without one it assumes English — which is precisely why the
//! monolingual pipeline degrades on multilingual data.

use crate::calibration::Calibration;
use crate::knowledge::KnowledgeBase;
use crate::noise;
use crate::prompt::ParsedPrompt;
use lingua_dataset::world::Language;
use lingua_ml::features::fxhash;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Judge whether `phrase` is a person name under `language` knowledge.
/// Returns the verdict plus whether the phrase was actually covered by the
/// lexicon (used for confidence).
pub fn judge_phrase(kb: &KnowledgeBase, language: Language, phrase: &str) -> (bool, bool) {
    let tokens: Vec<&str> = phrase.split_whitespace().collect();
    if tokens.is_empty() || tokens.len() > 4 {
        return (false, true);
    }
    // Known place/org names are confidently not people.
    if tokens.iter().any(|t| kb.is_known_place_or_org(t)) {
        return (false, true);
    }
    let first = tokens[0];
    let given_known = kb.knows_given_name(language, first);
    let surname_known = tokens
        .len()
        .checked_sub(1)
        .map(|_| {
            // Surnames may span multiple tokens ("De Luca"): try the last
            // token and the last two joined.
            let last = tokens[tokens.len() - 1];
            let last_two = if tokens.len() >= 2 {
                format!("{} {}", tokens[tokens.len() - 2], last)
            } else {
                last.to_string()
            };
            kb.knows_surname(language, last) || kb.knows_surname(language, &last_two)
        })
        .unwrap_or(false);

    if given_known && (tokens.len() == 1 || surname_known) {
        (true, true)
    } else if given_known || surname_known {
        // Partial knowledge: lean yes for two-token capitalized phrases.
        let capitalized =
            tokens.iter().all(|t| t.chars().next().map(|c| c.is_uppercase()).unwrap_or(false));
        (capitalized && tokens.len() >= 2, true)
    } else {
        (false, false)
    }
}

/// Produce the response for a tagging prompt.
pub fn respond(
    kb: &KnowledgeBase,
    calibration: &Calibration,
    parsed: &ParsedPrompt,
    rng: &mut StdRng,
) -> String {
    let verbose_rate = if parsed.format_pinned {
        calibration.verbose_answer_rate_pinned
    } else {
        calibration.verbose_answer_rate_unpinned
    };
    let phrase = parsed.payload.trim();
    if phrase.is_empty() {
        return "Please provide a phrase to judge.".to_string();
    }
    let language =
        parsed.language_hint.as_deref().and_then(Language::from_code).unwrap_or(Language::English);

    let (verdict, covered) = judge_phrase(kb, language, phrase);
    let mut verdict = verdict;
    if !covered {
        // Out-of-knowledge phrase: unstable guess, biased to "no", stable per
        // phrase so repeated queries agree.
        let draw = (fxhash(phrase.as_bytes()) >> 9) as f64 / (1u64 << 55) as f64;
        verdict = draw < 0.22;
    }
    if rng.gen_bool(calibration.hallucination_rate) {
        verdict = !verdict;
    }
    noise::render_bool(rng, verdict, verbose_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt;
    use lingua_dataset::world::WorldSpec;
    use rand::SeedableRng;

    fn setup() -> (WorldSpec, KnowledgeBase, Calibration) {
        let world = WorldSpec::generate(5);
        let cal = Calibration::default();
        let kb = KnowledgeBase::from_world(&world, &cal, 5);
        (world, kb, cal)
    }

    fn ask(kb: &KnowledgeBase, cal: &Calibration, phrase: &str, lang: Option<&str>) -> bool {
        let lang_line = lang.map(|l| format!("Language: {l}\n")).unwrap_or_default();
        let text = format!(
            "Is the following phrase a person name?\n{lang_line}Text: {phrase}\nAnswer yes or no.",
        );
        let parsed = prompt::parse(&text);
        let mut rng = StdRng::seed_from_u64(fxhash(phrase.as_bytes()));
        noise::parse_bool_robust(&respond(kb, cal, &parsed, &mut rng)).unwrap_or(false)
    }

    #[test]
    fn english_names_recognized_without_hint() {
        let (_, kb, cal) = setup();
        let mut hits = 0;
        let names = ["James Smith", "Mary Johnson", "Robert Brown", "Linda Davis", "John Walker"];
        for name in names {
            if ask(&kb, &cal, name, None) {
                hits += 1;
            }
        }
        assert!(hits >= 4, "{hits}/5 English names tagged");
    }

    #[test]
    fn foreign_names_need_the_language_hint() {
        let (_, kb, cal) = setup();
        let names = [
            "Hans Müller",
            "Greta Fischer",
            "Jürgen Weber",
            "Sabine Wagner",
            "Wolfgang Becker",
            "Ingrid Schulz",
        ];
        let mut without_hint = 0;
        let mut with_hint = 0;
        for name in names {
            if ask(&kb, &cal, name, None) {
                without_hint += 1;
            }
            if ask(&kb, &cal, name, Some("de")) {
                with_hint += 1;
            }
        }
        assert!(with_hint >= 5, "with hint: {with_hint}/6");
        assert!(without_hint <= 2, "without hint: {without_hint}/6");
    }

    #[test]
    fn places_are_rejected() {
        let (_, kb, cal) = setup();
        assert!(!ask(&kb, &cal, "London", None));
        assert!(!ask(&kb, &cal, "Paris", Some("fr")));
    }

    #[test]
    fn long_phrases_are_rejected() {
        let (_, kb, cal) = setup();
        assert!(!ask(&kb, &cal, "the quick brown fox jumps over", None));
    }

    #[test]
    fn judgments_are_stable() {
        let (_, kb, cal) = setup();
        let a = ask(&kb, &cal, "Qwxyz Zzyxq", None);
        let b = ask(&kb, &cal, "Qwxyz Zzyxq", None);
        assert_eq!(a, b);
    }
}
