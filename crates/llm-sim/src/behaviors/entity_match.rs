//! Entity-match judgments.
//!
//! Decision procedure, mirroring how a knowledge-rich model behaves:
//!
//! 1. Try to *recognize* both records as known entities (fuzzy lookup in the
//!    knowledge base). If both resolve, answer from ground-truth identity
//!    with a small mis-recall rate.
//! 2. Otherwise fall back to a textual-similarity judgment. With in-context
//!    examples in the prompt the judgment is calibrated (robust per-field
//!    weighting, stricter threshold); without them it is the naive eager
//!    matcher that sinks the FMs baseline on hard negatives.

use crate::calibration::Calibration;
use crate::knowledge::{EntityDomain, KnowledgeBase};
use crate::noise;
use crate::prompt::ParsedPrompt;
use lingua_ml::textsim;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Infer the entity domain from record field names.
pub fn detect_domain(fields: &BTreeMap<String, String>) -> Option<EntityDomain> {
    if fields.contains_key("brewery") || fields.contains_key("beer_name") {
        Some(EntityDomain::Beer)
    } else if fields.contains_key("cuisine") || fields.contains_key("phone") {
        Some(EntityDomain::Restaurant)
    } else if fields.contains_key("artist_name")
        || fields.contains_key("artist")
        || fields.contains_key("album_name")
    {
        Some(EntityDomain::Song)
    } else {
        None
    }
}

fn field<'a>(fields: &'a BTreeMap<String, String>, names: &[&str]) -> &'a str {
    names.iter().find_map(|n| fields.get(*n)).map(|s| s.as_str()).unwrap_or("")
}

/// (primary, secondary) key text for knowledge-base resolution.
fn keys(domain: EntityDomain, fields: &BTreeMap<String, String>) -> (String, String) {
    match domain {
        EntityDomain::Beer => (
            field(fields, &["beer_name", "name"]).to_string(),
            field(fields, &["brewery"]).to_string(),
        ),
        EntityDomain::Restaurant => (
            field(fields, &["name"]).to_string(),
            format!("{} {}", field(fields, &["addr"]), field(fields, &["city"])),
        ),
        EntityDomain::Song => (
            field(fields, &["song_name", "title"]).to_string(),
            field(fields, &["artist_name", "artist"]).to_string(),
        ),
    }
}

/// The similarity judgment used when the entities are not recognized.
///
/// `calibrated` switches between the example-conditioned judgment and the
/// naive one.
pub fn similarity_verdict(
    a: &BTreeMap<String, String>,
    b: &BTreeMap<String, String>,
    calibrated: bool,
    threshold: f64,
) -> bool {
    pair_score(a, b, calibrated) >= threshold
}

/// The record-pair similarity score underlying the judgment, in `[0, 1]`.
pub fn pair_score(
    a: &BTreeMap<String, String>,
    b: &BTreeMap<String, String>,
    calibrated: bool,
) -> f64 {
    // Align fields by name (union).
    let names: std::collections::BTreeSet<&str> =
        a.keys().chain(b.keys()).map(|s| s.as_str()).collect();
    let mut weighted = 0.0;
    let mut total_weight = 0.0;
    for name in names {
        let va = a.get(name).map(|s| s.to_lowercase()).unwrap_or_default();
        let vb = b.get(name).map(|s| s.to_lowercase()).unwrap_or_default();
        if va.trim().is_empty() || vb.trim().is_empty() {
            continue;
        }
        let is_primary = matches!(name, "name" | "beer_name" | "song_name" | "title");
        let sim = if calibrated {
            // Robust: overlap coefficient shrugs off decorations
            // ("(Remastered)"), numeric-aware comparison for times/prices.

            textsim::overlap_tokens(&va, &vb)
                .max(textsim::jaro_winkler(&va, &vb))
                .max(textsim::numeric_sim(&va, &vb) * 0.9)
        } else {
            // Naive: brittle token Jaccard + raw edit similarity.
            0.5 * textsim::jaccard_tokens(&va, &vb) + 0.5 * textsim::levenshtein_sim(&va, &vb)
        };
        let weight = if calibrated {
            if is_primary {
                3.0
            } else {
                1.0
            }
        } else {
            1.0
        };
        weighted += sim * weight;
        total_weight += weight;
    }
    if total_weight == 0.0 {
        return 0.0;
    }
    weighted / total_weight
}

/// Parse an in-context example body of the form
/// `A: field: v; ... | B: field: v; ...` into two field maps.
pub fn parse_example_pair(
    text: &str,
) -> Option<(BTreeMap<String, String>, BTreeMap<String, String>)> {
    let rest = text.trim().strip_prefix("A:").or_else(|| text.trim().strip_prefix("a:"))?;
    let (a_text, b_text) = rest.split_once("| B:").or_else(|| rest.split_once("| b:"))?;
    let a = crate::prompt::parse_fields(a_text);
    let b = crate::prompt::parse_fields(b_text);
    (!a.is_empty() && !b.is_empty()).then_some((a, b))
}

/// Derive a decision threshold from labeled in-context examples — genuine
/// in-context calibration: score each example pair, then place the threshold
/// between the hardest negative and the easiest positive.
pub fn threshold_from_examples(examples: &[(String, bool)], fallback: f64) -> f64 {
    let mut max_negative: Option<f64> = None;
    let mut min_positive: Option<f64> = None;
    for (text, label) in examples {
        let Some((a, b)) = parse_example_pair(text) else { continue };
        let score = pair_score(&a, &b, true);
        if *label {
            min_positive = Some(min_positive.map_or(score, |m: f64| m.min(score)));
        } else {
            max_negative = Some(max_negative.map_or(score, |m: f64| m.max(score)));
        }
    }
    let threshold = match (max_negative, min_positive) {
        (Some(neg), Some(pos)) => (neg + pos) / 2.0,
        (Some(neg), None) => neg + 0.05,
        (None, Some(pos)) => pos - 0.05,
        (None, None) => fallback,
    };
    threshold.clamp(0.45, 0.97)
}

/// Produce the response text for an entity-match prompt.
pub fn respond(
    kb: &KnowledgeBase,
    calibration: &Calibration,
    parsed: &ParsedPrompt,
    rng: &mut StdRng,
) -> String {
    let verbose_rate = if parsed.format_pinned {
        calibration.verbose_answer_rate_pinned
    } else {
        calibration.verbose_answer_rate_unpinned
    };

    if parsed.record_a.is_empty() || parsed.record_b.is_empty() {
        return "I need two records to compare.".to_string();
    }

    let domain = detect_domain(&parsed.record_a).or_else(|| detect_domain(&parsed.record_b));
    let calibrated = !parsed.examples.is_empty();

    // Step 1: knowledge-based recognition.
    if let Some(domain) = domain {
        let (pa, sa) = keys(domain, &parsed.record_a);
        let (pb, sb) = keys(domain, &parsed.record_b);
        let ra = kb.resolve(domain, &pa, &sa);
        let rb = kb.resolve(domain, &pb, &sb);
        if let (Some(ia), Some(ib)) = (ra, rb) {
            let mut verdict = ia == ib;
            if rng.gen_bool(calibration.known_entity_error) {
                verdict = !verdict;
            }
            return noise::render_bool(rng, verdict, verbose_rate);
        }
        // One-sided anchored recognition: only with in-context examples —
        // few-shot prompting is what elicits this careful "do both records
        // describe the entity I recognized?" reasoning (zero-shot models skip
        // straight to surface similarity, which is the FMs failure mode).
        if calibrated {
            let anchored = match (ra, rb) {
                (Some(ia), None) => kb.matches_known(domain, ia, &pb, &sb),
                (None, Some(ib)) => kb.matches_known(domain, ib, &pa, &sa),
                _ => None,
            };
            if let Some(mut verdict) = anchored {
                if rng.gen_bool(calibration.known_entity_error) {
                    verdict = !verdict;
                }
                return noise::render_bool(rng, verdict, verbose_rate);
            }
        }
    }

    // Step 2: similarity heuristic. With in-context examples the model
    // calibrates its decision threshold from them; without, it uses its
    // (eagerly low) prior.
    let threshold = if calibrated {
        threshold_from_examples(&parsed.examples, calibration.match_threshold_calibrated)
    } else {
        calibration.match_threshold_naive
    };
    let mut verdict = similarity_verdict(&parsed.record_a, &parsed.record_b, calibrated, threshold);
    if rng.gen_bool(calibration.hallucination_rate) {
        verdict = !verdict;
    }
    noise::render_bool(rng, verdict, verbose_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt;
    use lingua_dataset::world::WorldSpec;
    use rand::SeedableRng;

    fn setup() -> (WorldSpec, KnowledgeBase, Calibration) {
        let world = WorldSpec::generate(5);
        let cal = Calibration::default();
        let kb = KnowledgeBase::from_world(&world, &cal, 5);
        (world, kb, cal)
    }

    fn record_line(label: &str, pairs: &[(&str, &str)]) -> String {
        let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}: {v}")).collect();
        format!("Record {label}: {}", body.join("; "))
    }

    #[test]
    fn domain_detection() {
        let mut f = BTreeMap::new();
        f.insert("brewery".to_string(), "X".to_string());
        assert_eq!(detect_domain(&f), Some(EntityDomain::Beer));
        let mut f = BTreeMap::new();
        f.insert("phone".to_string(), "123".to_string());
        assert_eq!(detect_domain(&f), Some(EntityDomain::Restaurant));
        let mut f = BTreeMap::new();
        f.insert("artist_name".to_string(), "Y".to_string());
        assert_eq!(detect_domain(&f), Some(EntityDomain::Song));
        assert_eq!(detect_domain(&BTreeMap::new()), None);
    }

    #[test]
    fn identical_known_records_match() {
        let (world, kb, cal) = setup();
        let mut correct = 0;
        let mut total = 0;
        for beer in world.beers.iter().take(60) {
            let text = format!(
                "Determine if the following records refer to the same entity.\n{}\n{}\nAnswer yes or no.",
                record_line("A", &[("beer_name", &beer.name), ("brewery", &beer.brewery)]),
                record_line("B", &[("beer_name", &beer.name), ("brewery", &beer.brewery)]),
            );
            let parsed = prompt::parse(&text);
            let mut rng = StdRng::seed_from_u64(beer.id);
            let response = respond(&kb, &cal, &parsed, &mut rng);
            if crate::noise::parse_bool_robust(&response) == Some(true) {
                correct += 1;
            }
            total += 1;
        }
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn disjoint_records_do_not_match() {
        let (world, kb, cal) = setup();
        let a = &world.beers[0];
        let b = world.beers.iter().find(|x| x.brewery != a.brewery && x.name != a.name).unwrap();
        let text = format!(
            "Same entity?\n{}\n{}\nAnswer yes or no.",
            record_line("A", &[("beer_name", &a.name), ("brewery", &a.brewery)]),
            record_line("B", &[("beer_name", &b.name), ("brewery", &b.brewery)]),
        );
        let parsed = prompt::parse(&text);
        let mut yes = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let response = respond(&kb, &cal, &parsed, &mut rng);
            if crate::noise::parse_bool_robust(&response) == Some(true) {
                yes += 1;
            }
        }
        assert!(yes <= 2, "false positives: {yes}/20");
    }

    #[test]
    fn calibrated_judgment_is_more_robust_to_decorations() {
        // Same song, one side decorated — calibrated (overlap-based) should
        // say yes, naive (jaccard-based) should struggle.
        let mut a = BTreeMap::new();
        a.insert("song_name".to_string(), "Midnight Hearts".to_string());
        a.insert("artist_name".to_string(), "Ivy Parade".to_string());
        a.insert("time".to_string(), "4:05".to_string());
        let mut b = BTreeMap::new();
        b.insert(
            "song_name".to_string(),
            "Midnight Hearts (Remastered) [Deluxe Edition]".to_string(),
        );
        b.insert("artist_name".to_string(), "Ivy Parade [feat. Various]".to_string());
        b.insert("time".to_string(), "245".to_string());
        let cal = Calibration::default();
        assert!(similarity_verdict(&a, &b, true, cal.match_threshold_calibrated));
        assert!(!similarity_verdict(&a, &b, false, 0.75));
    }

    #[test]
    fn naive_judgment_overfires_on_hard_negatives() {
        // Same artist + album, different songs — superficially very similar.
        let mut a = BTreeMap::new();
        a.insert("song_name".to_string(), "Midnight Hearts".to_string());
        a.insert("artist_name".to_string(), "Ivy Parade".to_string());
        a.insert("album_name".to_string(), "Neon Rivers".to_string());
        a.insert("genre".to_string(), "Pop".to_string());
        let mut b = a.clone();
        b.insert("song_name".to_string(), "Broken Skyline".to_string());
        let cal = Calibration::default();
        // Naive threshold, equal weights: 3 of 4 fields identical -> yes.
        assert!(similarity_verdict(&a, &b, false, cal.match_threshold_naive));
        // Calibrated: primary field triple-weighted with robust sims -> no.
        assert!(!similarity_verdict(&a, &b, true, cal.match_threshold_calibrated));
    }

    #[test]
    fn missing_records_get_a_clarification() {
        let (_, kb, cal) = setup();
        let parsed = prompt::parse("Are these the same entity?");
        let mut rng = StdRng::seed_from_u64(0);
        let response = respond(&kb, &cal, &parsed, &mut rng);
        assert!(response.contains("two records"));
    }
}
