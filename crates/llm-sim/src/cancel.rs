//! Cooperative cancellation: a shared [`CancelToken`] carrying a deadline
//! and/or an explicit cancel flag, plus a thread-local [`CancelScope`] so
//! layers behind the infallible [`LlmService`](crate::LlmService) trait
//! (the simulator itself, the gateway's retry loop) can consult the token
//! of the job currently executing on this thread without any signature
//! changes.
//!
//! This crate is the bottom of the workspace dependency graph, so the token
//! lives here and every layer above (core's executor, the gateway, the serve
//! worker pool) shares one type.
//!
//! Semantics:
//!
//! * A token is cheap to clone (an `Arc` bump); all clones observe the same
//!   state. Cancellation is **cooperative and monotonic** — once a token
//!   reports cancelled it never un-cancels.
//! * [`CancelToken::status`] reports `DeadlineExceeded` in preference to
//!   `Cancelled` when both hold: a watchdog nudging a stuck job with
//!   [`CancelToken::cancel`] must not mask the fact that the job's deadline
//!   already passed.
//! * The token doubles as the worker **heartbeat**: [`CancelToken::check`]
//!   and [`CancelToken::touch`] bump a logical progress counter that the
//!   serve watchdog reads to distinguish "slow but advancing" from "wedged".

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Response text returned by cancellation-aware LLM layers (the simulator,
/// the gateway) when the calling job's token is already cancelled: the call
/// is never placed and **nothing is billed** at any layer, so per-job meters
/// and the shared service ledger stay reconciled to the cent.
pub const CANCELLED_NOTICE: &str =
    "[cancelled] job deadline passed or job was cancelled before this LLM call was placed";

/// Why a token reports cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The token's deadline passed.
    DeadlineExceeded,
    /// Someone called [`CancelToken::cancel`] (a client, or the watchdog).
    Cancelled,
}

impl CancelReason {
    /// Stable lowercase label (used in trace attributes and reports).
    pub fn label(&self) -> &'static str {
        match self {
            CancelReason::DeadlineExceeded => "deadline_exceeded",
            CancelReason::Cancelled => "cancelled",
        }
    }
}

#[derive(Debug)]
struct TokenInner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    /// Logical heartbeat: bumped on every cooperative check-in.
    progress: AtomicU64,
}

/// Shared deadline + explicit-cancel flag + heartbeat. Clone freely; all
/// clones share state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unbounded()
    }
}

impl CancelToken {
    fn with_inner(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                deadline,
                cancelled: AtomicBool::new(false),
                progress: AtomicU64::new(0),
            }),
        }
    }

    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn unbounded() -> CancelToken {
        CancelToken::with_inner(None)
    }

    /// A token that reports `DeadlineExceeded` once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::with_inner(Some(deadline))
    }

    /// A token whose deadline is `timeout` from now.
    pub fn after(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left before the deadline (`None` = unbounded; zero = expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True if [`CancelToken::cancel`] was called (independent of deadline).
    pub fn explicitly_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Current cancellation state. Deadline expiry wins over explicit cancel
    /// so a watchdog nudge cannot mask a deadline overrun.
    pub fn status(&self) -> Option<CancelReason> {
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Some(CancelReason::DeadlineExceeded);
            }
        }
        if self.explicitly_cancelled() {
            return Some(CancelReason::Cancelled);
        }
        None
    }

    /// True if the token is cancelled for any reason.
    pub fn is_cancelled(&self) -> bool {
        self.status().is_some()
    }

    /// Cooperative check-in: bumps the heartbeat, then reports state.
    /// Call sites treat `Err` as "stop what you are doing".
    pub fn check(&self) -> Result<(), CancelReason> {
        self.touch();
        match self.status() {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    /// Bump the heartbeat without checking state.
    pub fn touch(&self) {
        self.inner.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Logical heartbeat value (monotonic count of cooperative check-ins).
    pub fn progress(&self) -> u64 {
        self.inner.progress.load(Ordering::Relaxed)
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard installing a token as the current thread's cancel scope.
/// Layers that cannot thread a token through their signatures (anything
/// behind `LlmService`) read it back via [`current`]. Scopes nest; the
/// innermost wins. The guard is `!Send` by construction (it must drop on
/// the thread that entered it) — unwinding drops it correctly, so a panic
/// inside a scope cannot leak a stale token onto the worker thread.
pub struct CancelScope {
    /// Keeps the type `!Send`/`!Sync` so the scope cannot migrate threads.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl CancelScope {
    /// Push `token` as the innermost scope for this thread.
    pub fn enter(token: &CancelToken) -> CancelScope {
        CURRENT.with(|stack| stack.borrow_mut().push(token.clone()));
        CancelScope { _not_send: std::marker::PhantomData }
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// RAII guard that temporarily removes **every** cancel scope from the
/// current thread, restoring the stack when dropped. See [`suspend`].
pub struct SuspendedScopes {
    saved: Vec<CancelToken>,
    /// Keeps the type `!Send`/`!Sync` — the stack must be restored on the
    /// thread it was taken from.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SuspendedScopes {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scopes entered while suspended sit *inside* the saved ones.
            let entered_meanwhile = std::mem::take(&mut *stack);
            *stack = std::mem::take(&mut self.saved);
            stack.extend(entered_meanwhile);
        });
    }
}

/// Detach the current thread from every entered cancel scope until the
/// returned guard drops.
///
/// This exists for **donated work**: when one job's thread executes a call
/// on behalf of many jobs (a batcher member flushing a shared batch), the
/// flusher's own token must not decide the fate of its siblings' requests.
/// Suspending the scope makes [`current`] / [`current_cancelled`] report "no
/// scope", so cancellation-aware layers below treat the call as
/// uncancellable shared work; per-job cancellation stays the caller's
/// responsibility (filter members before, re-check after).
pub fn suspend() -> SuspendedScopes {
    SuspendedScopes {
        saved: CURRENT.with(|stack| std::mem::take(&mut *stack.borrow_mut())),
        _not_send: std::marker::PhantomData,
    }
}

/// The innermost token entered on this thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// Cancellation state of the innermost scope (`None` when no scope is
/// entered or the scope's token is live). This is the single hook the
/// simulator and gateway consult: with no scope entered it is a few
/// nanoseconds and changes nothing, so code paths outside serve (unit
/// tests, benches, chaos replays) behave bit-identically.
pub fn current_cancelled() -> Option<CancelReason> {
    CURRENT.with(|stack| stack.borrow().last().and_then(|token| token.status()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_cancels_until_asked() {
        let token = CancelToken::unbounded();
        assert_eq!(token.status(), None);
        assert!(token.check().is_ok());
        token.cancel();
        assert_eq!(token.status(), Some(CancelReason::Cancelled));
        assert_eq!(token.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_expiry_reports_deadline_exceeded_even_after_explicit_cancel() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        // Deadline wins: a watchdog nudge must not mask the overrun.
        assert_eq!(token.status(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn clones_share_state_and_heartbeat() {
        let token = CancelToken::unbounded();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        token.touch();
        clone.touch();
        assert_eq!(token.progress(), 2);
    }

    #[test]
    fn remaining_saturates_at_zero() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(token.remaining(), Some(Duration::ZERO));
        assert!(CancelToken::unbounded().remaining().is_none());
    }

    #[test]
    fn scope_stack_nests_and_unwinds() {
        assert!(current().is_none());
        let outer = CancelToken::unbounded();
        let inner = CancelToken::after(Duration::from_secs(60));
        {
            let _outer = CancelScope::enter(&outer);
            assert!(current().unwrap().deadline().is_none());
            {
                let _inner = CancelScope::enter(&inner);
                assert!(current().unwrap().deadline().is_some());
            }
            assert!(current().unwrap().deadline().is_none());
        }
        assert!(current().is_none());
    }

    #[test]
    fn scope_survives_unwind() {
        let token = CancelToken::unbounded();
        let result = std::panic::catch_unwind(|| {
            let _scope = CancelScope::enter(&token);
            panic!("boom");
        });
        assert!(result.is_err());
        // The guard dropped during unwind; no stale token remains.
        assert!(current().is_none());
    }

    #[test]
    fn suspend_hides_every_scope_and_restores_on_drop() {
        let outer = CancelToken::unbounded();
        let inner = CancelToken::unbounded();
        outer.cancel();
        inner.cancel();
        let _outer = CancelScope::enter(&outer);
        let _inner = CancelScope::enter(&inner);
        assert!(current_cancelled().is_some());
        {
            let _shield = suspend();
            // Donated work sees no scope at all — not even the outer one.
            assert!(current().is_none());
            assert_eq!(current_cancelled(), None);
        }
        // Both scopes restored, innermost still on top.
        assert_eq!(current_cancelled(), Some(CancelReason::Cancelled));
        assert!(current().is_some());
    }

    #[test]
    fn scopes_entered_while_suspended_nest_inside_restored_ones() {
        let outer = CancelToken::unbounded();
        let fresh = CancelToken::after(Duration::from_secs(60));
        let _outer = CancelScope::enter(&outer);
        let shield = suspend();
        let entered = CancelScope::enter(&fresh);
        assert!(current().unwrap().deadline().is_some());
        drop(shield);
        // The scope entered during suspension stays innermost.
        assert!(current().unwrap().deadline().is_some());
        drop(entered);
        assert!(current().unwrap().deadline().is_none());
    }

    #[test]
    fn suspend_restores_during_unwind() {
        let token = CancelToken::unbounded();
        token.cancel();
        let _scope = CancelScope::enter(&token);
        let result = std::panic::catch_unwind(|| {
            let _shield = suspend();
            panic!("boom");
        });
        assert!(result.is_err());
        // The shield dropped during unwind; the original scope is back.
        assert_eq!(current_cancelled(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn current_cancelled_reflects_innermost_scope() {
        assert_eq!(current_cancelled(), None);
        let token = CancelToken::unbounded();
        let _scope = CancelScope::enter(&token);
        assert_eq!(current_cancelled(), None);
        token.cancel();
        assert_eq!(current_cancelled(), Some(CancelReason::Cancelled));
    }
}
