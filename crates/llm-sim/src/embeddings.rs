//! Pseudo-embedding helpers built on the hashing vectorizer.
//!
//! Real systems would call an embedding endpoint; the simulation uses a
//! deterministic token-hash vectorizer, which preserves the property data
//! discovery needs: textually similar inputs land near each other.

/// Light suffix-stripping stemmer so that morphological variants ("beers",
/// "breweries", "styles") embed near their base forms — a cheap stand-in for
/// the semantic robustness of a real embedding model.
pub fn stem(token: &str) -> String {
    let t = token.to_lowercase();
    if let Some(base) = t.strip_suffix("ies") {
        if base.len() >= 3 {
            return format!("{base}y");
        }
    }
    if let Some(base) = t.strip_suffix("es") {
        if base.len() >= 3 && (base.ends_with("sh") || base.ends_with("ch") || base.ends_with('x'))
        {
            return base.to_string();
        }
    }
    if let Some(base) = t.strip_suffix('s') {
        if base.len() >= 3 && !base.ends_with('s') {
            return base.to_string();
        }
    }
    t
}

/// Normalize text before embedding: split identifier underscores and stem
/// each token.
pub fn normalize_for_embedding(text: &str) -> String {
    text.replace('_', " ").split_whitespace().map(stem).collect::<Vec<_>>().join(" ")
}

/// Cosine similarity between two embedding vectors.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Rank `candidates` by embedding similarity to `query`, descending.
/// Returns `(index, similarity)` pairs.
pub fn rank_by_similarity(query: &[f64], candidates: &[Vec<f64>]) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> =
        candidates.iter().enumerate().map(|(i, c)| (i, cosine(query, c))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{LlmService, SimLlm};
    use lingua_dataset::world::WorldSpec;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn similar_texts_rank_first() {
        let world = WorldSpec::generate(5);
        let svc = SimLlm::with_seed(&world, 5);
        let query = svc.embed("beer brewery styles and abv catalogue");
        let candidates = vec![
            svc.embed("a catalogue of beer styles from many a brewery with abv"),
            svc.embed("restaurant addresses phone numbers and cuisine"),
            svc.embed("song titles artists albums and prices"),
        ];
        let ranked = rank_by_similarity(&query, &candidates);
        assert_eq!(ranked[0].0, 0, "{ranked:?}");
        assert!(ranked[0].1 > ranked[1].1);
    }
}
