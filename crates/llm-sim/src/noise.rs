//! Output-instability model.
//!
//! Real LLMs drift in surface form: "yes", "Yes.", "They appear to be the
//! same entity.", hedges, stray punctuation. The paper's LLM-module design
//! explicitly calls for output validation because of this (§3.1). This module
//! renders boolean / categorical answers through that instability, seeded.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Verbose surface forms for a *yes* answer.
const YES_FORMS: &[&str] = &[
    "Yes, these records refer to the same entity.",
    "They appear to be the same entity.",
    "Yes. Both records describe the same item, despite formatting differences.",
    "I believe so - the two records match.",
    "Most likely yes.",
];

/// Verbose surface forms for a *no* answer.
const NO_FORMS: &[&str] = &[
    "No, these are different entities.",
    "They appear to be distinct records.",
    "No. The records describe different items.",
    "I don't think these match.",
    "Most likely not.",
];

/// Render a boolean answer. `verbose_rate` is the probability of a decorated
/// phrasing instead of the bare token.
pub fn render_bool(rng: &mut StdRng, answer: bool, verbose_rate: f64) -> String {
    if rng.gen_bool(verbose_rate.clamp(0.0, 1.0)) {
        let forms = if answer { YES_FORMS } else { NO_FORMS };
        forms[rng.gen_range(0..forms.len())].to_string()
    } else if rng.gen_bool(0.15) {
        // Mild drift: capitalization / trailing period.
        if answer { "Yes." } else { "No." }.to_string()
    } else {
        if answer { "yes" } else { "no" }.to_string()
    }
}

/// Render a categorical answer (e.g. a manufacturer name). Verbose forms wrap
/// the value in prose, which breaks exact-match consumers that skip output
/// validation.
pub fn render_category(rng: &mut StdRng, value: &str, verbose_rate: f64) -> String {
    if rng.gen_bool(verbose_rate.clamp(0.0, 1.0)) {
        let templates = [
            format!("The manufacturer is {value}."),
            format!("{value} (based on the product line)"),
            format!("This product is made by {value}."),
            format!("Answer: {value}"),
        ];
        templates[rng.gen_range(0..templates.len())].clone()
    } else {
        value.to_string()
    }
}

/// Robust parse of a boolean answer: what a *validated* LLM module does.
/// Returns `None` for text that contains neither polarity (truly unusable).
pub fn parse_bool_robust(text: &str) -> Option<bool> {
    let lower = text.to_lowercase();
    let has = |needle: &str| lower.contains(needle);
    let yes =
        has("yes") || has("same entity") || has("match") && !has("don't") && !has("not match");
    let no = has("no,")
        || lower.trim() == "no"
        || lower.starts_with("no.")
        || lower.starts_with("no ")
        || has("different")
        || has("distinct")
        || has("don't think")
        || has("not match")
        || has("likely not");
    match (yes, no) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        (true, true) => Some(false), // conflicting signals: be conservative
        (false, false) => None,
    }
}

/// Naive parse: what the FMs baseline does — look only at the first word.
pub fn parse_bool_naive(text: &str) -> bool {
    text.trim().to_lowercase().starts_with("yes")
}

/// Strict categorical normalization against a closed vocabulary: the output
/// validator for imputation. Finds a vocabulary entry contained in the
/// answer; falls back to the raw trimmed answer.
pub fn normalize_category<'a>(text: &'a str, vocabulary: &'a [String]) -> &'a str {
    let lower = text.to_lowercase();
    vocabulary
        .iter()
        .filter(|v| lower.contains(&v.to_lowercase()))
        .max_by_key(|v| v.len())
        .map(|v| v.as_str())
        .unwrap_or_else(|| text.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn bare_answers_dominate_at_zero_verbosity() {
        let mut r = rng();
        for _ in 0..20 {
            let s = render_bool(&mut r, true, 0.0);
            assert!(s == "yes" || s == "Yes.", "{s}");
        }
    }

    #[test]
    fn verbose_answers_appear_at_high_verbosity() {
        let mut r = rng();
        let mut verbose = 0;
        for _ in 0..50 {
            let s = render_bool(&mut r, false, 1.0);
            if s.split_whitespace().count() > 1 {
                verbose += 1;
            }
        }
        assert_eq!(verbose, 50);
    }

    #[test]
    fn robust_parser_reads_all_forms() {
        let mut r = rng();
        for _ in 0..100 {
            let answer = r.gen_bool(0.5);
            let text = render_bool(&mut r, answer, 0.5);
            assert_eq!(parse_bool_robust(&text), Some(answer), "{text}");
        }
        assert_eq!(parse_bool_robust("completely unrelated"), None);
    }

    #[test]
    fn naive_parser_misses_verbose_yes() {
        // "They appear to be the same entity." starts with "They" -> naive
        // parse reads it as "no". This is exactly the FMs failure mode.
        assert!(!parse_bool_naive("They appear to be the same entity."));
        assert!(parse_bool_naive("yes"));
        assert!(parse_bool_naive("Yes."));
        assert!(!parse_bool_naive("no"));
    }

    #[test]
    fn category_rendering_and_normalization() {
        let mut r = rng();
        let vocab = vec!["Sony".to_string(), "Microsoft".to_string()];
        for _ in 0..40 {
            let text = render_category(&mut r, "Sony", 0.7);
            assert_eq!(normalize_category(&text, &vocab), "Sony", "{text}");
        }
        // Without validation, verbose forms fail exact match.
        let verbose = render_category(&mut StdRng::seed_from_u64(1), "Sony", 1.0);
        assert_ne!(verbose, "Sony");
        // Unknown answers pass through trimmed.
        assert_eq!(normalize_category("  Frobozz  ", &vocab), "Frobozz");
    }

    #[test]
    fn longest_vocabulary_match_wins() {
        let vocab = vec!["Go".to_string(), "Google".to_string()];
        assert_eq!(normalize_category("made by google inc", &vocab), "Google");
    }
}
