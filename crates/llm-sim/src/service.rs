//! The LLM service facade.
//!
//! [`SimLlm`] is the single entry point the rest of the system talks to. It
//! routes prompts through [`crate::prompt`] to the behaviours, meters every
//! call in tokens and dollars, optionally caches responses, and exposes the
//! structured code-generation endpoints used by LLMGC modules.

use crate::behaviors;
use crate::calibration::Calibration;
use crate::cancel::{self, CANCELLED_NOTICE};
use crate::codegen::{self, CodeGenSpec, GeneratedCode};
use crate::cost::{count_tokens, AtomicUsage, TokenPricing, Usage};
use crate::hotpath::{fingerprint, CacheStats, Flight, ShardedLru, Singleflight, DEFAULT_SHARDS};
use crate::knowledge::KnowledgeBase;
use crate::prompt::{self, TaskIntent};
use lingua_dataset::world::WorldSpec;
use lingua_ml::features::{fxhash, HashingVectorizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// A completion request. Kept minimal: the simulated service is temperature-0
/// (responses are a pure function of the prompt and the service seed).
///
/// The request also memoizes its prompt's 64-bit fingerprint, so a call chain
/// that crosses several caching layers (gateway stale cache → simulator
/// response cache → fault plan) hashes the prompt bytes exactly once.
#[derive(Debug, Clone)]
pub struct CompletionRequest {
    pub prompt: String,
    fingerprint: OnceLock<u64>,
}

impl CompletionRequest {
    pub fn new(prompt: impl Into<String>) -> Self {
        CompletionRequest { prompt: prompt.into(), fingerprint: OnceLock::new() }
    }

    /// The prompt's FNV-1a fingerprint, computed on first use and shared by
    /// every layer the request flows through.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| fingerprint(&self.prompt))
    }
}

/// The result of one batched completion: per-member shared responses, a
/// per-member [`Usage`] split, and the batch-level usage booked against the
/// service ledger.
///
/// Conservation law: `sum(splits) == batch_usage`, field for field — so a
/// suite that prices both sides gets equality to the cent, not within an
/// epsilon. The whole batch counts as **one** backend call: exactly one
/// split carries `calls == 1` (the first billed member); cache-answered and
/// coalesced members carry pure savings.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// One response per request, in request order.
    pub responses: Vec<Arc<str>>,
    /// The exact usage attributed to each member, in request order.
    pub splits: Vec<Usage>,
    /// Sum of the splits: what this batch added to the service ledger.
    pub batch_usage: Usage,
}

impl BatchOutcome {
    pub fn with_capacity(members: usize) -> BatchOutcome {
        BatchOutcome {
            responses: Vec::with_capacity(members),
            splits: Vec::with_capacity(members),
            batch_usage: Usage::default(),
        }
    }

    /// Members answered without billing: cache hits, plus members coalesced
    /// onto an identical prompt computed earlier in the same batch.
    pub fn saved_members(&self) -> usize {
        self.splits.iter().filter(|split| split.cached_calls > 0).count()
    }
}

/// The service interface `lingua-core` programs against. Implementations must
/// be shareable across threads (the executor may parallelize record batches).
pub trait LlmService: Send + Sync {
    /// Free-text completion.
    fn complete(&self, request: &CompletionRequest) -> String;
    /// Free-text completion returning a shared, clone-free response.
    ///
    /// Cache-backed services override this so repeat prompts hand out another
    /// reference to the cached `Arc<str>` instead of copying the bytes; the
    /// default adapts [`LlmService::complete`], so wrappers (meters, tracers,
    /// gateways) keep their interception semantics without opting in.
    fn complete_shared(&self, request: &CompletionRequest) -> Arc<str> {
        Arc::from(self.complete(request))
    }
    /// Answer several requests in one batched backend round trip.
    ///
    /// Implementations must uphold `sum(splits) == batch_usage` and must add
    /// exactly `batch_usage` to [`LlmService::usage`] (exact once callers
    /// quiesce). The default adapts [`LlmService::complete_shared`] one
    /// member at a time, attributing each member the ledger delta its call
    /// produced — correct for any wrapper (splits may over-attribute under
    /// concurrent foreign traffic, but the conservation law still holds by
    /// construction). Services with a genuine batched entry point (the
    /// simulator, the gateway, the batcher) override it.
    fn complete_batch(&self, requests: &[CompletionRequest]) -> BatchOutcome {
        let mut outcome = BatchOutcome::with_capacity(requests.len());
        for request in requests {
            let before = self.usage();
            let response = self.complete_shared(request);
            let split = self.usage().since(&before);
            outcome.batch_usage.merge(&split);
            outcome.splits.push(split);
            outcome.responses.push(response);
        }
        outcome
    }
    /// Deterministic text embedding (for data-discovery tasks).
    fn embed(&self, text: &str) -> Vec<f64>;
    /// Cumulative usage counters.
    fn usage(&self) -> Usage;
    /// Re-enter previously billed usage into the ledger — crash recovery
    /// restoring a journaled cumulative bill into a fresh process, so that
    /// post-restart ledgers still reconcile against the lifetime bill.
    /// Default is a no-op: wrappers and transports have no ledger of their
    /// own to restore.
    fn restore_usage(&self, _usage: &Usage) {}
    /// Simulated wall-clock latency accumulated so far, in milliseconds.
    fn simulated_latency_ms(&self) -> u64;
    /// Generate an LLMGC module program (metered like a completion).
    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode;
    /// Ask for a fix suggestion given code and failure descriptions.
    fn suggest_fix(&self, source: &str, failures: &[String]) -> String;
    /// Regenerate code after a failed validation, given the suggestion.
    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode;
}

/// Configuration for [`SimLlm`].
#[derive(Debug, Clone)]
pub struct SimLlmConfig {
    pub seed: u64,
    pub calibration: Calibration,
    pub pricing: TokenPricing,
    /// Response cache (identical prompt → cached answer, no tokens billed).
    pub cache_enabled: bool,
    /// Maximum cached responses across all shards; each shard evicts its
    /// least-recently-used entry beyond its slice of this. Long-running
    /// serving workloads would otherwise grow the cache without bound.
    pub cache_capacity: usize,
    /// Lock stripes in the response cache; `0` picks a default sized for the
    /// machine. Tests pin `1` to get a deterministic global LRU.
    pub cache_shards: usize,
    /// Simulated per-call latency, accumulated in a counter (never slept).
    pub latency_ms_per_call: u64,
}

impl Default for SimLlmConfig {
    fn default() -> Self {
        SimLlmConfig {
            seed: 0,
            calibration: Calibration::default(),
            pricing: TokenPricing::default(),
            cache_enabled: false,
            cache_capacity: 4096,
            cache_shards: 0,
            latency_ms_per_call: 350,
        }
    }
}

impl SimLlmConfig {
    fn resolved_shards(&self) -> usize {
        if self.cache_shards > 0 {
            self.cache_shards
        } else {
            let cores =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(DEFAULT_SHARDS);
            (cores * 4).clamp(DEFAULT_SHARDS, 64)
        }
    }
}

/// A cached completion: the shared response plus the token counts a hit
/// saves. Storing the counts makes a hit O(1) — the old path re-tokenized
/// the prompt *and* the response under the global lock on every hit.
#[derive(Clone)]
struct CachedResponse {
    text: Arc<str>,
    tokens_in: usize,
    tokens_out: usize,
}

/// The simulated LLM service.
///
/// Concurrency: the hot path holds no global lock. The response cache is a
/// lock-striped [`ShardedLru`], usage metering is [`AtomicUsage`], and
/// concurrent identical prompts coalesce through a [`Singleflight`] (one
/// computes, the rest share the `Arc`'d response and book the saving). See
/// `DESIGN.md` §"Performance: the LLM hot path".
pub struct SimLlm {
    config: SimLlmConfig,
    knowledge: KnowledgeBase,
    vectorizer: HashingVectorizer,
    /// `None` when caching is disabled or capacity is zero.
    cache: Option<ShardedLru<CachedResponse>>,
    flights: Singleflight<CachedResponse>,
    usage: AtomicUsage,
    latency_ms: AtomicU64,
    /// Monotonic nonce so repeated code-generation attempts differ.
    codegen_counter: AtomicU64,
}

impl SimLlm {
    /// Build the service over a world (constructs the knowledge base).
    pub fn new(world: &WorldSpec, config: SimLlmConfig) -> SimLlm {
        let knowledge = KnowledgeBase::from_world(world, &config.calibration, config.seed);
        let cache = (config.cache_enabled && config.cache_capacity > 0)
            .then(|| ShardedLru::new(config.cache_capacity, config.resolved_shards()));
        SimLlm {
            knowledge,
            vectorizer: HashingVectorizer::new(512),
            cache,
            flights: Singleflight::new(),
            usage: AtomicUsage::new(),
            latency_ms: AtomicU64::new(0),
            codegen_counter: AtomicU64::new(0),
            config,
        }
    }

    /// Convenience constructor with defaults.
    pub fn with_seed(world: &WorldSpec, seed: u64) -> SimLlm {
        SimLlm::new(world, SimLlmConfig { seed, ..Default::default() })
    }

    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    pub fn calibration(&self) -> &Calibration {
        &self.config.calibration
    }

    pub fn pricing(&self) -> &TokenPricing {
        &self.config.pricing
    }

    /// Number of responses currently held in the cache. Reads per-shard
    /// atomics only — snapshotting never blocks a writer.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map(ShardedLru::len).unwrap_or(0)
    }

    /// Hot-path counters: cache hits/misses/evictions plus singleflight
    /// coalesces. Lock-free snapshot; exact once callers quiesce.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.as_ref().map(ShardedLru::stats).unwrap_or_default();
        stats.coalesced = self.flights.coalesced();
        stats
    }

    /// Zero the usage counters (between experiment arms).
    pub fn reset_usage(&self) {
        self.usage.reset();
        self.latency_ms.store(0, Ordering::Relaxed);
    }

    fn respond(&self, prompt_text: &str) -> String {
        let parsed = prompt::parse(prompt_text);
        // Per-call RNG: pure function of (service seed, prompt) — temperature-0
        // semantics; identical prompts always answer identically.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ fxhash(prompt_text.as_bytes()));
        match parsed.intent {
            TaskIntent::EntityMatch => behaviors::entity_match::respond(
                &self.knowledge,
                &self.config.calibration,
                &parsed,
                &mut rng,
            ),
            TaskIntent::Impute => behaviors::impute::respond(
                &self.knowledge,
                &self.config.calibration,
                &parsed,
                &mut rng,
            ),
            TaskIntent::TagNames => behaviors::tag::respond(
                &self.knowledge,
                &self.config.calibration,
                &parsed,
                &mut rng,
            ),
            TaskIntent::DetectLanguage => behaviors::langdetect::respond(
                &self.knowledge,
                &self.config.calibration,
                &parsed,
                &mut rng,
            ),
            TaskIntent::Summarize => behaviors::summarize::respond(&parsed),
            TaskIntent::SchemaMatch => behaviors::schema_match::respond(prompt_text),
            TaskIntent::Unknown => {
                "I'm not sure what task you are asking for. Please describe the data \
                 curation task (entity resolution, imputation, extraction, ...)."
                    .to_string()
            }
        }
    }

    fn meter(&self, prompt_text: &str, response: &str) {
        self.usage.record(count_tokens(prompt_text), count_tokens(response));
        self.latency_ms.fetch_add(self.config.latency_ms_per_call, Ordering::Relaxed);
    }

    /// Fault-injection hook (used by `lingua-gateway`'s chaos substrate):
    /// meter a call that a simulated transport fault aborted. The prompt
    /// still crossed the wire — input tokens bill and the call consumed its
    /// latency — but no response tokens were produced.
    pub fn meter_failed_call(&self, prompt_text: &str) {
        self.usage.record_failed(count_tokens(prompt_text));
        self.latency_ms.fetch_add(self.config.latency_ms_per_call, Ordering::Relaxed);
    }

    // -- structured code-generation endpoints (see the LlmService trait) -----

    fn generate_code_impl(&self, spec: &CodeGenSpec) -> GeneratedCode {
        let nonce = self.codegen_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ fxhash(spec.task.as_bytes()) ^ nonce.wrapping_mul(0x9e37),
        );
        let code = codegen::generate(spec, &self.config.calibration, &mut rng);
        self.meter(&spec.task, &code.source);
        code
    }

    fn suggest_fix_impl(&self, source: &str, failures: &[String]) -> String {
        let suggestion = codegen::suggest_fix(source, failures);
        let request = format!("{source}\n{}", failures.join("\n"));
        self.meter(&request, &suggestion);
        suggestion
    }

    fn repair_code_impl(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        let nonce = self.codegen_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ fxhash(previous.source.as_bytes()) ^ nonce.wrapping_mul(0x517c_c1b7),
        );
        let code = codegen::repair(spec, &self.config.calibration, previous, suggestion, &mut rng);
        let request = format!("{}\n{suggestion}", previous.source);
        self.meter(&request, &code.source);
        code
    }
}

impl LlmService for SimLlm {
    fn complete(&self, request: &CompletionRequest) -> String {
        self.complete_shared(request).as_ref().to_string()
    }

    fn complete_shared(&self, request: &CompletionRequest) -> Arc<str> {
        // Cooperative cancellation: if the job driving this thread is already
        // past its deadline (or explicitly cancelled), the call is never
        // placed and nothing bills — at this layer or any wrapper (meters and
        // tracers recognise the notice). With no scope entered this is a
        // thread-local read and the path is byte-identical to before.
        if cancel::current_cancelled().is_some() {
            return Arc::from(CANCELLED_NOTICE);
        }
        if !self.config.cache_enabled {
            let response = self.respond(&request.prompt);
            self.meter(&request.prompt, &response);
            return Arc::from(response);
        }
        // The fingerprint is computed once per call chain (memoized on the
        // request) and doubles as cache key, shard selector, and
        // singleflight key.
        let key = request.fingerprint();
        if let Some(cache) = &self.cache {
            if let Some(entry) = cache.get(key) {
                // Book the exact tokens the hit avoided billing — counted
                // once at insert time, not re-tokenized per hit.
                self.usage.record_cached(entry.tokens_in, entry.tokens_out);
                return entry.text;
            }
        }
        match self.flights.join(key, || {
            let response = self.respond(&request.prompt);
            let entry = CachedResponse {
                tokens_in: count_tokens(&request.prompt),
                tokens_out: count_tokens(&response),
                text: Arc::from(response),
            };
            self.usage.record(entry.tokens_in, entry.tokens_out);
            self.latency_ms.fetch_add(self.config.latency_ms_per_call, Ordering::Relaxed);
            if let Some(cache) = &self.cache {
                cache.insert(key, entry.clone());
            }
            entry
        }) {
            Flight::Led(entry) => entry.text,
            Flight::Coalesced(entry) => {
                // A coalesced call shares the leader's computation: billed
                // nothing, booked as a cache saving.
                self.usage.record_cached(entry.tokens_in, entry.tokens_out);
                entry.text
            }
        }
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> BatchOutcome {
        // Deliberately NO thread-local cancellation check here: a batch flush
        // runs on one member's thread, and that member's scope must not
        // decide for its siblings. Per-member cancellation is the batcher's
        // job — cancelled members are removed *before* the flush reaches this
        // entry point, so every request arriving here is live.
        //
        // The batch also bypasses the singleflight: identical prompts inside
        // one batch coalesce through the cache insert below, and identical
        // misses racing across concurrent flushes at worst recompute a
        // deterministic response (billing stays exact per flush).
        let mut outcome = BatchOutcome::with_capacity(requests.len());
        let mut billed_any = false;
        for request in requests {
            let key = request.fingerprint();
            let mut split = Usage::default();
            if let Some(cache) = &self.cache {
                if let Some(entry) = cache.get(key) {
                    // A hit — or a member coalescing onto an identical
                    // prompt computed earlier in this very batch.
                    split.record_cached(entry.tokens_in, entry.tokens_out);
                    outcome.batch_usage.merge(&split);
                    outcome.splits.push(split);
                    outcome.responses.push(entry.text);
                    continue;
                }
            }
            let response = self.respond(&request.prompt);
            let tokens_in = count_tokens(&request.prompt);
            let tokens_out = count_tokens(&response);
            let text: Arc<str> = Arc::from(response);
            // The whole flush is ONE batched backend call: the first billed
            // member carries it, siblings contribute tokens only. That keeps
            // `sum(splits).calls == batch_usage.calls == 1`.
            if !billed_any {
                split.calls = 1;
                billed_any = true;
            }
            split.tokens_in += tokens_in as u64;
            split.tokens_out += tokens_out as u64;
            if let Some(cache) = &self.cache {
                cache
                    .insert(key, CachedResponse { text: Arc::clone(&text), tokens_in, tokens_out });
            }
            outcome.batch_usage.merge(&split);
            outcome.splits.push(split);
            outcome.responses.push(text);
        }
        // Book the ledger once for the whole batch, and accrue one round
        // trip's latency — the amortization batching exists to buy.
        self.usage.merge(&outcome.batch_usage);
        if billed_any {
            self.latency_ms.fetch_add(self.config.latency_ms_per_call, Ordering::Relaxed);
        }
        outcome
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        self.usage.record(count_tokens(text), 0);
        self.latency_ms.fetch_add(self.config.latency_ms_per_call / 4, Ordering::Relaxed);
        self.vectorizer.transform(&crate::embeddings::normalize_for_embedding(text))
    }

    fn usage(&self) -> Usage {
        self.usage.snapshot()
    }

    fn restore_usage(&self, usage: &Usage) {
        self.usage.merge(usage);
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.latency_ms.load(Ordering::Relaxed)
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.generate_code_impl(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.suggest_fix_impl(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.repair_code_impl(spec, previous, suggestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> SimLlm {
        let world = WorldSpec::generate(5);
        SimLlm::with_seed(&world, 5)
    }

    #[test]
    fn completion_is_deterministic() {
        let svc = service();
        let req = CompletionRequest::new(
            "Determine if these refer to the same entity.\n\
             Record A: beer_name: Hoppy Badger; brewery: Stonegate Brewing\n\
             Record B: beer_name: Hoppy Badger; brewery: Stonegate Brewing\n\
             Answer yes or no.",
        );
        assert_eq!(svc.complete(&req), svc.complete(&req));
    }

    #[test]
    fn usage_is_metered() {
        let svc = service();
        assert_eq!(svc.usage().calls, 0);
        svc.complete(&CompletionRequest::new("Summarize. Text: hello world"));
        let usage = svc.usage();
        assert_eq!(usage.calls, 1);
        assert!(usage.tokens_in > 0);
        assert!(svc.simulated_latency_ms() > 0);
        svc.reset_usage();
        assert_eq!(svc.usage().calls, 0);
    }

    #[test]
    fn cache_avoids_repeat_billing() {
        let world = WorldSpec::generate(5);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 5, cache_enabled: true, ..Default::default() },
        );
        let req = CompletionRequest::new("Summarize. Text: the same text every time");
        let a = svc.complete(&req);
        let b = svc.complete(&req);
        assert_eq!(a, b);
        let usage = svc.usage();
        assert_eq!(usage.calls, 1);
        assert_eq!(usage.cached_calls, 1);
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used() {
        let world = WorldSpec::generate(5);
        // One shard: a deterministic global LRU for the test.
        let svc = SimLlm::new(
            &world,
            SimLlmConfig {
                seed: 5,
                cache_enabled: true,
                cache_capacity: 2,
                cache_shards: 1,
                ..Default::default()
            },
        );
        let prompts = [
            "Summarize. Text: the first document",
            "Summarize. Text: the second document",
            "Summarize. Text: the third document",
        ];
        for prompt in &prompts {
            svc.complete(&CompletionRequest::new(*prompt));
        }
        assert_eq!(svc.cache_len(), 2, "capacity bounds the cache");
        // The newest entries still hit; the least recently used was evicted
        // and re-bills.
        svc.complete(&CompletionRequest::new(prompts[2]));
        assert_eq!(svc.usage().cached_calls, 1);
        let calls_before = svc.usage().calls;
        svc.complete(&CompletionRequest::new(prompts[0]));
        assert_eq!(svc.usage().calls, calls_before + 1, "evicted entry is a miss");
        assert_eq!(svc.cache_len(), 2);
        // Re-completing an already-cached prompt hits and refreshes recency.
        svc.complete(&CompletionRequest::new(prompts[0]));
        assert_eq!(svc.usage().cached_calls, 2);
        // LRU (not FIFO): the hit on prompts[0] above refreshed it, so a new
        // insert evicts prompts[2] — the stalest entry — instead.
        svc.complete(&CompletionRequest::new("Summarize. Text: a fourth document"));
        let cached_before = svc.usage().cached_calls;
        svc.complete(&CompletionRequest::new(prompts[0]));
        assert_eq!(svc.usage().cached_calls, cached_before + 1, "recently-hit entry survived");
        let stats = svc.cache_stats();
        assert_eq!(stats.hits, svc.usage().cached_calls);
        assert_eq!(stats.misses, svc.usage().calls, "sequential misses all led");
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let world = WorldSpec::generate(5);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 5, cache_enabled: true, cache_capacity: 0, ..Default::default() },
        );
        let req = CompletionRequest::new("Summarize. Text: anything at all");
        svc.complete(&req);
        svc.complete(&req);
        assert_eq!(svc.cache_len(), 0);
        assert_eq!(svc.usage().calls, 2);
        assert_eq!(svc.usage().cached_calls, 0);
    }

    #[test]
    fn unknown_prompts_get_a_clarification() {
        let svc = service();
        let response = svc.complete(&CompletionRequest::new("What's your favourite colour?"));
        assert!(response.contains("not sure"));
    }

    #[test]
    fn codegen_endpoints_are_metered_and_vary_per_attempt() {
        let svc = service();
        let spec = CodeGenSpec {
            task: "tokenize the text".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        let first = svc.generate_code(&spec);
        let mut attempts = vec![first.bug];
        for _ in 0..10 {
            attempts.push(svc.generate_code(&spec).bug);
        }
        // Across 11 attempts at a 45% bug rate we should see both outcomes.
        assert!(attempts.iter().any(|b| b.is_some()));
        assert!(attempts.iter().any(|b| b.is_none()));
        assert!(svc.usage().calls >= 11);
    }

    #[test]
    fn repair_loop_terminates() {
        let svc = service();
        let spec = CodeGenSpec {
            task: "extract noun phrases from the tokens".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        let mut code = svc.generate_code(&spec);
        let mut rounds = 0;
        while code.bug.is_some() && rounds < 12 {
            let suggestion = svc.suggest_fix(&code.source, &["failing case".into()]);
            code = svc.repair_code(&spec, &code, &suggestion);
            rounds += 1;
        }
        assert!(code.bug.is_none(), "did not converge");
    }

    #[test]
    fn embeddings_are_deterministic_and_metered() {
        let svc = service();
        let a = svc.embed("product catalogue table");
        let b = svc.embed("product catalogue table");
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
        assert!(svc.usage().tokens_in > 0);
        // Different texts embed differently.
        let c = svc.embed("completely different words");
        assert_ne!(a, c);
    }

    #[test]
    fn cancelled_scope_short_circuits_and_bills_nothing() {
        use crate::cancel::{CancelScope, CancelToken};
        let world = WorldSpec::generate(5);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 5, cache_enabled: true, ..Default::default() },
        );
        let req = CompletionRequest::new("Summarize. Text: a document worth billing for");
        let live = svc.complete(&req);
        assert_ne!(live, CANCELLED_NOTICE);
        let usage_before = svc.usage();
        let latency_before = svc.simulated_latency_ms();
        let token = CancelToken::unbounded();
        token.cancel();
        {
            let _scope = CancelScope::enter(&token);
            // Even a cacheable repeat prompt returns the notice: the job is
            // dead, so no savings are booked either.
            assert_eq!(svc.complete(&req), CANCELLED_NOTICE);
            assert_eq!(
                svc.complete(&CompletionRequest::new("Summarize. Text: never placed")),
                CANCELLED_NOTICE
            );
        }
        assert_eq!(svc.usage(), usage_before, "cancelled calls bill nothing");
        assert_eq!(svc.simulated_latency_ms(), latency_before);
        // Scope dropped: the service answers normally again.
        assert_eq!(svc.complete(&req), live);
    }

    #[test]
    fn batch_books_one_call_and_splits_tokens_exactly() {
        let world = WorldSpec::generate(5);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 5, cache_enabled: true, ..Default::default() },
        );
        let requests: Vec<CompletionRequest> = (0..4)
            .map(|i| CompletionRequest::new(format!("Summarize. Text: document number {i}")))
            .collect();
        let latency_before = svc.simulated_latency_ms();
        let outcome = svc.complete_batch(&requests);
        assert_eq!(outcome.responses.len(), 4);
        assert_eq!(outcome.splits.len(), 4);
        // One batched backend call, one round trip of latency.
        assert_eq!(outcome.batch_usage.calls, 1);
        assert_eq!(
            svc.simulated_latency_ms() - latency_before,
            SimLlmConfig::default().latency_ms_per_call
        );
        // Conservation: the splits sum to the batch, the batch to the ledger.
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(summed, outcome.batch_usage);
        assert_eq!(svc.usage(), outcome.batch_usage);
        // Every member was billed its own tokens.
        assert!(outcome.splits.iter().all(|s| s.tokens_in > 0 && s.tokens_out > 0));
        // Responses match the single-call path byte for byte.
        for (request, response) in requests.iter().zip(&outcome.responses) {
            assert_eq!(svc.respond(&request.prompt), response.as_ref());
        }
    }

    #[test]
    fn batch_coalesces_identical_prompts_and_hits_the_cache() {
        let world = WorldSpec::generate(5);
        let svc = SimLlm::new(
            &world,
            SimLlmConfig { seed: 5, cache_enabled: true, ..Default::default() },
        );
        // Warm the cache with one prompt, then batch: [warm, fresh, fresh-dup].
        svc.complete(&CompletionRequest::new("Summarize. Text: already warm"));
        let requests = vec![
            CompletionRequest::new("Summarize. Text: already warm"),
            CompletionRequest::new("Summarize. Text: brand new"),
            CompletionRequest::new("Summarize. Text: brand new"),
        ];
        let before = svc.usage();
        let outcome = svc.complete_batch(&requests);
        // Member 0 hit the warm cache; member 2 coalesced onto member 1's
        // in-batch compute. Only member 1 billed.
        assert_eq!(outcome.batch_usage.calls, 1);
        assert_eq!(outcome.batch_usage.cached_calls, 2);
        assert_eq!(outcome.saved_members(), 2);
        assert_eq!(outcome.splits[0].calls, 0);
        assert_eq!(outcome.splits[1].calls, 1);
        assert_eq!(outcome.splits[2].cached_calls, 1);
        assert_eq!(outcome.responses[1], outcome.responses[2]);
        assert_eq!(svc.usage().since(&before), outcome.batch_usage);
    }

    #[test]
    fn batch_without_cache_bills_every_member_in_one_call() {
        let svc = service(); // cache disabled
        let requests = vec![
            CompletionRequest::new("Summarize. Text: one"),
            CompletionRequest::new("Summarize. Text: two"),
        ];
        let outcome = svc.complete_batch(&requests);
        assert_eq!(outcome.batch_usage.calls, 1, "amortized into one backend call");
        assert_eq!(outcome.batch_usage.cached_calls, 0);
        assert!(outcome.splits.iter().all(|s| s.tokens_in > 0));
        assert_eq!(svc.usage(), outcome.batch_usage);
    }

    #[test]
    fn empty_batch_is_free() {
        let svc = service();
        let outcome = svc.complete_batch(&[]);
        assert!(outcome.responses.is_empty());
        assert_eq!(outcome.batch_usage, Usage::default());
        assert_eq!(svc.usage(), Usage::default());
        assert_eq!(svc.simulated_latency_ms(), 0);
    }

    #[test]
    fn default_trait_batch_upholds_conservation() {
        // A wrapper that only forwards `complete` exercises the trait's
        // default `complete_batch`: per-member ledger deltas must still sum
        // to the batch usage.
        struct Fwd(SimLlm);
        impl LlmService for Fwd {
            fn complete(&self, request: &CompletionRequest) -> String {
                self.0.complete(request)
            }
            fn embed(&self, text: &str) -> Vec<f64> {
                self.0.embed(text)
            }
            fn usage(&self) -> Usage {
                self.0.usage()
            }
            fn simulated_latency_ms(&self) -> u64 {
                self.0.simulated_latency_ms()
            }
            fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
                self.0.generate_code(spec)
            }
            fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
                self.0.suggest_fix(source, failures)
            }
            fn repair_code(
                &self,
                spec: &CodeGenSpec,
                previous: &GeneratedCode,
                suggestion: &str,
            ) -> GeneratedCode {
                self.0.repair_code(spec, previous, suggestion)
            }
        }
        let world = WorldSpec::generate(5);
        let svc = Fwd(SimLlm::with_seed(&world, 5));
        let requests = vec![
            CompletionRequest::new("Summarize. Text: alpha"),
            CompletionRequest::new("Summarize. Text: beta"),
        ];
        let outcome = svc.complete_batch(&requests);
        let mut summed = Usage::default();
        for split in &outcome.splits {
            summed.merge(split);
        }
        assert_eq!(summed, outcome.batch_usage);
        assert_eq!(outcome.batch_usage.calls, 2, "default path has no amortization");
        assert_eq!(svc.usage(), outcome.batch_usage);
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimLlm>();
    }
}
