//! Prompt parsing and intent routing.
//!
//! The simulated LLM receives ordinary text prompts (the same strings a real
//! service would). This module classifies the task the prompt is asking for
//! and extracts its structured payload: records, examples, passages, output
//! format pins, language hints.

use std::collections::BTreeMap;

/// The tasks the simulated LLM can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskIntent {
    /// "Are these two records the same entity?"
    EntityMatch,
    /// "Fill in the missing manufacturer for this product."
    Impute,
    /// "Extract all person names from this passage."
    TagNames,
    /// "What language is this text?"
    DetectLanguage,
    /// "Summarize this text."
    Summarize,
    /// "Which columns of table A match which columns of table B?"
    SchemaMatch,
    /// Anything unrecognized.
    Unknown,
}

/// Everything extracted from one prompt.
#[derive(Debug, Clone)]
pub struct ParsedPrompt {
    pub intent: TaskIntent,
    /// `Record A:` field map (lowercased field names).
    pub record_a: BTreeMap<String, String>,
    /// `Record B:` field map.
    pub record_b: BTreeMap<String, String>,
    /// Labeled in-context examples: `(text, label)` pairs.
    pub examples: Vec<(String, bool)>,
    /// The free-text payload (passage to tag / product to impute / text to
    /// summarize), from a `Text:` / `Product:` / `Passage:` section.
    pub payload: String,
    /// True when the prompt pins the output format ("answer yes or no",
    /// "answer with only the manufacturer name").
    pub format_pinned: bool,
    /// `Language: xx` hint, if present.
    pub language_hint: Option<String>,
    /// `Candidates:` list (closed vocabulary for imputation).
    pub candidates: Vec<String>,
}

/// Parse a prompt.
pub fn parse(prompt: &str) -> ParsedPrompt {
    let lower = prompt.to_lowercase();
    let intent = detect_intent(&lower);

    let mut record_a = BTreeMap::new();
    let mut record_b = BTreeMap::new();
    let mut examples = Vec::new();
    let mut payload = String::new();
    let mut language_hint = None;
    let mut candidates = Vec::new();

    for line in prompt.lines() {
        let trimmed = line.trim();
        let lower_line = trimmed.to_lowercase();
        if let Some(rest) = strip_prefix_ci(trimmed, "record a:") {
            record_a = parse_fields(rest);
        } else if let Some(rest) = strip_prefix_ci(trimmed, "record b:") {
            record_b = parse_fields(rest);
        } else if let Some(rest) = strip_prefix_ci(trimmed, "example:") {
            if let Some(ex) = parse_example(rest) {
                examples.push(ex);
            }
        } else if let Some(rest) = strip_prefix_ci(trimmed, "text:")
            .or_else(|| strip_prefix_ci(trimmed, "passage:"))
            .or_else(|| strip_prefix_ci(trimmed, "product:"))
        {
            if !payload.is_empty() {
                payload.push('\n');
            }
            payload.push_str(rest.trim());
        } else if let Some(rest) = strip_prefix_ci(trimmed, "language:") {
            language_hint = Some(rest.trim().to_lowercase());
        } else if let Some(rest) = strip_prefix_ci(trimmed, "candidates:") {
            candidates =
                rest.split(',').map(|c| c.trim().to_string()).filter(|c| !c.is_empty()).collect();
        } else if lower_line.starts_with("continue:") {
            // Multi-line payload continuation.
            if !payload.is_empty() {
                payload.push(' ');
            }
            payload.push_str(trimmed["continue:".len()..].trim());
        }
    }

    let format_pinned = lower.contains("answer yes or no")
        || lower.contains("answer with only")
        || lower.contains("respond with exactly")
        || lower.contains("output only");

    ParsedPrompt {
        intent,
        record_a,
        record_b,
        examples,
        payload,
        format_pinned,
        language_hint,
        candidates,
    }
}

fn detect_intent(lower: &str) -> TaskIntent {
    // Order matters: more specific cues first.
    if lower.contains("person name")
        || lower.contains("names of people")
        || lower.contains("extract all names")
    {
        TaskIntent::TagNames
    } else if lower.contains("what language")
        || lower.contains("identify the language")
        || lower.contains("detect the language")
    {
        TaskIntent::DetectLanguage
    } else if lower.contains("schema matching")
        || lower.contains("match the columns")
        || lower.contains("corresponding column")
    {
        // Checked before imputation: column *names* often contain words like
        // "manufacturer" that would otherwise hijack the routing.
        TaskIntent::SchemaMatch
    } else if lower.contains("manufacturer")
        || lower.contains("impute")
        || lower.contains("fill in the missing")
        || lower.contains("missing value")
    {
        TaskIntent::Impute
    } else if lower.contains("same entity")
        || lower.contains("entities are equivalent")
        || lower.contains("refer to the same")
        || lower.contains("entity resolution")
        || lower.contains("duplicates")
    {
        TaskIntent::EntityMatch
    } else if lower.contains("summarize") || lower.contains("summary of") {
        TaskIntent::Summarize
    } else {
        TaskIntent::Unknown
    }
}

fn strip_prefix_ci<'a>(line: &'a str, prefix: &str) -> Option<&'a str> {
    // `get` returns None when the cut lands inside a multi-byte character,
    // which also means the prefix cannot match ASCII-insensitively.
    let head = line.get(..prefix.len())?;
    if head.eq_ignore_ascii_case(prefix) {
        Some(&line[prefix.len()..])
    } else {
        None
    }
}

/// Parse `name: Hoppy Badger; brewery: Stonegate Brewing; abv: 5.2%`.
pub fn parse_fields(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for part in text.split(';') {
        if let Some((key, value)) = part.split_once(':') {
            let key = key.trim().to_lowercase();
            if !key.is_empty() {
                out.insert(key, value.trim().to_string());
            }
        }
    }
    out
}

/// Parse `<text> => yes` / `<text> => no`.
fn parse_example(text: &str) -> Option<(String, bool)> {
    let (body, label) = text.rsplit_once("=>")?;
    let label = match label.trim().to_lowercase().as_str() {
        "yes" | "true" | "match" => true,
        "no" | "false" | "non-match" => false,
        _ => return None,
    };
    Some((body.trim().to_string(), label))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_entity_match_intent() {
        let p = parse(
            "Please determine if the following two records refer to the same entity.\n\
             Record A: name: Hoppy Badger; brewery: Stonegate Brewing\n\
             Record B: name: hoppy badgr; brewery: Stonegate\n\
             Answer yes or no.",
        );
        assert_eq!(p.intent, TaskIntent::EntityMatch);
        assert_eq!(p.record_a.get("name").unwrap(), "Hoppy Badger");
        assert_eq!(p.record_b.get("brewery").unwrap(), "Stonegate");
        assert!(p.format_pinned);
    }

    #[test]
    fn detects_impute_intent_with_candidates() {
        let p = parse(
            "Fill in the missing manufacturer for this product.\n\
             Product: name: PlayStation 2 Memory Card; description: 8MB storage\n\
             Candidates: Sony, Microsoft, Nintendo\n\
             Answer with only the manufacturer name.",
        );
        assert_eq!(p.intent, TaskIntent::Impute);
        assert!(p.payload.contains("PlayStation"));
        assert_eq!(p.candidates, vec!["Sony", "Microsoft", "Nintendo"]);
        assert!(p.format_pinned);
    }

    #[test]
    fn detects_tagging_and_language_hints() {
        let p = parse(
            "Extract all person names from the passage.\n\
             Language: fr\n\
             Passage: Hier, Jean Dupont a rencontré le conseil.",
        );
        assert_eq!(p.intent, TaskIntent::TagNames);
        assert_eq!(p.language_hint.as_deref(), Some("fr"));
        assert!(p.payload.contains("Jean Dupont"));
    }

    #[test]
    fn parses_examples() {
        let p = parse(
            "Are these records the same entity?\n\
             Example: a vs a' => yes\n\
             Example: a vs b => no\n\
             Example: garbage line\n\
             Record A: name: x\nRecord B: name: y",
        );
        assert_eq!(p.examples.len(), 2);
        assert_eq!(p.examples[0], ("a vs a'".to_string(), true));
        assert_eq!(p.examples[1], ("a vs b".to_string(), false));
    }

    #[test]
    fn unknown_intent_is_unknown() {
        assert_eq!(parse("Tell me a joke about databases.").intent, TaskIntent::Unknown);
    }

    #[test]
    fn detect_language_intent() {
        assert_eq!(
            parse("What language is this text? Text: hallo welt").intent,
            TaskIntent::DetectLanguage
        );
    }

    #[test]
    fn summarize_and_schema_match() {
        assert_eq!(parse("Summarize the following. Text: abc").intent, TaskIntent::Summarize);
        assert_eq!(
            parse("Match the columns of table A to table B.").intent,
            TaskIntent::SchemaMatch
        );
    }

    #[test]
    fn field_parsing_handles_noise() {
        let fields = parse_fields(" name : A B ; empty ;brewery: C ");
        assert_eq!(fields.get("name").unwrap(), "A B");
        assert_eq!(fields.get("brewery").unwrap(), "C");
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn multiline_payload_continuation() {
        let p = parse("Summarize.\nText: first part\nContinue: second part");
        assert_eq!(p.payload, "first part second part");
    }
}
