//! The simulated LLM's knowledge base: a calibrated subset of the world.
//!
//! Construction draws deterministic "does the model know this?" coin flips
//! per fact, keyed by `(seed, fact)`, so knowledge is stable across calls —
//! the model either knows a beer or it doesn't, every time it is asked.

use crate::calibration::Calibration;
use lingua_dataset::world::{Language, WorldSpec};
use lingua_ml::features::fxhash;
use lingua_ml::textsim;
use std::collections::{BTreeMap, BTreeSet};

/// Which entity universe a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityDomain {
    Beer,
    Restaurant,
    Song,
}

/// One entity the model knows, with normalized match keys.
#[derive(Debug, Clone)]
struct KbEntity {
    id: u64,
    /// Normalized primary key text (beer name / restaurant name / song title).
    primary: String,
    /// Normalized secondary key text (brewery / city+addr / artist).
    secondary: String,
}

/// Per-language name knowledge.
#[derive(Debug, Clone, Default)]
struct NameKnowledge {
    given: BTreeSet<String>,
    surnames: BTreeSet<String>,
}

/// The knowledge base.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    beers: Vec<KbEntity>,
    restaurants: Vec<KbEntity>,
    songs: Vec<KbEntity>,
    /// Known product-line → manufacturer facts (lowercased line).
    line_owners: BTreeMap<String, String>,
    /// The full manufacturer vocabulary (brand names are common knowledge).
    manufacturers: Vec<String>,
    names: BTreeMap<Language, NameKnowledge>,
    function_words: BTreeMap<Language, BTreeSet<String>>,
    /// Known non-person proper nouns (places, orgs) across languages.
    distractors: BTreeSet<String>,
}

fn normalize(text: &str) -> String {
    textsim::tokens(text).join(" ")
}

/// Stable pseudo-random draw in [0,1) for a `(seed, key)` pair.
fn stable_draw(seed: u64, key: &str) -> f64 {
    let h = fxhash(format!("{seed}:{key}").as_bytes());
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl KnowledgeBase {
    /// Build the knowledge base from a world, keeping each fact with its
    /// calibrated coverage probability.
    pub fn from_world(world: &WorldSpec, calibration: &Calibration, seed: u64) -> KnowledgeBase {
        let beers = world
            .beers
            .iter()
            .filter(|b| {
                stable_draw(seed, &format!("beer:{}:{}", b.brewery, b.name))
                    < calibration.beer_entity_coverage
            })
            .map(|b| KbEntity {
                id: b.id,
                primary: normalize(&b.name),
                secondary: normalize(&b.brewery),
            })
            .collect();
        let restaurants = world
            .restaurants
            .iter()
            .filter(|r| {
                stable_draw(seed, &format!("rest:{}:{}", r.name, r.city))
                    < calibration.restaurant_entity_coverage
            })
            .map(|r| KbEntity {
                id: r.id,
                primary: normalize(&r.name),
                secondary: normalize(&format!("{} {}", r.addr, r.city)),
            })
            .collect();
        let songs = world
            .songs
            .iter()
            .filter(|s| {
                stable_draw(seed, &format!("song:{}:{}", s.artist, s.title))
                    < calibration.song_entity_coverage
            })
            .map(|s| KbEntity {
                id: s.id,
                primary: normalize(&s.title),
                secondary: normalize(&s.artist),
            })
            .collect();

        let line_owners = world
            .product_line_owners
            .iter()
            .filter(|(line, _)| {
                stable_draw(seed, &format!("line:{line}")) < calibration.product_line_coverage
            })
            .map(|(line, owner)| (line.clone(), owner.clone()))
            .collect();

        let mut manufacturers: Vec<String> = world
            .product_line_owners
            .values()
            .cloned()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        manufacturers.sort_by_key(|m| std::cmp::Reverse(m.len()));

        let mut names = BTreeMap::new();
        let mut function_words = BTreeMap::new();
        let mut distractors = BTreeSet::new();
        for (lang, lexicon) in &world.lexicons {
            let coverage = match lang {
                Language::English => calibration.name_coverage_english,
                Language::Chinese | Language::Japanese => calibration.name_coverage_cjk,
                _ => calibration.name_coverage_latin,
            };
            let knowledge = NameKnowledge {
                given: lexicon
                    .given_names
                    .iter()
                    .filter(|n| stable_draw(seed, &format!("given:{}:{n}", lang.code())) < coverage)
                    .cloned()
                    .collect(),
                surnames: lexicon
                    .surnames
                    .iter()
                    .filter(|n| {
                        stable_draw(seed, &format!("surname:{}:{n}", lang.code())) < coverage
                    })
                    .cloned()
                    .collect(),
            };
            names.insert(*lang, knowledge);
            function_words.insert(*lang, lexicon.function_words.iter().cloned().collect());
            distractors.extend(lexicon.distractors.iter().cloned());
        }

        KnowledgeBase {
            beers,
            restaurants,
            songs,
            line_owners,
            manufacturers,
            names,
            function_words,
            distractors,
        }
    }

    fn entities(&self, domain: EntityDomain) -> &[KbEntity] {
        match domain {
            EntityDomain::Beer => &self.beers,
            EntityDomain::Restaurant => &self.restaurants,
            EntityDomain::Song => &self.songs,
        }
    }

    /// How many entities the model knows in a domain.
    pub fn known_count(&self, domain: EntityDomain) -> usize {
        self.entities(domain).len()
    }

    /// Try to resolve a (possibly corrupted) record to a known entity.
    ///
    /// Scores every known entity by a weighted fuzzy similarity over the
    /// primary and secondary keys; resolves only with a confident, unambiguous
    /// top match. Returns the ground-truth entity id.
    pub fn resolve(&self, domain: EntityDomain, primary: &str, secondary: &str) -> Option<u64> {
        let primary = normalize(primary);
        let secondary = normalize(secondary);
        if primary.is_empty() {
            return None;
        }
        let mut best: Option<(f64, u64)> = None;
        let mut second_best = 0.0f64;
        for entity in self.entities(domain) {
            // Token-aligned similarity: each token must find a close partner.
            // Character-level measures (Jaro-Winkler) are too lenient here —
            // shared adjectives ("Howling X" vs "Howling Y") score ~0.9.
            let p = textsim::monge_elkan(&primary, &entity.primary)
                .max(textsim::monge_elkan(&entity.primary, &primary));
            // Both keys must individually be plausible: a same-named entity
            // from a clearly different secondary context (brewery / artist /
            // address) is *not* a recall of this entity.
            if p < 0.88 {
                continue;
            }
            let s = if secondary.is_empty() {
                0.7 // neutral-ish when the record lacks the secondary field
            } else {
                textsim::monge_elkan(&secondary, &entity.secondary)
                    .max(textsim::monge_elkan(&entity.secondary, &secondary))
            };
            if s < 0.80 {
                continue;
            }
            let score = 0.65 * p + 0.35 * s;
            match best {
                Some((b, _)) if score <= b => {
                    if score > second_best {
                        second_best = score;
                    }
                }
                _ => {
                    if let Some((b, _)) = best {
                        second_best = b;
                    }
                    best = Some((score, entity.id));
                }
            }
        }
        let (score, id) = best?;
        (score > 0.86 && score - second_best > 0.03).then_some(id)
    }

    /// Compare a (possibly corrupted) record against one *specific* known
    /// entity: "I know Hoppy Badger by Stonegate — does this record describe
    /// it?". Returns `None` when the entity id is not in the knowledge base.
    ///
    /// This anchored comparison is much stronger than pairwise text
    /// similarity: the canonical form is clean, so damage on the query only
    /// has to survive one direction.
    pub fn matches_known(
        &self,
        domain: EntityDomain,
        id: u64,
        primary: &str,
        secondary: &str,
    ) -> Option<bool> {
        let entity = self.entities(domain).iter().find(|e| e.id == id)?;
        let primary = normalize(primary);
        let secondary = normalize(secondary);
        if primary.is_empty() {
            return None;
        }
        let p = textsim::monge_elkan(&primary, &entity.primary)
            .max(textsim::monge_elkan(&entity.primary, &primary));
        let s = if secondary.is_empty() {
            0.75
        } else {
            textsim::monge_elkan(&secondary, &entity.secondary)
                .max(textsim::monge_elkan(&entity.secondary, &secondary))
        };
        Some(p >= 0.80 && s >= 0.70)
    }

    /// Known manufacturer appearing verbatim (case-insensitive) in the text.
    pub fn manufacturer_in_text(&self, text: &str) -> Option<&str> {
        let lowered = text.to_lowercase();
        self.manufacturers
            .iter()
            .find(|m| contains_word(&lowered, &m.to_lowercase()))
            .map(|s| s.as_str())
    }

    /// Known product line contained in the text → its manufacturer.
    /// Longest matching line wins.
    pub fn line_owner_in_text(&self, text: &str) -> Option<&str> {
        let lowered = text.to_lowercase();
        self.line_owners
            .iter()
            .filter(|(line, _)| lowered.contains(line.as_str()))
            .max_by_key(|(line, _)| line.len())
            .map(|(_, owner)| owner.as_str())
    }

    /// The manufacturer vocabulary (all brands; sorted longest-first).
    pub fn manufacturers(&self) -> &[String] {
        &self.manufacturers
    }

    /// Does the model recognize `token` as a given name in `language`?
    pub fn knows_given_name(&self, language: Language, token: &str) -> bool {
        self.names.get(&language).map(|n| n.given.contains(token)).unwrap_or(false)
    }

    /// Does the model recognize `token` as a surname in `language`?
    pub fn knows_surname(&self, language: Language, token: &str) -> bool {
        self.names.get(&language).map(|n| n.surnames.contains(token)).unwrap_or(false)
    }

    /// Is this capitalized token a known non-person proper noun?
    pub fn is_known_place_or_org(&self, token: &str) -> bool {
        self.distractors.contains(token)
    }

    /// Detect a text's language by counting per-language function words.
    /// Returns the best language and its margin over the runner-up (0 when
    /// nothing matched at all).
    pub fn detect_language(&self, text: &str) -> (Language, f64) {
        let tokens = textsim::tokens(text);
        let mut scores: Vec<(Language, f64)> = self
            .function_words
            .iter()
            .map(|(lang, words)| {
                let hits = tokens.iter().filter(|t| words.contains(t.as_str())).count();
                (*lang, hits as f64)
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let (best, best_score) = scores[0];
        let second = scores.get(1).map(|s| s.1).unwrap_or(0.0);
        if best_score == 0.0 {
            (Language::English, 0.0)
        } else {
            (best, (best_score - second) / best_score.max(1.0))
        }
    }
}

/// Word-boundary-ish containment: `needle` appears and is not glued to
/// alphanumeric neighbours.
fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok =
            abs == 0 || !haystack[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric());
        let after = abs + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..].chars().next().is_some_and(|c| c.is_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len().max(1);
        if start >= haystack.len() {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> (WorldSpec, KnowledgeBase) {
        let world = WorldSpec::generate(11);
        let kb = KnowledgeBase::from_world(&world, &Calibration::default(), 7);
        (world, kb)
    }

    #[test]
    fn coverage_is_roughly_calibrated() {
        let (world, kb) = kb();
        let cal = Calibration::default();
        let frac = kb.known_count(EntityDomain::Beer) as f64 / world.beers.len() as f64;
        assert!((frac - cal.beer_entity_coverage).abs() < 0.08, "beer coverage {frac}");
        let frac = kb.known_count(EntityDomain::Restaurant) as f64 / world.restaurants.len() as f64;
        assert!((frac - cal.restaurant_entity_coverage).abs() < 0.08, "restaurant coverage {frac}");
    }

    #[test]
    fn knowledge_is_deterministic() {
        let world = WorldSpec::generate(11);
        let a = KnowledgeBase::from_world(&world, &Calibration::default(), 7);
        let b = KnowledgeBase::from_world(&world, &Calibration::default(), 7);
        assert_eq!(a.known_count(EntityDomain::Song), b.known_count(EntityDomain::Song));
        // Different seed → different subset (with overwhelming probability).
        let c = KnowledgeBase::from_world(&world, &Calibration::default(), 8);
        let same = a.known_count(EntityDomain::Beer) == c.known_count(EntityDomain::Beer);
        // Counts may coincide, but membership rarely does; check via resolve
        // disagreement on at least one beer.
        let mut disagreements = 0;
        for beer in world.beers.iter().take(50) {
            let ra = a.resolve(EntityDomain::Beer, &beer.name, &beer.brewery);
            let rc = c.resolve(EntityDomain::Beer, &beer.name, &beer.brewery);
            if ra != rc {
                disagreements += 1;
            }
        }
        assert!(disagreements > 0 || !same);
    }

    #[test]
    fn resolve_finds_known_entities_despite_noise() {
        let (world, kb) = kb();
        let mut hits = 0;
        let mut misresolved = 0;
        let mut attempts = 0;
        for beer in &world.beers {
            if let Some(id) = kb.resolve(EntityDomain::Beer, &beer.name, &beer.brewery) {
                if id == beer.id {
                    hits += 1;
                } else {
                    // A same-named beer from a similar brewery can win when
                    // the true one is outside the knowledge base — realistic
                    // entity confusion, but it must stay rare.
                    misresolved += 1;
                }
            }
            attempts += 1;
        }
        // Roughly the coverage fraction resolves correctly.
        let coverage = Calibration::default().beer_entity_coverage;
        let rate = hits as f64 / attempts as f64;
        assert!((rate - coverage).abs() < 0.12, "resolve rate {rate} vs coverage {coverage}");
        assert!(
            (misresolved as f64) < 0.08 * attempts as f64,
            "too many misresolutions: {misresolved}/{attempts}"
        );
    }

    #[test]
    fn resolve_rejects_unknown_text() {
        let (_, kb) = kb();
        assert_eq!(kb.resolve(EntityDomain::Beer, "completely unheard of brew", "nowhere"), None);
        assert_eq!(kb.resolve(EntityDomain::Beer, "", ""), None);
    }

    #[test]
    fn manufacturer_and_line_lookup() {
        let (world, kb) = kb();
        // A product with the brand in its name.
        let in_name = world
            .products
            .iter()
            .find(|p| p.mention == lingua_dataset::world::BrandMention::InName)
            .unwrap();
        assert_eq!(kb.manufacturer_in_text(&in_name.name), Some(in_name.manufacturer.as_str()));
        // Line lookup returns the right owner for known lines.
        let mut known_line_hits = 0;
        for p in &world.products {
            if let Some(owner) = kb.line_owner_in_text(&p.name) {
                assert_eq!(owner, p.manufacturer, "line owner mismatch for {}", p.name);
                known_line_hits += 1;
            }
        }
        assert!(known_line_hits > 0);
    }

    #[test]
    fn contains_word_requires_boundaries() {
        assert!(contains_word("the sony card", "sony"));
        assert!(!contains_word("thesonycard", "sony"));
        assert!(contains_word("sony", "sony"));
        assert!(!contains_word("sonya smith", "sony"));
    }

    #[test]
    fn language_detection_works_per_language() {
        let (world, kb) = kb();
        use lingua_dataset::generators::names::{generate, NamesConfig};
        for lang in Language::ALL {
            let config =
                NamesConfig { passages: 6, language_mix: vec![(lang, 1.0)], sentences: (2, 3) };
            let corpus = generate(&world, &config, 3);
            let correct = corpus.iter().filter(|p| kb.detect_language(&p.text).0 == lang).count();
            assert!(correct >= 5, "{lang:?}: {correct}/6 detected");
        }
    }

    #[test]
    fn name_knowledge_respects_language() {
        let (_, kb) = kb();
        // English lexicon coverage is high, so most English names are known.
        let mut known = 0;
        for n in ["James", "Mary", "Robert", "Patricia", "John", "Jennifer"] {
            if kb.knows_given_name(Language::English, n) {
                known += 1;
            }
        }
        assert!(known >= 5, "english given-name knowledge too low: {known}/6");
        // A German surname is not English knowledge.
        assert!(!kb.knows_surname(Language::English, "Müller"));
    }

    #[test]
    fn distractors_are_known_places() {
        let (_, kb) = kb();
        assert!(kb.is_known_place_or_org("London"));
        assert!(kb.is_known_place_or_org("Paris"));
        assert!(!kb.is_known_place_or_org("James"));
    }
}
