//! LLM code generation: emits real MangaScript programs.
//!
//! Given a [`CodeGenSpec`] (task description + hints), the generator picks a
//! program template, instantiates it, and — with the calibrated bug rate —
//! injects one bug from a catalogue of realistic LLM coding mistakes. The
//! `lingua-core` Validator then executes the program on example test cases;
//! real failures come back here as [`suggest_fix`] / [`repair`] calls,
//! closing the paper's §3.2 validation cycle with genuine program execution
//! at every step.

use crate::calibration::Calibration;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The program templates the simulated LLM can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Case-preserving tokenizer (`process(text) -> [token]`).
    Tokenizer,
    /// Capitalized-run noun-phrase extractor with an inline English stoplist
    /// (`process(tokens) -> [phrase]`).
    NounPhraseExtractor,
    /// Multilingual variant: takes `{"tokens": [...], "language": "fr"}` and
    /// fetches stopwords via `call_tool("stopwords", language)`.
    MultilingualNounPhraseExtractor,
    /// Rule-based manufacturer imputation with an LLM fallback for hard cases
    /// (`process({"name": ..., "description": ...}) -> brand`) — Figure 4.
    ManufacturerRules,
    /// Similarity-threshold record matcher
    /// (`process({"a": {...}, "b": {...}}) -> bool`).
    ThresholdMatcher,
    /// Whitespace/case normalizer for a single value (`process(value)`).
    FieldCleaner,
    /// Fallback for unrecognized tasks.
    Identity,
}

impl TemplateKind {
    /// Pick the template for a natural-language task description + hints.
    pub fn detect(task: &str, hints: &[String]) -> TemplateKind {
        let lower = task.to_lowercase();
        let multilingual = hints.iter().any(|h| h.contains("multilingual"))
            || lower.contains("multilingual")
            || lower.contains("multiple languages");
        if lower.contains("tokeniz") || lower.contains("split the text into words") {
            TemplateKind::Tokenizer
        } else if lower.contains("noun phrase")
            || lower.contains("noun-phrase")
            || lower.contains("candidate phrases")
            || lower.contains("capitalized")
        {
            if multilingual {
                TemplateKind::MultilingualNounPhraseExtractor
            } else {
                TemplateKind::NounPhraseExtractor
            }
        } else if lower.contains("manufacturer") || lower.contains("impute") {
            TemplateKind::ManufacturerRules
        } else if lower.contains("same entity")
            || lower.contains("match") && lower.contains("record")
            || lower.contains("entity resolution")
            || lower.contains("duplicate")
        {
            TemplateKind::ThresholdMatcher
        } else if lower.contains("clean") || lower.contains("normalize") || lower.contains("trim") {
            TemplateKind::FieldCleaner
        } else {
            TemplateKind::Identity
        }
    }
}

/// The catalogue of injectable bugs — each a realistic LLM coding slip that
/// produces a *behavioural* failure the Validator can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugKind {
    /// Forgot to lowercase before a dictionary/substring lookup.
    MissingLowercase,
    /// Off-by-one in an index bound (crashes or drops the last element).
    OffByOne,
    /// Wrong comparison (e.g. `> 1` instead of `> 0`) dropping edge items.
    WrongComparison,
    /// No null guard on the input (crashes on missing data).
    MissingNullCheck,
    /// Stopword list truncated to a stub (leaks function words).
    TruncatedStopwords,
    /// `return` placed inside the loop (only the first result survives).
    EagerReturn,
    /// Decision threshold far too lax.
    LaxThreshold,
}

impl BugKind {
    /// Bugs that can be injected into each template.
    pub fn applicable(template: TemplateKind) -> &'static [BugKind] {
        use BugKind::*;
        match template {
            TemplateKind::Tokenizer => &[OffByOne, WrongComparison, MissingNullCheck],
            TemplateKind::NounPhraseExtractor => {
                &[MissingLowercase, TruncatedStopwords, EagerReturn]
            }
            TemplateKind::MultilingualNounPhraseExtractor => &[MissingLowercase, EagerReturn],
            TemplateKind::ManufacturerRules => &[MissingLowercase, MissingNullCheck],
            TemplateKind::ThresholdMatcher => &[LaxThreshold, MissingLowercase],
            TemplateKind::FieldCleaner => &[MissingNullCheck],
            TemplateKind::Identity => &[],
        }
    }
}

/// What the user (or the compiler) asks the LLM to implement.
#[derive(Debug, Clone, Default)]
pub struct CodeGenSpec {
    /// Natural-language task description.
    pub task: String,
    /// Entry-point function name the embedding module will call.
    pub function_name: String,
    /// Extra context: tool names, domain instructions, "multilingual", ...
    pub hints: Vec<String>,
}

/// A generated program plus generation metadata (the metadata is *not*
/// consumed by the Validator — it validates behaviourally — but is recorded
/// for experiment introspection).
#[derive(Debug, Clone)]
pub struct GeneratedCode {
    pub source: String,
    pub template: TemplateKind,
    pub bug: Option<BugKind>,
}

/// Generate a (possibly buggy) program for the spec.
pub fn generate(spec: &CodeGenSpec, calibration: &Calibration, rng: &mut StdRng) -> GeneratedCode {
    let template = TemplateKind::detect(&spec.task, &spec.hints);
    let candidates = BugKind::applicable(template);
    let bug = if !candidates.is_empty() && rng.gen_bool(calibration.codegen_bug_rate) {
        Some(candidates[rng.gen_range(0..candidates.len())])
    } else {
        None
    };
    GeneratedCode { source: render(template, spec, bug), template, bug }
}

/// Produce a fix suggestion by *reading the code* for bug signatures —
/// the first LLM call of the paper's validation cycle ("generate the
/// suggestion by reading the code and the failure cases").
pub fn suggest_fix(source: &str, failures: &[String]) -> String {
    let mut suggestions = Vec::new();
    if source.contains("contains(stop, t)") && !source.contains("contains(stop, lower(t))") {
        suggestions.push(
            "The stopword lookup compares the raw token against a lowercase list; \
             lowercase the token before the lookup.",
        );
    }
    if source.contains("contains(text, brand)") {
        suggestions.push(
            "The brand is matched case-sensitively against lowercased text; lowercase the brand.",
        );
    }
    if source.contains("range(start, end - 1)") || source.contains("range(0, len(cs) - 1)") {
        suggestions.push("The index range excludes the final element; the bound is off by one.");
    }
    if source.contains("len(t) > 1") {
        suggestions.push("Single-character tokens are dropped; the length check should be `> 0`.");
    }
    if !source.contains("is_null(") && failures.iter().any(|f| f.to_lowercase().contains("null")) {
        suggestions.push("The input is not checked for null; add a null guard at the top.");
    }
    // The injected eager return sits one level deeper than any legitimate one.
    if source.contains("\n            return out;") {
        suggestions.push(
            "A `return` statement inside the loop ends processing after the first result; \
             move it after the loop.",
        );
    }
    if source.contains(">= 0.5;") {
        suggestions.push("The match threshold 0.5 accepts far too many pairs; raise it.");
    }
    if source.contains("let stop = [\"the\", \"of\", \"a\"];") {
        suggestions.push("The stopword list is a stub; include the full function-word list.");
    }
    if suggestions.is_empty() {
        format!(
            "Re-examine the {} failing case(s); trace the function on the first failure and \
             compare each intermediate value with the expectation.",
            failures.len()
        )
    } else {
        suggestions.join(" ")
    }
}

/// Regenerate the program after a failed validation, given the suggestion.
/// With the calibrated success rate the bug is removed; otherwise a new
/// attempt (possibly buggy in a different way) is produced.
pub fn repair(
    spec: &CodeGenSpec,
    calibration: &Calibration,
    previous: &GeneratedCode,
    _suggestion: &str,
    rng: &mut StdRng,
) -> GeneratedCode {
    if rng.gen_bool(calibration.repair_success_rate) {
        GeneratedCode {
            source: render(previous.template, spec, None),
            template: previous.template,
            bug: None,
        }
    } else {
        // A fresh roll of the dice — the repair may introduce a new bug.
        let candidates = BugKind::applicable(previous.template);
        let bug = if !candidates.is_empty() && rng.gen_bool(0.5) {
            Some(candidates[rng.gen_range(0..candidates.len())])
        } else {
            None
        };
        GeneratedCode {
            source: render(previous.template, spec, bug),
            template: previous.template,
            bug,
        }
    }
}

// ---------------------------------------------------------------------------
// Template rendering
// ---------------------------------------------------------------------------

fn render(template: TemplateKind, spec: &CodeGenSpec, bug: Option<BugKind>) -> String {
    let entry = if spec.function_name.is_empty() { "process" } else { &spec.function_name };
    match template {
        TemplateKind::Tokenizer => tokenizer(entry, bug),
        TemplateKind::NounPhraseExtractor => noun_phrases(entry, bug, false),
        TemplateKind::MultilingualNounPhraseExtractor => noun_phrases(entry, bug, true),
        TemplateKind::ManufacturerRules => manufacturer_rules(entry, bug),
        TemplateKind::ThresholdMatcher => threshold_matcher(entry, bug),
        TemplateKind::FieldCleaner => field_cleaner(entry, bug),
        TemplateKind::Identity => format!("fn {entry}(x) {{\n    return x;\n}}\n"),
    }
}

fn tokenizer(entry: &str, bug: Option<BugKind>) -> String {
    let null_guard = if bug == Some(BugKind::MissingNullCheck) {
        ""
    } else {
        "    if is_null(text) { return []; }\n"
    };
    let min_len = if bug == Some(BugKind::WrongComparison) { 1 } else { 0 };
    let trim_end =
        if bug == Some(BugKind::OffByOne) { "range(start, end - 1)" } else { "range(start, end)" };
    format!(
        r#"fn {entry}(text) {{
{null_guard}    let out = [];
    for w in split(text, "") {{
        let t = strip_punct(w);
        if len(t) > {min_len} {{
            push(out, t);
        }}
    }}
    return out;
}}

fn strip_punct(w) {{
    let cs = chars(w);
    let start = 0;
    let end = len(cs);
    while start < end && !(is_alpha(cs[start]) || is_digit(cs[start])) {{
        start = start + 1;
    }}
    while end > start && !(is_alpha(cs[end - 1]) || is_digit(cs[end - 1])) {{
        end = end - 1;
    }}
    let out = "";
    for i in {trim_end} {{
        out = out + cs[i];
    }}
    return out;
}}
"#
    )
}

fn noun_phrases(entry: &str, bug: Option<BugKind>, multilingual: bool) -> String {
    let stoplist = if bug == Some(BugKind::TruncatedStopwords) {
        r#"["the", "of", "a"]"#.to_string()
    } else {
        r#"["the", "a", "an", "of", "to", "in", "on", "at", "by", "for", "and", "or",
        "during", "yesterday", "according", "this", "that", "with", "from"]"#
            .to_string()
    };
    let lookup = if bug == Some(BugKind::MissingLowercase) {
        "contains(stop, t)"
    } else {
        "contains(stop, lower(t))"
    };
    let eager_return =
        if bug == Some(BugKind::EagerReturn) { "\n            return out;" } else { "" };
    let (signature, stop_init) = if multilingual {
        (
            format!("fn {entry}(input) {{\n    let tokens = input[\"tokens\"];\n    let language = get_or(input, \"language\", \"en\");\n    let stop = call_tool(\"stopwords\", language);"),
            String::new(),
        )
    } else {
        (format!("fn {entry}(tokens) {{\n    let stop = {stoplist};"), String::new())
    };
    format!(
        r#"{signature}{stop_init}
    let out = [];
    let current = [];
    for t in tokens {{
        if is_upper(t) && !{lookup} {{
            push(current, t);
        }} else {{
            if len(current) > 0 {{
                push(out, join(current, " "));
                current = [];
            }}{eager_return}
        }}
    }}
    if len(current) > 0 {{
        push(out, join(current, " "));
    }}
    return out;
}}
"#
    )
}

fn manufacturer_rules(entry: &str, bug: Option<BugKind>) -> String {
    let null_guard = if bug == Some(BugKind::MissingNullCheck) {
        ""
    } else {
        "    if is_null(product) { return null; }\n"
    };
    let brand_check = if bug == Some(BugKind::MissingLowercase) {
        "contains(text, brand)"
    } else {
        "contains(text, lower(brand))"
    };
    format!(
        r#"fn {entry}(product) {{
{null_guard}    let name = get_or(product, "name", "");
    let desc = get_or(product, "description", "");
    let text = lower(name + " " + desc);
    for brand in call_tool("vocabulary") {{
        if {brand_check} {{
            return brand;
        }}
    }}
    let answer = call_llm("Fill in the missing manufacturer for this product." +
        "\nProduct: " + name + " - " + desc +
        "\nAnswer with only the manufacturer name.");
    return call_tool("normalize_brand", answer);
}}
"#
    )
}

fn threshold_matcher(entry: &str, bug: Option<BugKind>) -> String {
    let threshold = if bug == Some(BugKind::LaxThreshold) { "0.5" } else { "0.78" };
    let (va, vb) = if bug == Some(BugKind::MissingLowercase) {
        ("to_str(get_or(a, k, \"\"))", "to_str(get_or(b, k, \"\"))")
    } else {
        ("lower(to_str(get_or(a, k, \"\")))", "lower(to_str(get_or(b, k, \"\")))")
    };
    format!(
        r#"fn {entry}(pair) {{
    let a = pair["a"];
    let b = pair["b"];
    let total = 0.0;
    let count = 0;
    for k in a {{
        let va = {va};
        let vb = {vb};
        if len(va) > 0 && len(vb) > 0 {{
            let sim = max(jaro_winkler(va, vb), overlap(va, vb));
            total = total + sim;
            count = count + 1;
        }}
    }}
    if count == 0 {{
        return false;
    }}
    return total / count >= {threshold};
}}
"#
    )
}

fn field_cleaner(entry: &str, bug: Option<BugKind>) -> String {
    let null_guard = if bug == Some(BugKind::MissingNullCheck) {
        ""
    } else {
        "    if is_null(value) { return null; }\n"
    };
    format!(
        r#"fn {entry}(value) {{
{null_guard}    let s = trim(to_str(value));
    let out = "";
    let prev_space = false;
    for c in s {{
        if c == " " {{
            if !prev_space {{
                out = out + c;
            }}
            prev_space = true;
        }} else {{
            out = out + c;
            prev_space = false;
        }}
    }}
    return out;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_script::{parse, Interpreter, NoHost, Value};
    use rand::SeedableRng;

    fn spec(task: &str) -> CodeGenSpec {
        CodeGenSpec { task: task.into(), function_name: "process".into(), hints: vec![] }
    }

    #[test]
    fn template_detection() {
        assert_eq!(TemplateKind::detect("tokenize the text", &[]), TemplateKind::Tokenizer);
        assert_eq!(
            TemplateKind::detect("extract noun phrases", &[]),
            TemplateKind::NounPhraseExtractor
        );
        assert_eq!(
            TemplateKind::detect("extract noun phrases", &["multilingual".into()]),
            TemplateKind::MultilingualNounPhraseExtractor
        );
        assert_eq!(
            TemplateKind::detect("impute the missing manufacturer", &[]),
            TemplateKind::ManufacturerRules
        );
        assert_eq!(
            TemplateKind::detect("decide if two records are the same entity", &[]),
            TemplateKind::ThresholdMatcher
        );
        assert_eq!(TemplateKind::detect("clean the value", &[]), TemplateKind::FieldCleaner);
        assert_eq!(TemplateKind::detect("do something odd", &[]), TemplateKind::Identity);
    }

    #[test]
    fn every_template_variant_parses() {
        let s = spec("x");
        for template in [
            TemplateKind::Tokenizer,
            TemplateKind::NounPhraseExtractor,
            TemplateKind::MultilingualNounPhraseExtractor,
            TemplateKind::ManufacturerRules,
            TemplateKind::ThresholdMatcher,
            TemplateKind::FieldCleaner,
            TemplateKind::Identity,
        ] {
            for bug in
                std::iter::once(None).chain(BugKind::applicable(template).iter().map(|b| Some(*b)))
            {
                let source = render(template, &s, bug);
                parse(&source).unwrap_or_else(|e| {
                    panic!("template {template:?} bug {bug:?} failed to parse: {e}\n{source}")
                });
            }
        }
    }

    #[test]
    fn clean_tokenizer_works() {
        let code = render(TemplateKind::Tokenizer, &spec("tokenize"), None);
        let program = parse(&code).unwrap();
        let mut interp = Interpreter::new(&program);
        let result = interp
            .call(&mut NoHost, "process", vec![Value::Str("Hello, world! A fine day.".into())])
            .unwrap();
        let tokens: Vec<String> =
            result.as_list().unwrap().iter().map(|v| v.as_str().unwrap().to_string()).collect();
        assert_eq!(tokens, vec!["Hello", "world", "A", "fine", "day"]);
        // Null guard works.
        let result = interp.call(&mut NoHost, "process", vec![Value::Null]).unwrap();
        assert_eq!(result, Value::List(vec![]));
    }

    #[test]
    fn buggy_tokenizer_variants_fail_observably() {
        // MissingNullCheck: crashes on null input.
        let code =
            render(TemplateKind::Tokenizer, &spec("tokenize"), Some(BugKind::MissingNullCheck));
        let program = parse(&code).unwrap();
        let err = Interpreter::new(&program).call(&mut NoHost, "process", vec![Value::Null]);
        assert!(err.is_err());
        // WrongComparison: drops single-character tokens.
        let code =
            render(TemplateKind::Tokenizer, &spec("tokenize"), Some(BugKind::WrongComparison));
        let program = parse(&code).unwrap();
        let result = Interpreter::new(&program)
            .call(&mut NoHost, "process", vec![Value::Str("I saw a cat".into())])
            .unwrap();
        let tokens = result.as_list().unwrap().len();
        assert_eq!(tokens, 2, "single-char tokens should be dropped by the bug");
        // OffByOne: last character of every token lost.
        let code = render(TemplateKind::Tokenizer, &spec("tokenize"), Some(BugKind::OffByOne));
        let program = parse(&code).unwrap();
        let result = Interpreter::new(&program)
            .call(&mut NoHost, "process", vec![Value::Str("hello".into())])
            .unwrap();
        assert_eq!(result, Value::List(vec![Value::Str("hell".into())]));
    }

    #[test]
    fn clean_noun_phrase_extractor_groups_capitalized_runs() {
        let code = render(TemplateKind::NounPhraseExtractor, &spec("noun phrases"), None);
        let program = parse(&code).unwrap();
        let tokens: Vec<Value> =
            ["Yesterday", "John", "Smith", "met", "the", "board", "of", "Acme", "Corp"]
                .iter()
                .map(|s| Value::Str(s.to_string()))
                .collect();
        let result = Interpreter::new(&program)
            .call(&mut NoHost, "process", vec![Value::List(tokens)])
            .unwrap();
        let phrases: Vec<&str> =
            result.as_list().unwrap().iter().map(|v| v.as_str().unwrap()).collect();
        assert_eq!(phrases, vec!["John Smith", "Acme Corp"]);
    }

    #[test]
    fn truncated_stopwords_leak_function_words() {
        let code = render(
            TemplateKind::NounPhraseExtractor,
            &spec("noun phrases"),
            Some(BugKind::TruncatedStopwords),
        );
        let program = parse(&code).unwrap();
        let tokens: Vec<Value> = ["Yesterday", "John", "Smith", "spoke"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let result = Interpreter::new(&program)
            .call(&mut NoHost, "process", vec![Value::List(tokens)])
            .unwrap();
        let phrases: Vec<&str> =
            result.as_list().unwrap().iter().map(|v| v.as_str().unwrap()).collect();
        // "Yesterday" leaks into the phrase because the stub stoplist misses it.
        assert_eq!(phrases, vec!["Yesterday John Smith"]);
    }

    #[test]
    fn eager_return_stops_after_first_phrase() {
        let code = render(
            TemplateKind::NounPhraseExtractor,
            &spec("noun phrases"),
            Some(BugKind::EagerReturn),
        );
        let program = parse(&code).unwrap();
        let tokens: Vec<Value> = ["John", "Smith", "met", "Mary", "Brown"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let result = Interpreter::new(&program)
            .call(&mut NoHost, "process", vec![Value::List(tokens)])
            .unwrap();
        assert_eq!(result.as_list().unwrap().len(), 1);
    }

    #[test]
    fn suggestions_identify_injected_bugs() {
        let s = spec("extract noun phrases");
        for bug in BugKind::applicable(TemplateKind::NounPhraseExtractor) {
            let code = render(TemplateKind::NounPhraseExtractor, &s, Some(*bug));
            let suggestion = suggest_fix(&code, &["case 1 failed".into()]);
            assert!(
                !suggestion.starts_with("Re-examine"),
                "no targeted suggestion for {bug:?}: {suggestion}"
            );
        }
        // Clean code gets the generic suggestion.
        let clean = render(TemplateKind::NounPhraseExtractor, &s, None);
        assert!(suggest_fix(&clean, &["x".into()]).starts_with("Re-examine"));
    }

    #[test]
    fn generation_respects_bug_rate_and_repair_converges() {
        let cal = Calibration::default();
        let s = spec("tokenize the text");
        let mut buggy = 0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let code = generate(&s, &cal, &mut rng);
            if code.bug.is_some() {
                buggy += 1;
            }
        }
        let rate = buggy as f64 / 200.0;
        assert!((rate - cal.codegen_bug_rate).abs() < 0.1, "bug rate {rate}");

        // Repair loop converges quickly.
        let mut rng = StdRng::seed_from_u64(42);
        let mut code = GeneratedCode {
            source: render(TemplateKind::Tokenizer, &s, Some(BugKind::OffByOne)),
            template: TemplateKind::Tokenizer,
            bug: Some(BugKind::OffByOne),
        };
        let mut rounds = 0;
        while code.bug.is_some() && rounds < 10 {
            let suggestion = suggest_fix(&code.source, &["fail".into()]);
            code = repair(&s, &cal, &code, &suggestion, &mut rng);
            rounds += 1;
        }
        assert!(code.bug.is_none(), "repair failed to converge in {rounds} rounds");
        assert!(rounds <= 5);
    }

    #[test]
    fn custom_entry_point_name_is_used() {
        let s = CodeGenSpec {
            task: "tokenize".into(),
            function_name: "my_tokenizer".into(),
            hints: vec![],
        };
        let code = render(TemplateKind::Tokenizer, &s, None);
        assert!(code.contains("fn my_tokenizer(text)"));
        parse(&code).unwrap();
    }
}
