//! Schema matching: align the columns of two tables — one of the core data
//! integration tasks from the paper's introduction (Data Tamer's problem).
//! The LLM module proposes the alignment; evaluation is against known
//! renamings.

use lingua_core::ExecContext;
use lingua_llm_sim::CompletionRequest;

/// A proposed column alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMatch {
    pub left: String,
    pub right: String,
}

/// Ask the LLM to match two column lists.
pub fn match_schemas(left: &[String], right: &[String], ctx: &mut ExecContext) -> Vec<ColumnMatch> {
    let prompt = format!(
        "Perform schema matching between the tables.\nColumns A: {}\nColumns B: {}",
        left.join(", "),
        right.join(", ")
    );
    let response = ctx.llm.complete(&CompletionRequest::new(prompt));
    parse_alignment(&response)
}

/// Parse `a -> x; b -> y` responses.
pub fn parse_alignment(response: &str) -> Vec<ColumnMatch> {
    response
        .split(';')
        .filter_map(|pair| {
            let (left, right) = pair.split_once("->")?;
            Some(ColumnMatch { left: left.trim().to_string(), right: right.trim().to_string() })
        })
        .collect()
}

/// Score proposals against gold `(left, right)` pairs: (precision, recall, f1).
pub fn score(proposed: &[ColumnMatch], gold: &[(String, String)]) -> (f64, f64, f64) {
    let tp =
        proposed.iter().filter(|m| gold.iter().any(|(l, r)| *l == m.left && *r == m.right)).count();
    let precision = if proposed.is_empty() { 0.0 } else { tp as f64 / proposed.len() as f64 };
    let recall = if gold.is_empty() { 0.0 } else { tp as f64 / gold.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn matches_renamed_product_schema() {
        let world = WorldSpec::generate(44);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 44)));
        let left: Vec<String> =
            ["product_name", "maker", "cost", "details"].iter().map(|s| s.to_string()).collect();
        let right: Vec<String> = ["name", "manufacturer", "price_usd", "description"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let proposed = match_schemas(&left, &right, &mut ctx);
        let gold: Vec<(String, String)> = vec![
            ("product_name".into(), "name".into()),
            ("maker".into(), "manufacturer".into()),
            ("cost".into(), "price_usd".into()),
            ("details".into(), "description".into()),
        ];
        let (precision, recall, f1) = score(&proposed, &gold);
        assert!(f1 > 0.7, "p={precision} r={recall} f1={f1}: {proposed:?}");
    }

    #[test]
    fn parse_alignment_handles_noise() {
        let matches = parse_alignment("a -> x; garbage; b -> y");
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[1], ColumnMatch { left: "b".into(), right: "y".into() });
        assert!(parse_alignment("no matches here").is_empty());
    }

    #[test]
    fn score_degenerate_cases() {
        assert_eq!(score(&[], &[]), (0.0, 0.0, 0.0));
        let proposed = vec![ColumnMatch { left: "a".into(), right: "b".into() }];
        assert_eq!(score(&proposed, &[]).1, 0.0);
    }
}
