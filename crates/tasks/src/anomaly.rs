//! Anomaly detection over numeric columns — another of the introduction's
//! "extra tasks", implemented as a built-in custom module: robust z-scores
//! (median / MAD) flag outlying cells.

use lingua_dataset::Table;

/// One flagged cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    pub row: usize,
    pub column: String,
    pub value: f64,
    /// Robust z-score magnitude.
    pub score: f64,
}

/// Detect numeric outliers in `column` with |robust z| above `threshold`.
pub fn detect_numeric(
    table: &Table,
    column: &str,
    threshold: f64,
) -> Result<Vec<Anomaly>, lingua_dataset::DataError> {
    let values = table.column(column)?;
    let numeric: Vec<(usize, f64)> =
        values.iter().enumerate().filter_map(|(i, v)| v.as_f64().map(|x| (i, x))).collect();
    if numeric.len() < 4 {
        return Ok(vec![]);
    }
    let mut sorted: Vec<f64> = numeric.iter().map(|(_, x)| *x).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let mut deviations: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = deviations[deviations.len() / 2].max(1e-9);
    // 1.4826 makes MAD comparable to a standard deviation under normality.
    let scale = 1.4826 * mad;

    Ok(numeric
        .into_iter()
        .filter_map(|(row, value)| {
            let score = ((value - median) / scale).abs();
            (score > threshold).then(|| Anomaly { row, column: column.to_string(), value, score })
        })
        .collect())
}

/// Scan every column that holds numbers; returns anomalies across columns.
pub fn detect_all(table: &Table, threshold: f64) -> Vec<Anomaly> {
    let mut out = Vec::new();
    for name in table.schema().names() {
        if let Ok(mut found) = detect_numeric(table, name, threshold) {
            out.append(&mut found);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::csv;

    fn table() -> Table {
        csv::read_str("prices", "name,price\na,10.0\nb,11.0\nc,9.5\nd,10.5\ne,9.9\nf,999.0\n")
            .unwrap()
    }

    #[test]
    fn flags_the_outlier() {
        let anomalies = detect_numeric(&table(), "price", 5.0).unwrap();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].row, 5);
        assert_eq!(anomalies[0].value, 999.0);
        assert!(anomalies[0].score > 5.0);
    }

    #[test]
    fn clean_data_has_no_anomalies() {
        let t = csv::read_str("t", "x\n1.0\n1.1\n0.9\n1.05\n0.95\n").unwrap();
        assert!(detect_numeric(&t, "x", 6.0).unwrap().is_empty());
    }

    #[test]
    fn too_few_points_returns_empty() {
        let t = csv::read_str("t", "x\n1\n2\n").unwrap();
        assert!(detect_numeric(&t, "x", 3.0).unwrap().is_empty());
    }

    #[test]
    fn non_numeric_columns_are_skipped_by_detect_all() {
        let anomalies = detect_all(&table(), 5.0);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].column, "price");
    }

    #[test]
    fn constant_column_with_one_jump() {
        let t = csv::read_str("t", "x\n5\n5\n5\n5\n5\n100\n").unwrap();
        let anomalies = detect_numeric(&t, "x", 3.0).unwrap();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].value, 100.0);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(detect_numeric(&table(), "nope", 3.0).is_err());
    }

    #[test]
    fn nulls_are_ignored() {
        let t = csv::read_str("t", "x\n1\n\n1.2\n0.8\n1.1\n50\n").unwrap();
        let anomalies = detect_numeric(&t, "x", 3.0).unwrap();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].value, 50.0);
        // Row indices refer to the original table, nulls included.
        assert_eq!(anomalies[0].row, 5);
    }
}
