//! Token blocking: the classic quadratic-blowup killer for full-table
//! deduplication. Candidate pairs are generated only for records sharing a
//! (non-stopword-ish) token in a chosen key column; everything else is
//! pruned without any matcher call — which is what keeps the LLM bill sane
//! when a pipeline runs over whole tables instead of pre-paired benchmarks.

use lingua_dataset::Table;
use lingua_ml::textsim::tokens;
use std::collections::BTreeMap;

/// Candidate pair generation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingStats {
    pub total_pairs: usize,
    pub candidate_pairs: usize,
}

impl BlockingStats {
    /// Fraction of the full cross-product pruned away.
    pub fn reduction_ratio(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        1.0 - self.candidate_pairs as f64 / self.total_pairs as f64
    }
}

/// Generate candidate row-index pairs for deduplicating `table`, blocking on
/// shared tokens of `key_column`. Tokens occurring in more than
/// `max_block_size` rows are considered stop-tokens and skipped.
pub fn token_blocking(
    table: &Table,
    key_column: &str,
    max_block_size: usize,
) -> Result<(Vec<(usize, usize)>, BlockingStats), lingua_dataset::DataError> {
    let column = table.column(key_column)?;
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (row, value) in column.iter().enumerate() {
        for token in tokens(&value.render()) {
            blocks.entry(token).or_default().push(row);
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    for rows in blocks.values() {
        if rows.len() > max_block_size {
            continue; // stop-token block
        }
        for (i, &a) in rows.iter().enumerate() {
            for &b in &rows[i + 1..] {
                if seen.insert((a, b)) {
                    pairs.push((a, b));
                }
            }
        }
    }
    let n = table.len();
    let stats =
        BlockingStats { total_pairs: n * n.saturating_sub(1) / 2, candidate_pairs: pairs.len() };
    Ok((pairs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::csv;

    fn table() -> Table {
        csv::read_str(
            "beers",
            "beer_name,brewery\n\
             Hoppy Badger,Stonegate\n\
             Hoppy Badgr,Stonegate\n\
             Golden Lantern,Riverbend\n\
             Golden Lantern Ale,Riverbend\n\
             Midnight Anvil,Halfmoon\n",
        )
        .unwrap()
    }

    #[test]
    fn blocking_keeps_shared_token_pairs() {
        let (pairs, stats) = token_blocking(&table(), "beer_name", 10).unwrap();
        // (0,1) share "hoppy"; (2,3) share "golden"/"lantern"; row 4 is alone.
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 3)));
        assert!(!pairs.iter().any(|&(a, b)| a == 4 || b == 4));
        assert_eq!(stats.total_pairs, 10);
        assert!(stats.candidate_pairs < stats.total_pairs);
        assert!(stats.reduction_ratio() > 0.5);
    }

    #[test]
    fn stop_tokens_are_skipped() {
        let t = csv::read_str(
            "t",
            "name\nale house one\nale house two\nale house three\nale house four\n",
        )
        .unwrap();
        // Every row shares "ale" and "house": with max_block_size 3 those
        // blocks are skipped, leaving no candidates.
        let (pairs, _) = token_blocking(&t, "name", 3).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn pairs_are_deduplicated_across_blocks() {
        let (pairs, _) = token_blocking(&table(), "beer_name", 10).unwrap();
        let mut sorted = pairs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pairs.len());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(token_blocking(&table(), "nope", 10).is_err());
    }
}
