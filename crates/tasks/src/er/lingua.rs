//! The Lingua Manga entity-resolution solution (§4.1): the template's LLM
//! module with a handful of in-context examples drawn from the (tiny) labeled
//! budget, yes/no output validation with one strict retry, and optional
//! simulator wrapping for cost reduction. This is the "Lingua Manga" column
//! of Table 1 — label-efficient (a few examples vs Ditto's hundreds) yet
//! close to the supervised ceiling.

use crate::er::PairMatcher;
use lingua_core::modules::{LlmModule, Module, PromptBuilder};
use lingua_core::optimizer::{Simulated, SimulatorConfig, StudentKind};
use lingua_core::validation::OutputValidator;
use lingua_core::{Data, ExecContext};
use lingua_dataset::labels::LabeledPair;
use lingua_dataset::{Record, Schema};

/// Configuration for the Lingua Manga matcher.
#[derive(Debug, Clone)]
pub struct LinguaErConfig {
    /// In-context examples taken from the labeled pool (half positive, half
    /// negative where possible). The paper's point: *a few* labels suffice.
    pub examples: usize,
    /// Wrap the LLM module in the Simulator for cost reduction.
    pub simulate: bool,
}

impl Default for LinguaErConfig {
    fn default() -> Self {
        LinguaErConfig { examples: 4, simulate: false }
    }
}

/// The Lingua Manga matcher: a (possibly simulator-wrapped) LLM module.
pub struct LinguaMatcher {
    module: Box<dyn Module>,
}

impl LinguaMatcher {
    /// Build from a labeled example pool (only `config.examples` of them are
    /// actually used — label efficiency is the point).
    pub fn build(
        schema: &Schema,
        example_pool: &[LabeledPair],
        config: &LinguaErConfig,
    ) -> LinguaMatcher {
        let examples = select_examples(schema, example_pool, config.examples);
        let llm_module = LlmModule::new(
            "entity_resolution",
            PromptBuilder::PairJudgment {
                description:
                    "Please determine if the following two records refer to the same entity.".into(),
                examples,
            },
            OutputValidator::YesNo,
        );
        let module: Box<dyn Module> = if config.simulate {
            Box::new(Simulated::new(
                Box::new(llm_module),
                StudentKind::Binary,
                SimulatorConfig::default(),
            ))
        } else {
            Box::new(llm_module)
        };
        LinguaMatcher { module }
    }

    /// Access the simulator statistics when built with `simulate: true`.
    pub fn module(&self) -> &dyn Module {
        self.module.as_ref()
    }
}

/// Pick a balanced handful of *informative* in-context examples: the
/// borderline ones — hardest negatives (most similar non-matches) and hardest
/// positives (most damaged matches). This is the curation a user does when
/// "providing optional input and output specifications through examples"
/// (§4.1); borderline examples calibrate the model's decision boundary far
/// better than easy ones.
fn select_examples(schema: &Schema, pool: &[LabeledPair], count: usize) -> Vec<(String, bool)> {
    use lingua_llm_sim::behaviors::entity_match::pair_score;
    let score = |p: &LabeledPair| -> f64 {
        let to_map = |r: &Record| -> std::collections::BTreeMap<String, String> {
            r.iter().enumerate().map(|(i, v)| (schema.name(i).to_lowercase(), v.render())).collect()
        };
        pair_score(&to_map(&p.left), &to_map(&p.right), true)
    };
    let mut positives: Vec<&LabeledPair> = pool.iter().filter(|p| p.label).collect();
    let mut negatives: Vec<&LabeledPair> = pool.iter().filter(|p| !p.label).collect();
    // Hardest positives: lowest similarity. Hardest negatives: highest.
    positives.sort_by(|a, b| score(a).partial_cmp(&score(b)).unwrap());
    negatives.sort_by(|a, b| score(b).partial_cmp(&score(a)).unwrap());
    let half = count / 2;
    positives
        .into_iter()
        .take(count - half)
        .chain(negatives.into_iter().take(half))
        .map(|p| {
            (format!("A: {} | B: {}", p.left.describe(schema), p.right.describe(schema)), p.label)
        })
        .collect()
}

impl PairMatcher for LinguaMatcher {
    fn name(&self) -> &str {
        "lingua_manga"
    }

    fn predict(
        &mut self,
        schema: &Schema,
        left: &Record,
        right: &Record,
        ctx: &mut ExecContext,
    ) -> bool {
        let input = Data::map([
            ("a".to_string(), Data::Str(left.describe(schema))),
            ("b".to_string(), Data::Str(right.describe(schema))),
        ]);
        match self.module.invoke(input, ctx) {
            Ok(Data::Bool(b)) => b,
            // Unvalidatable answers default to "no" (conservative).
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::evaluate;
    use crate::er::fms::FmsMatcher;
    use lingua_dataset::generators::er::{generate, ErDataset};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn lingua_beats_fms_on_every_dataset() {
        // Averaged over seeds: single splits are small (91-190 test pairs)
        // and individual F1s are noisy.
        for dataset in ErDataset::ALL {
            let (mut sum_lingua, mut sum_fms) = (0.0, 0.0);
            for seed in 0..3u64 {
                let world = WorldSpec::generate(26 + seed);
                let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 26 + seed)));
                let split = generate(&world, dataset, 11 + seed);
                let mut lingua =
                    LinguaMatcher::build(&split.schema, &split.train, &LinguaErConfig::default());
                sum_lingua += evaluate(&mut lingua, &split, &mut ctx).f1();
                sum_fms += evaluate(&mut FmsMatcher, &split, &mut ctx).f1();
            }
            assert!(
                sum_lingua > sum_fms,
                "{}: lingua {} vs fms {} (sums over 3 seeds)",
                dataset.name(),
                sum_lingua / 3.0,
                sum_fms / 3.0
            );
        }
    }

    #[test]
    fn examples_are_balanced_when_possible() {
        let world = WorldSpec::generate(27);
        let split = generate(&world, ErDataset::FodorsZagats, 3);
        let examples = select_examples(&split.schema, &split.train, 4);
        assert_eq!(examples.len(), 4);
        assert_eq!(examples.iter().filter(|(_, y)| *y).count(), 2);
    }

    #[test]
    fn label_budget_is_respected() {
        // Only `examples` labels are consumed from the pool, not hundreds.
        let world = WorldSpec::generate(28);
        let split = generate(&world, ErDataset::BeerAdvoRateBeer, 3);
        let examples = select_examples(&split.schema, &split.train, 6);
        assert!(examples.len() <= 6);
    }
}
