//! The FMs baseline ("Can Foundation Models Wrangle Your Data?", Narayan et
//! al.): prompt the LLM naively — no in-context examples, no output-format
//! pin, and a first-token answer parser. Exactly the configuration whose
//! brittleness Table 1 exposes (65.9 F1 on iTunes-Amazon).

use crate::er::PairMatcher;
use lingua_core::ExecContext;
use lingua_dataset::{Record, Schema};
use lingua_llm_sim::noise::parse_bool_naive;
use lingua_llm_sim::CompletionRequest;

/// The zero-shot prompt-only matcher.
pub struct FmsMatcher;

impl FmsMatcher {
    /// The naive prompt: note the *absence* of examples and of
    /// "Answer yes or no."
    pub fn prompt(schema: &Schema, left: &Record, right: &Record) -> String {
        format!(
            "Please determine if the following two records refer to the same entity.\n\
             Record A: {}\nRecord B: {}",
            left.describe(schema),
            right.describe(schema)
        )
    }
}

impl PairMatcher for FmsMatcher {
    fn name(&self) -> &str {
        "fms"
    }

    fn predict(
        &mut self,
        schema: &Schema,
        left: &Record,
        right: &Record,
        ctx: &mut ExecContext,
    ) -> bool {
        let prompt = FmsMatcher::prompt(schema, left, right);
        let response = ctx.llm.complete(&CompletionRequest::new(prompt));
        parse_bool_naive(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::evaluate;
    use lingua_dataset::generators::er::{generate, ErDataset};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn fms_runs_and_spends_one_call_per_pair() {
        let world = WorldSpec::generate(25);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 25)));
        let split = generate(&world, ErDataset::BeerAdvoRateBeer, 3);
        let mut matcher = FmsMatcher;
        let confusion = evaluate(&mut matcher, &split, &mut ctx);
        assert_eq!(confusion.total(), split.test.len());
        assert_eq!(ctx.llm.usage().calls, split.test.len() as u64);
        // It works at all (well above chance)...
        assert!(confusion.f1() > 0.4, "f1 {}", confusion.f1());
    }

    #[test]
    fn prompt_has_no_format_pin() {
        let schema = Schema::of_names(["beer_name"]);
        let r = Record::new(vec![lingua_dataset::Value::from("x")]);
        let prompt = FmsMatcher::prompt(&schema, &r, &r);
        assert!(!prompt.to_lowercase().contains("answer yes or no"));
        assert!(!prompt.contains("Example:"));
    }
}
