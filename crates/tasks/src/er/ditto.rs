//! Simulated Ditto: the "fine-tuned pre-trained LM" matcher of Table 1 —
//! played here by a logistic-regression matcher over a *rich* similarity
//! feature set, with validation-tuned decision threshold and simple data
//! augmentation (the real Ditto's key tricks: richer representations, more
//! labels, augmentation).

use crate::er::{record_fields, PairMatcher};
use lingua_core::ExecContext;
use lingua_dataset::labels::PairSplit;
use lingua_dataset::{Record, Schema};
use lingua_ml::features::{rich_pair_features, Standardizer};
use lingua_ml::logreg::{tune_threshold, LogReg, LogRegConfig};
use lingua_ml::Example;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A trained Ditto-style matcher.
pub struct DittoMatcher {
    model: LogReg,
    standardizer: Standardizer,
    threshold: f64,
}

impl DittoMatcher {
    /// Train on the split's train pairs (with augmentation), tuning the
    /// threshold on the validation pairs.
    pub fn train(split: &PairSplit, seed: u64) -> DittoMatcher {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd177);
        let mut raw: Vec<(Vec<String>, Vec<String>, bool)> = split
            .train
            .iter()
            .map(|p| (record_fields(&p.left), record_fields(&p.right), p.label))
            .collect();

        // Augmentation: swapped sides (symmetry) and self-pairs (identity).
        let swapped: Vec<_> = raw.iter().map(|(l, r, y)| (r.clone(), l.clone(), *y)).collect();
        raw.extend(swapped);
        for pair in split.train.iter().choose_multiple(&mut rng, split.train.len() / 4) {
            let fields = record_fields(&pair.left);
            raw.push((fields.clone(), fields, true));
        }

        let features: Vec<Vec<f64>> =
            raw.iter().map(|(l, r, _)| rich_pair_features(l, r)).collect();
        let standardizer = Standardizer::fit(&features);
        let examples: Vec<Example> = features
            .into_iter()
            .zip(&raw)
            .map(|(f, (_, _, y))| Example::new(standardizer.transform(&f), usize::from(*y)))
            .collect();
        assert!(!examples.is_empty(), "ditto needs labeled pairs");
        let model = LogReg::train(
            &examples,
            &LogRegConfig { epochs: 120, learning_rate: 0.5, seed, ..Default::default() },
        );

        // Threshold tuning on the validation split.
        let valid: Vec<Example> = split
            .valid
            .iter()
            .map(|p| {
                let f = rich_pair_features(&record_fields(&p.left), &record_fields(&p.right));
                Example::new(standardizer.transform(&f), usize::from(p.label))
            })
            .collect();
        let threshold = if valid.is_empty() { 0.5 } else { tune_threshold(&model, &valid) };
        DittoMatcher { model, standardizer, threshold }
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl PairMatcher for DittoMatcher {
    fn name(&self) -> &str {
        "ditto"
    }

    fn predict(
        &mut self,
        _schema: &Schema,
        left: &Record,
        right: &Record,
        _ctx: &mut ExecContext,
    ) -> bool {
        let features = rich_pair_features(&record_fields(left), &record_fields(right));
        self.model.predict_at(&self.standardizer.transform(&features), self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::evaluate;
    use crate::er::magellan::MagellanMatcher;
    use lingua_dataset::generators::er::{generate, ErDataset};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn ditto_is_strong_across_datasets() {
        let world = WorldSpec::generate(22);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 22)));
        for dataset in ErDataset::ALL {
            let split = generate(&world, dataset, 7);
            let mut ditto = DittoMatcher::train(&split, 0);
            let confusion = evaluate(&mut ditto, &split, &mut ctx);
            assert!(confusion.f1() > 0.80, "{}: f1 {}", dataset.name(), confusion.f1());
        }
    }

    #[test]
    fn ditto_at_least_matches_magellan_on_the_hard_dataset() {
        let world = WorldSpec::generate(23);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 23)));
        let split = generate(&world, ErDataset::ItunesAmazon, 9);
        let mut ditto = DittoMatcher::train(&split, 0);
        let mut magellan = MagellanMatcher::train(&split, 0);
        let f1_ditto = evaluate(&mut ditto, &split, &mut ctx).f1();
        let f1_magellan = evaluate(&mut magellan, &split, &mut ctx).f1();
        assert!(f1_ditto >= f1_magellan - 0.03, "ditto {f1_ditto} vs magellan {f1_magellan}");
    }

    #[test]
    fn threshold_is_tuned_within_range() {
        let world = WorldSpec::generate(24);
        let split = generate(&world, ErDataset::BeerAdvoRateBeer, 3);
        let ditto = DittoMatcher::train(&split, 0);
        assert!((0.05..=0.95).contains(&ditto.threshold()));
    }
}
