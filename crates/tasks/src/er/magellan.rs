//! Simulated Magellan: the classic-ML entity matcher — a random forest over
//! hand-crafted string-similarity features, trained on the labeled split.
//! Plays the "Magellan" column of Table 1.

use crate::er::{record_fields, PairMatcher};
use lingua_core::ExecContext;
use lingua_dataset::labels::PairSplit;
use lingua_dataset::{Record, Schema};
use lingua_ml::features::pair_features;
use lingua_ml::forest::{ForestConfig, RandomForest};
use lingua_ml::Example;

/// A trained Magellan-style matcher.
pub struct MagellanMatcher {
    forest: RandomForest,
}

impl MagellanMatcher {
    /// Train on the split's train+valid pairs.
    pub fn train(split: &PairSplit, seed: u64) -> MagellanMatcher {
        let examples: Vec<Example> = split
            .train
            .iter()
            .chain(&split.valid)
            .map(|pair| {
                Example::new(
                    pair_features(&record_fields(&pair.left), &record_fields(&pair.right)),
                    usize::from(pair.label),
                )
            })
            .collect();
        assert!(!examples.is_empty(), "magellan needs labeled pairs");
        let forest = RandomForest::train(
            &examples,
            &ForestConfig { n_trees: 30, seed, ..Default::default() },
        );
        MagellanMatcher { forest }
    }
}

impl PairMatcher for MagellanMatcher {
    fn name(&self) -> &str {
        "magellan"
    }

    fn predict(
        &mut self,
        _schema: &Schema,
        left: &Record,
        right: &Record,
        _ctx: &mut ExecContext,
    ) -> bool {
        let features = pair_features(&record_fields(left), &record_fields(right));
        self.forest.predict_proba(&features) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::evaluate;
    use lingua_dataset::generators::er::{generate, ErDataset};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn magellan_learns_fodors_zagats_well() {
        let world = WorldSpec::generate(21);
        let split = generate(&world, ErDataset::FodorsZagats, 7);
        let mut matcher = MagellanMatcher::train(&split, 0);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 21)));
        let confusion = evaluate(&mut matcher, &split, &mut ctx);
        assert!(confusion.f1() > 0.85, "f1 {}", confusion.f1());
        // No LLM involvement at all.
        assert_eq!(ctx.llm.usage().calls, 0);
    }

    #[test]
    #[should_panic(expected = "labeled pairs")]
    fn empty_split_panics() {
        let split = PairSplit::from_fractions(Schema::of_names(["a"]), vec![], 0.6, 0.2);
        MagellanMatcher::train(&split, 0);
    }
}
