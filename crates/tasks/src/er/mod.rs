//! Entity resolution: the Table-1 benchmark harness and its four methods.

pub mod blocking;
pub mod ditto;
pub mod fms;
pub mod lingua;
pub mod magellan;

use lingua_core::ExecContext;
use lingua_dataset::labels::{LabeledPair, PairSplit};
use lingua_dataset::{Record, Schema};
use lingua_ml::metrics::Confusion;

/// A record-pair matcher under evaluation.
pub trait PairMatcher {
    fn name(&self) -> &str;
    /// Decide whether the pair refers to the same entity.
    fn predict(
        &mut self,
        schema: &Schema,
        left: &Record,
        right: &Record,
        ctx: &mut ExecContext,
    ) -> bool;
}

/// Render a record's cells as strings, aligned with the schema.
pub fn record_fields(record: &Record) -> Vec<String> {
    record.iter().map(|v| v.render()).collect()
}

/// Evaluate a matcher on the test split.
pub fn evaluate(
    matcher: &mut dyn PairMatcher,
    split: &PairSplit,
    ctx: &mut ExecContext,
) -> Confusion {
    evaluate_on(matcher, &split.schema, &split.test, ctx)
}

/// Evaluate a matcher on an explicit pair list.
pub fn evaluate_on(
    matcher: &mut dyn PairMatcher,
    schema: &Schema,
    pairs: &[LabeledPair],
    ctx: &mut ExecContext,
) -> Confusion {
    let mut confusion = Confusion::default();
    for pair in pairs {
        let predicted = matcher.predict(schema, &pair.left, &pair.right, ctx);
        confusion.add(predicted, pair.label);
    }
    confusion
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::world::WorldSpec;
    use lingua_dataset::Value;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    struct AlwaysYes;
    impl PairMatcher for AlwaysYes {
        fn name(&self) -> &str {
            "always_yes"
        }
        fn predict(&mut self, _: &Schema, _: &Record, _: &Record, _: &mut ExecContext) -> bool {
            true
        }
    }

    #[test]
    fn evaluate_counts_correctly() {
        let world = WorldSpec::generate(1);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 1)));
        let schema = Schema::of_names(["x"]);
        let pairs = vec![
            LabeledPair {
                left_entity: 0,
                right_entity: 0,
                left: Record::new(vec![Value::Int(1)]),
                right: Record::new(vec![Value::Int(1)]),
                label: true,
            },
            LabeledPair {
                left_entity: 0,
                right_entity: 1,
                left: Record::new(vec![Value::Int(1)]),
                right: Record::new(vec![Value::Int(2)]),
                label: false,
            },
        ];
        let confusion = evaluate_on(&mut AlwaysYes, &schema, &pairs, &mut ctx);
        assert_eq!(confusion.tp, 1);
        assert_eq!(confusion.fp, 1);
        assert_eq!(confusion.recall(), 1.0);
    }

    #[test]
    fn record_fields_renders_nulls_empty() {
        let record = Record::new(vec![Value::Str("a".into()), Value::Null]);
        assert_eq!(record_fields(&record), vec!["a".to_string(), String::new()]);
    }
}
