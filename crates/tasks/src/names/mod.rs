//! Multilingual name extraction (§4.2, Figure 3).
//!
//! The domain expert's pipeline: tokenize (LLMGC) → noun-phrase extraction
//! (LLMGC) → tagging (LLM module). The monolingual build assumes English and
//! degrades badly on multilingual passages; the fix — an LLM language-
//! detection module plus multilingual tools for the generated extractor and a
//! language hint for the tagger — restores accuracy. The tagger can further
//! be wrapped in the Simulator to slash LLM calls.

pub mod pipeline;

pub use pipeline::{NameExtractionConfig, NameExtractionPipeline, NameExtractionScore};
