//! The three-operator name-extraction pipeline and its evaluation harness.

use lingua_core::modules::{LlmModule, LlmgcModule, Module, PromptBuilder};
use lingua_core::optimizer::{
    Simulated, SimulatorConfig, StudentKind, TestCase, ValidationOutcome, Validator,
};
use lingua_core::tools::stopwords_tool_from_world;
use lingua_core::validation::OutputValidator;
use lingua_core::{CoreError, Data, ExecContext};
use lingua_dataset::generators::names::Passage;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::CodeGenSpec;

/// Pipeline construction options.
#[derive(Debug, Clone, Default)]
pub struct NameExtractionConfig {
    /// §4.2's fix: language detection + multilingual tools + tagger hints.
    pub multilingual: bool,
    /// Wrap the tagger in the Simulator for cost reduction.
    pub simulate_tagger: bool,
}

/// Micro-averaged extraction scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NameExtractionScore {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub llm_calls: u64,
}

/// The assembled pipeline.
pub struct NameExtractionPipeline {
    tokenizer: LlmgcModule,
    extractor: LlmgcModule,
    tagger: Box<dyn Module>,
    langdetect: Option<LlmModule>,
    multilingual: bool,
}

impl NameExtractionPipeline {
    /// Generate and validate the pipeline's modules. For the multilingual
    /// build, the `stopwords` tool must be available — register it with
    /// [`register_tools`] first.
    pub fn build(
        ctx: &mut ExecContext,
        config: &NameExtractionConfig,
    ) -> Result<NameExtractionPipeline, CoreError> {
        // 1. Tokenizer (LLMGC + validator).
        let tokenizer_spec = CodeGenSpec {
            task: "tokenize the text into words".into(),
            function_name: "process".into(),
            hints: vec![],
        };
        let mut tokenizer = LlmgcModule::generate("tokenize", tokenizer_spec, ctx)?;
        let validator = Validator::new(tokenizer_cases()).with_budgets(4, 2);
        let report = validator.validate_and_fix(&mut tokenizer, ctx)?;
        if report.outcome != ValidationOutcome::Passed {
            return Err(CoreError::ValidationExhausted {
                module: "tokenize".into(),
                cycles: report.cycles,
                regenerations: report.regenerations,
            });
        }

        // 2. Noun-phrase extractor (LLMGC + validator; multilingual variant
        //    pulls stopwords from the tool registry per language).
        let extractor_spec = CodeGenSpec {
            task: "extract noun phrases: group consecutive capitalized tokens".into(),
            function_name: "process".into(),
            hints: if config.multilingual {
                vec!["multilingual".into(), "tool:stopwords".into()]
            } else {
                vec![]
            },
        };
        let mut extractor = LlmgcModule::generate("extract_noun_phrases", extractor_spec, ctx)?;
        let validator = Validator::new(extractor_cases(config.multilingual)).with_budgets(4, 2);
        let report = validator.validate_and_fix(&mut extractor, ctx)?;
        if report.outcome != ValidationOutcome::Passed {
            return Err(CoreError::ValidationExhausted {
                module: "extract_noun_phrases".into(),
                cycles: report.cycles,
                regenerations: report.regenerations,
            });
        }

        // 3. Tagger (LLM module; language-hinted when multilingual).
        let template = if config.multilingual {
            "Is the following phrase a person name?\nLanguage: {language}\nText: {phrase}"
        } else {
            "Is the following phrase a person name?\nText: {phrase}"
        };
        let tagger_module = LlmModule::new(
            "tag_names",
            PromptBuilder::Template { template: template.into() },
            OutputValidator::YesNo,
        );
        let tagger: Box<dyn Module> = if config.simulate_tagger {
            // Tagging judgments are cheap to get wrong individually, so the
            // takeover policy is tuned for throughput: a slightly lower
            // accuracy bar and confidence gate than the defaults.
            Box::new(Simulated::new(
                Box::new(tagger_module),
                StudentKind::Binary,
                SimulatorConfig {
                    takeover_accuracy: 0.85,
                    confidence_threshold: 0.45,
                    ..Default::default()
                },
            ))
        } else {
            Box::new(tagger_module)
        };

        // 4. Language detection (multilingual only).
        let langdetect = config.multilingual.then(|| {
            LlmModule::new(
                "detect_language",
                PromptBuilder::TextTask {
                    description: "What language is this text?".into(),
                    payload_label: "Text".into(),
                    extra_lines: vec![],
                },
                OutputValidator::LanguageCode,
            )
        });

        Ok(NameExtractionPipeline {
            tokenizer,
            extractor,
            tagger,
            langdetect,
            multilingual: config.multilingual,
        })
    }

    /// Extract person names from one passage.
    pub fn extract(
        &mut self,
        passage: &str,
        ctx: &mut ExecContext,
    ) -> Result<Vec<String>, CoreError> {
        let language = match &mut self.langdetect {
            Some(module) => match module.invoke(Data::Str(passage.to_string()), ctx)? {
                Data::Str(code) => code,
                _ => "en".to_string(),
            },
            None => "en".to_string(),
        };

        let tokens = self.tokenizer.invoke(Data::Str(passage.to_string()), ctx)?;
        let phrases_input = if self.multilingual {
            Data::map([
                ("tokens".to_string(), tokens),
                ("language".to_string(), Data::Str(language.clone())),
            ])
        } else {
            tokens
        };
        let phrases = self.extractor.invoke(phrases_input, ctx)?;
        let Data::List(phrases) = phrases else {
            return Err(CoreError::DataShape {
                expected: "list of phrases",
                got: phrases.type_name().into(),
            });
        };

        let mut names = Vec::new();
        for phrase in phrases {
            let Data::Str(phrase) = phrase else { continue };
            let input = Data::map([
                ("phrase".to_string(), Data::Str(phrase.clone())),
                ("language".to_string(), Data::Str(language.clone())),
            ]);
            if let Data::Bool(true) = self.tagger.invoke(input, ctx)? {
                names.push(phrase);
            }
        }
        Ok(names)
    }

    /// Micro-averaged precision/recall/F1 over a corpus, with LLM metering.
    pub fn evaluate(
        &mut self,
        corpus: &[Passage],
        ctx: &mut ExecContext,
    ) -> Result<NameExtractionScore, CoreError> {
        let calls_before = ctx.llm.usage().calls;
        let (mut tp, mut predicted_total, mut gold_total) = (0usize, 0usize, 0usize);
        for passage in corpus {
            let predicted = self.extract(&passage.text, ctx)?;
            predicted_total += predicted.len();
            gold_total += passage.person_names.len();
            let mut gold_pool = passage.person_names.clone();
            for name in predicted {
                if let Some(pos) = gold_pool.iter().position(|g| *g == name) {
                    gold_pool.remove(pos);
                    tp += 1;
                }
            }
        }
        let precision = if predicted_total == 0 { 0.0 } else { tp as f64 / predicted_total as f64 };
        let recall = if gold_total == 0 { 0.0 } else { tp as f64 / gold_total as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Ok(NameExtractionScore {
            precision,
            recall,
            f1,
            llm_calls: ctx.llm.usage().calls - calls_before,
        })
    }

    /// The simulator statistics when built with `simulate_tagger`.
    pub fn tagger_description(&self) -> String {
        self.tagger.describe()
    }
}

/// Register the multilingual tools the pipeline needs.
pub fn register_tools(ctx: &mut ExecContext, world: &WorldSpec) {
    ctx.tools.register("stopwords", stopwords_tool_from_world(world));
}

fn str_list(items: &[&str]) -> Data {
    Data::List(items.iter().map(|s| Data::Str(s.to_string())).collect())
}

fn tokenizer_cases() -> Vec<TestCase> {
    vec![
        TestCase::new(Data::Str("Hello, world!".into()), str_list(&["Hello", "world"])),
        TestCase::new(Data::Str("I saw a cat".into()), str_list(&["I", "saw", "a", "cat"])),
        TestCase::new(Data::Null, Data::List(vec![])),
    ]
}

fn extractor_cases(multilingual: bool) -> Vec<TestCase> {
    let wrap = |tokens: &[&str]| -> Data {
        if multilingual {
            Data::map([
                ("tokens".to_string(), str_list(tokens)),
                ("language".to_string(), Data::Str("en".into())),
            ])
        } else {
            str_list(tokens)
        }
    };
    vec![
        // Catches TruncatedStopwords ("Yesterday" must be filtered) and the
        // general grouping logic.
        TestCase::new(
            wrap(&["Yesterday", "John", "Smith", "met", "the", "board"]),
            str_list(&["John Smith"]),
        ),
        // Catches EagerReturn (two phrases required) and MissingLowercase
        // ("The" must be filtered case-insensitively).
        TestCase::new(
            wrap(&["The", "board", "met", "Mary", "Brown", "and", "Lee", "Wong"]),
            str_list(&["Mary Brown", "Lee Wong"]),
        ),
        TestCase::new(wrap(&[]), Data::List(vec![])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::generators::names::{generate, NamesConfig};
    use lingua_dataset::world::Language;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn setup(seed: u64) -> (WorldSpec, ExecContext) {
        let world = WorldSpec::generate(seed);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, seed)));
        register_tools(&mut ctx, &world);
        (world, ctx)
    }

    #[test]
    fn monolingual_pipeline_works_on_english() {
        let (world, mut ctx) = setup(40);
        let config = NamesConfig {
            passages: 20,
            language_mix: vec![(Language::English, 1.0)],
            sentences: (1, 2),
        };
        let corpus = generate(&world, &config, 5);
        let mut pipeline =
            NameExtractionPipeline::build(&mut ctx, &NameExtractionConfig::default()).unwrap();
        let score = pipeline.evaluate(&corpus, &mut ctx).unwrap();
        assert!(score.f1 > 0.75, "english f1 {score:?}");
    }

    #[test]
    fn monolingual_pipeline_degrades_on_multilingual_data() {
        let (world, mut ctx) = setup(41);
        let corpus = generate(&world, &NamesConfig { passages: 40, ..Default::default() }, 5);
        let mut mono =
            NameExtractionPipeline::build(&mut ctx, &NameExtractionConfig::default()).unwrap();
        let mono_score = mono.evaluate(&corpus, &mut ctx).unwrap();
        let mut multi = NameExtractionPipeline::build(
            &mut ctx,
            &NameExtractionConfig { multilingual: true, simulate_tagger: false },
        )
        .unwrap();
        let multi_score = multi.evaluate(&corpus, &mut ctx).unwrap();
        assert!(
            multi_score.f1 > mono_score.f1 + 0.15,
            "multilingual {multi_score:?} should clearly beat monolingual {mono_score:?}"
        );
        assert!(multi_score.f1 > 0.75, "{multi_score:?}");
    }

    #[test]
    fn simulated_tagger_cuts_llm_calls() {
        let (world, mut ctx) = setup(42);
        let corpus = generate(&world, &NamesConfig { passages: 120, ..Default::default() }, 5);
        let mut plain = NameExtractionPipeline::build(
            &mut ctx,
            &NameExtractionConfig { multilingual: true, simulate_tagger: false },
        )
        .unwrap();
        let plain_score = plain.evaluate(&corpus, &mut ctx).unwrap();
        let mut simulated = NameExtractionPipeline::build(
            &mut ctx,
            &NameExtractionConfig { multilingual: true, simulate_tagger: true },
        )
        .unwrap();
        let sim_score = simulated.evaluate(&corpus, &mut ctx).unwrap();
        assert!(
            sim_score.llm_calls < plain_score.llm_calls * 3 / 4,
            "simulator should cut calls: {} vs {}",
            sim_score.llm_calls,
            plain_score.llm_calls
        );
        assert!(
            sim_score.f1 > plain_score.f1 - 0.08,
            "accuracy must hold: {sim_score:?} vs {plain_score:?}"
        );
    }

    #[test]
    fn extract_returns_names_in_passage_order() {
        let (_world, mut ctx) = setup(43);
        let mut pipeline =
            NameExtractionPipeline::build(&mut ctx, &NameExtractionConfig::default()).unwrap();
        let names = pipeline
            .extract("Yesterday James Smith met with Mary Johnson about the budget.", &mut ctx)
            .unwrap();
        assert_eq!(names, vec!["James Smith".to_string(), "Mary Johnson".to_string()]);
    }
}
