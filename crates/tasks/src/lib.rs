//! # lingua-tasks
//!
//! The end-to-end data-curation solutions from the paper's demonstration
//! (§4), plus every baseline they are compared against:
//!
//! * [`er`] — entity resolution (Table 1): simulated-Magellan (random
//!   forest), simulated-Ditto (rich-feature supervised matcher), the FMs
//!   prompt-only baseline, and the Lingua Manga solution (calibrated LLM
//!   module with examples and output validation), plus token blocking.
//! * [`imputation`] — the Buy-dataset manufacturer imputation (§4.3):
//!   HoloClean-style statistical imputer, IMP-style supervised text
//!   classifier, pure LLM module, the FMs naive-prompt baseline, and the
//!   Lingua Manga LLMGC-rules-with-LLM-fallback solution.
//! * [`names`] — multilingual name extraction (§4.2): the three-operator
//!   pipeline (tokenize → noun phrases → tag), its monolingual failure mode,
//!   and the language-detection + multilingual-tools fix, with optional
//!   simulator cost reduction.
//! * [`schema_match`], [`table_search`], [`anomaly`] — the "various extra
//!   tasks" from the paper's introduction, built on the same system.

pub mod anomaly;
pub mod er;
pub mod imputation;
pub mod names;
pub mod schema_match;
pub mod table_search;
