//! Data discovery via table search: rank catalog tables against a natural-
//! language query using (metered) LLM embeddings — the "data discovery
//! through table search" task of the paper's introduction.

use lingua_core::ExecContext;
use lingua_dataset::Table;
use lingua_llm_sim::embeddings::rank_by_similarity;

/// A searchable index over registered tables.
pub struct TableIndex {
    names: Vec<String>,
    embeddings: Vec<Vec<f64>>,
}

/// Render the text that represents a table for indexing: name, column names,
/// and a small sample of cell values (the head rows only — data minimization).
pub fn table_signature(table: &Table, sample_rows: usize) -> String {
    let mut text = format!(
        "table {} columns {}",
        table.name(),
        table.schema().names().collect::<Vec<_>>().join(" ")
    );
    for row in table.rows().iter().take(sample_rows) {
        text.push(' ');
        text.push_str(&row.describe(table.schema()));
    }
    text
}

impl TableIndex {
    /// Index tables (embeds one signature per table).
    pub fn build(tables: &[&Table], ctx: &mut ExecContext) -> TableIndex {
        let mut names = Vec::with_capacity(tables.len());
        let mut embeddings = Vec::with_capacity(tables.len());
        for table in tables {
            names.push(table.name().to_string());
            embeddings.push(ctx.llm.embed(&table_signature(table, 3)));
        }
        TableIndex { names, embeddings }
    }

    /// Rank tables for a query; returns `(table name, similarity)` pairs,
    /// best first.
    pub fn search(&self, query: &str, ctx: &mut ExecContext) -> Vec<(String, f64)> {
        let query_embedding = ctx.llm.embed(query);
        rank_by_similarity(&query_embedding, &self.embeddings)
            .into_iter()
            .map(|(i, score)| (self.names[i].clone(), score))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::csv;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    fn tables() -> Vec<Table> {
        vec![
            csv::read_str(
                "beers",
                "beer_name,brewery,style,abv\nHoppy Badger,Stonegate Brewing,American IPA,5.2%\n",
            )
            .unwrap(),
            csv::read_str(
                "restaurants",
                "name,addr,city,phone,cuisine\nCafe Luna,12 Main St.,boston,555-111-2222,italian\n",
            )
            .unwrap(),
            csv::read_str(
                "songs",
                "song_name,artist_name,album_name,genre\nMidnight Hearts,Ivy Parade,Neon Rivers,Pop\n",
            )
            .unwrap(),
        ]
    }

    #[test]
    fn search_ranks_the_relevant_table_first() {
        let world = WorldSpec::generate(45);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 45)));
        let tables = tables();
        let refs: Vec<&Table> = tables.iter().collect();
        let index = TableIndex::build(&refs, &mut ctx);
        assert_eq!(index.len(), 3);
        let hits = index.search("find tables about beer styles and breweries", &mut ctx);
        assert_eq!(hits[0].0, "beers", "{hits:?}");
        let hits = index.search("restaurant cuisine and phone numbers by city", &mut ctx);
        assert_eq!(hits[0].0, "restaurants", "{hits:?}");
        let hits = index.search("songs by artist and album", &mut ctx);
        assert_eq!(hits[0].0, "songs", "{hits:?}");
    }

    #[test]
    fn signature_limits_data_exposure() {
        let table = csv::read_str("t", "a\n1\n2\n3\n4\n5\n").unwrap();
        let signature = table_signature(&table, 2);
        assert!(signature.contains("a: 1"));
        assert!(!signature.contains("a: 5"), "{signature}");
    }

    #[test]
    fn embeddings_are_metered() {
        use lingua_llm_sim::LlmService;
        let world = WorldSpec::generate(46);
        let ctx_llm = Arc::new(SimLlm::with_seed(&world, 46));
        let mut ctx = ExecContext::new(ctx_llm.clone());
        let tables = tables();
        let refs: Vec<&Table> = tables.iter().collect();
        let _index = TableIndex::build(&refs, &mut ctx);
        assert!(ctx_llm.usage().tokens_in > 0);
    }
}
