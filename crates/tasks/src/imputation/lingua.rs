//! The Lingua Manga imputation solution (§4.3, Figure 4): an expert-guided
//! LLMGC module whose generated rules resolve the easy rows locally (the
//! brand is right there in the text) and fall back to `call_llm` only for the
//! hard rows — "it can effectively use the LLM as an external tool to resolve
//! complex cases while still performing more efficiently than a pure LLM
//! module on more straightforward cases", at roughly 1/6 of the LLM calls.

use crate::imputation::Imputer;
use lingua_core::modules::{LlmgcModule, Module};
use lingua_core::optimizer::{TestCase, ValidationOutcome, Validator};
use lingua_core::{Data, ExecContext};
use lingua_llm_sim::noise::normalize_category;
use lingua_llm_sim::CodeGenSpec;
use lingua_script::Value as ScriptValue;

/// Build the execution context tooling this solution expects: the brand
/// vocabulary tool and the output normalizer the generated code calls.
pub fn register_tools(ctx: &mut ExecContext, vocabulary: &[String]) {
    ctx.tools.register_list("vocabulary", vocabulary.to_vec());
    let vocab = vocabulary.to_vec();
    ctx.tools.register("normalize_brand", move |args| {
        let raw = args
            .first()
            .and_then(|v| v.as_str())
            .ok_or_else(|| "normalize_brand expects a string".to_string())?;
        Ok(ScriptValue::Str(normalize_category(raw, &vocab).to_string()))
    });
}

/// The code-generation spec an expert would write for Figure 4.
pub fn spec() -> CodeGenSpec {
    CodeGenSpec {
        task: "impute the missing manufacturer from the product name and description; \
               scan the vocabulary tool for a brand mentioned in the text, and use the \
               LLM as a fallback for products with no brand mention"
            .into(),
        function_name: "process".into(),
        hints: vec!["tool:vocabulary".into(), "tool:normalize_brand".into()],
    }
}

/// Expert-provided validation cases: easy rows the rules must handle locally,
/// plus the null guard.
pub fn validation_cases(vocabulary: &[String]) -> Vec<TestCase> {
    let brand_a = vocabulary.first().cloned().unwrap_or_else(|| "Sony".into());
    let brand_b = vocabulary.get(1).cloned().unwrap_or_else(|| "Canon".into());
    vec![
        TestCase::new(
            Data::map([
                ("name".to_string(), Data::Str(format!("{brand_a} Handheld Scanner Z10"))),
                ("description".to_string(), Data::Str("compact scanner".into())),
            ]),
            Data::Str(brand_a),
        ),
        TestCase::new(
            Data::map([
                ("name".to_string(), Data::Str("Handheld Scanner Z10".into())),
                (
                    "description".to_string(),
                    Data::Str(format!("compact scanner from {brand_b}'s lineup")),
                ),
            ]),
            Data::Str(brand_b),
        ),
        TestCase::new(Data::Null, Data::Null),
    ]
}

/// The assembled solution: a validated LLMGC module.
pub struct LinguaImputer {
    module: LlmgcModule,
    /// The validation report from construction (for experiment reporting).
    pub validation: lingua_core::optimizer::ValidationReport,
}

impl LinguaImputer {
    /// Generate, validate, and repair the module. `ctx` must already carry
    /// the tools from [`register_tools`].
    pub fn build(ctx: &mut ExecContext) -> Result<LinguaImputer, lingua_core::CoreError> {
        let spec = spec();
        let mut module = LlmgcModule::generate("impute_manufacturer", spec, ctx)?;
        let vocabulary: Vec<String> = match ctx.tools.call("vocabulary", &[]) {
            Ok(ScriptValue::List(items)) => {
                items.iter().filter_map(|v| v.as_str().map(|s| s.to_string())).collect()
            }
            _ => vec![],
        };
        let validator = Validator::new(validation_cases(&vocabulary))
            .with_budgets(4, 2)
            // The easy cases must be resolved by the local rules — zero LLM
            // calls. This is what catches rules that silently defer to the
            // expensive fallback (functionally correct, 6x the cost).
            .with_llm_budget(0);
        let validation = validator.validate_and_fix(&mut module, ctx)?;
        if validation.outcome != ValidationOutcome::Passed {
            return Err(lingua_core::CoreError::ValidationExhausted {
                module: "impute_manufacturer".into(),
                cycles: validation.cycles,
                regenerations: validation.regenerations,
            });
        }
        Ok(LinguaImputer { module, validation })
    }

    /// The generated (and repaired) MangaScript source.
    pub fn source(&self) -> &str {
        self.module.source()
    }
}

impl Imputer for LinguaImputer {
    fn name(&self) -> &str {
        "lingua_manga"
    }

    fn impute(&mut self, name: &str, description: &str, ctx: &mut ExecContext) -> String {
        let input = Data::map([
            ("name".to_string(), Data::Str(name.to_string())),
            ("description".to_string(), Data::Str(description.to_string())),
        ]);
        match self.module.invoke(input, ctx) {
            Ok(Data::Str(answer)) => answer,
            _ => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputation::evaluate;
    use lingua_dataset::generators::imputation::generate;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn builds_validates_and_imputes_with_few_llm_calls() {
        let world = WorldSpec::generate(37);
        let benchmark = generate(&world, 1);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 37)));
        register_tools(&mut ctx, &benchmark.vocabulary);
        let mut imputer = LinguaImputer::build(&mut ctx).unwrap();
        assert!(imputer.source().contains("call_llm"), "fallback path must exist");

        ctx.llm.usage(); // warm
        let calls_before = ctx.llm.usage().calls;
        let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
        let _ = calls_before;
        assert!(outcome.accuracy() > 0.85, "accuracy {}", outcome.accuracy());
        // The 1/6 economy: most rows resolve by rules, roughly the hard sixth
        // falls back to the LLM.
        let calls_per_row = outcome.llm_calls as f64 / benchmark.len() as f64;
        assert!(calls_per_row < 0.30, "calls per row {calls_per_row} (expected around 1/6)");
        assert!(calls_per_row > 0.05, "fallback should actually fire: {calls_per_row}");
    }

    #[test]
    fn validation_cases_cover_easy_paths_and_null() {
        let cases = validation_cases(&["Sony".into(), "Canon".into()]);
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].expected, Data::Str("Sony".into()));
        assert_eq!(cases[2].expected, Data::Null);
    }
}
