//! Pure LLM-module imputation: every row costs one LLM call. Two variants:
//!
//! * [`LlmOnlyImputer`] — the validated Lingua Manga LLM module (pinned
//!   format, candidate vocabulary in the prompt, category normalization,
//!   strict retry). This is §4.3's "version that only uses the LLM module"
//!   (93.92% in the paper).
//! * [`FmsImputer`] — the naive prompt-only baseline (no format pin, no
//!   candidates, exact-match scoring of the raw answer). This is the prior
//!   work's 84.6%.

use crate::imputation::Imputer;
use lingua_core::modules::{LlmModule, Module, PromptBuilder};
use lingua_core::validation::OutputValidator;
use lingua_core::{Data, ExecContext};
use lingua_llm_sim::CompletionRequest;

/// The validated LLM-module imputer.
pub struct LlmOnlyImputer {
    module: LlmModule,
}

impl LlmOnlyImputer {
    pub fn new(vocabulary: Vec<String>) -> LlmOnlyImputer {
        let candidates = format!("Candidates: {}", vocabulary.join(", "));
        LlmOnlyImputer {
            module: LlmModule::new(
                "impute_manufacturer",
                PromptBuilder::TextTask {
                    description: "Fill in the missing manufacturer for this product.".into(),
                    payload_label: "Product".into(),
                    extra_lines: vec![candidates],
                },
                OutputValidator::Category { vocabulary },
            ),
        }
    }
}

impl Imputer for LlmOnlyImputer {
    fn name(&self) -> &str {
        "llm_only"
    }

    fn impute(&mut self, name: &str, description: &str, ctx: &mut ExecContext) -> String {
        let input = Data::Str(format!("name: {name}; description: {description}"));
        match self.module.invoke(input, ctx) {
            Ok(Data::Str(answer)) => answer,
            _ => String::new(),
        }
    }
}

/// The naive prompt-only imputer (the FMs row of §4.3).
pub struct FmsImputer;

impl Imputer for FmsImputer {
    fn name(&self) -> &str {
        "fms"
    }

    fn impute(&mut self, name: &str, description: &str, ctx: &mut ExecContext) -> String {
        // No candidates, no format pin, no validation: the raw answer is
        // scored by exact match, so "The manufacturer is Sony." fails.
        let prompt = format!(
            "Fill in the missing manufacturer for this product.\n\
             Product: name: {name}; description: {description}"
        );
        ctx.llm.complete(&CompletionRequest::new(prompt)).trim().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputation::evaluate;
    use lingua_dataset::generators::imputation::generate;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn validated_llm_imputer_is_strong_and_costs_one_call_per_row() {
        let world = WorldSpec::generate(35);
        let benchmark = generate(&world, 1);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 35)));
        let mut imputer = LlmOnlyImputer::new(benchmark.vocabulary.clone());
        let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
        assert!(outcome.accuracy() > 0.88, "accuracy {}", outcome.accuracy());
        // ~1 call per row (strict retries add a few).
        assert!(outcome.llm_calls >= benchmark.len() as u64);
        assert!(outcome.llm_calls < benchmark.len() as u64 + benchmark.len() as u64 / 5);
    }

    #[test]
    fn naive_fms_imputer_is_noticeably_weaker() {
        let world = WorldSpec::generate(36);
        let benchmark = generate(&world, 1);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 36)));
        let mut validated = LlmOnlyImputer::new(benchmark.vocabulary.clone());
        let mut naive = FmsImputer;
        let acc_validated = evaluate(&mut validated, &benchmark, &mut ctx).accuracy();
        let acc_naive = evaluate(&mut naive, &benchmark, &mut ctx).accuracy();
        assert!(acc_validated > acc_naive + 0.04, "validated {acc_validated} vs naive {acc_naive}");
    }
}
