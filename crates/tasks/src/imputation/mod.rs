//! Data imputation on the Buy-style catalogue (§4.3): the harness plus the
//! five methods the section compares.

pub mod holoclean;
pub mod imp;
pub mod lingua;
pub mod llm_only;

use lingua_core::ExecContext;
use lingua_dataset::generators::imputation::ImputationBenchmark;

/// One method's result on the benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputationOutcome {
    pub correct: usize,
    pub total: usize,
    /// LLM completions consumed (0 for the classic baselines).
    pub llm_calls: u64,
}

impl ImputationOutcome {
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }
}

/// A method under evaluation: imputes the manufacturer for one row.
pub trait Imputer {
    fn name(&self) -> &str;
    fn impute(&mut self, name: &str, description: &str, ctx: &mut ExecContext) -> String;
}

/// Run an imputer over the whole benchmark, scoring against hidden truth and
/// metering LLM calls.
pub fn evaluate(
    imputer: &mut dyn Imputer,
    benchmark: &ImputationBenchmark,
    ctx: &mut ExecContext,
) -> ImputationOutcome {
    let calls_before = ctx.llm.usage().calls;
    let mut correct = 0usize;
    for (row, truth) in benchmark.table.rows().iter().zip(&benchmark.truth) {
        let name = row[0].render();
        let description = row[1].render();
        let predicted = imputer.impute(&name, &description, ctx);
        if &predicted == truth {
            correct += 1;
        }
    }
    ImputationOutcome {
        correct,
        total: benchmark.truth.len(),
        llm_calls: ctx.llm.usage().calls - calls_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::generators::imputation::generate;
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    struct ModeImputer(String);
    impl Imputer for ModeImputer {
        fn name(&self) -> &str {
            "mode"
        }
        fn impute(&mut self, _: &str, _: &str, _: &mut ExecContext) -> String {
            self.0.clone()
        }
    }

    #[test]
    fn harness_scores_against_truth() {
        let world = WorldSpec::generate(30);
        let benchmark = generate(&world, 1);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 30)));
        let mode = benchmark.truth[0].clone();
        let outcome = evaluate(&mut ModeImputer(mode), &benchmark, &mut ctx);
        assert_eq!(outcome.total, benchmark.len());
        assert!(outcome.correct >= 1);
        assert!(outcome.accuracy() < 0.2, "a constant guess must be weak");
        assert_eq!(outcome.llm_calls, 0);
    }
}
