//! Simulated IMP ("Capturing Semantics for Imputation with Pre-trained
//! Language Models", ICDE'21): a supervised text classifier trained on
//! *thousands* of labeled products. Played here by multinomial naive Bayes
//! over product text — it reads inside the text (unlike HoloClean), so brand
//! tokens and recurring product-line tokens both transfer to fresh rows.

use crate::imputation::Imputer;
use lingua_core::ExecContext;
use lingua_ml::naive_bayes::NaiveBayes;

/// The supervised imputer.
pub struct ImpImputer {
    model: NaiveBayes,
    pub training_examples: usize,
}

impl ImpImputer {
    /// Train on labeled `(name, description, manufacturer)` rows.
    pub fn train(catalogue: &[(String, String, String)]) -> ImpImputer {
        let texts: Vec<(String, &str)> = catalogue
            .iter()
            .map(|(name, description, manufacturer)| {
                (format!("{name} {description}"), manufacturer.as_str())
            })
            .collect();
        let model = NaiveBayes::train(texts.iter().map(|(text, m)| (text.as_str(), *m)));
        ImpImputer { model, training_examples: catalogue.len() }
    }
}

impl Imputer for ImpImputer {
    fn name(&self) -> &str {
        "imp"
    }

    fn impute(&mut self, name: &str, description: &str, _ctx: &mut ExecContext) -> String {
        self.model.predict(&format!("{name} {description}")).0.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputation::evaluate;
    use lingua_dataset::generators::imputation::{generate, training_catalogue};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn imp_with_thousands_of_labels_is_strong() {
        let world = WorldSpec::generate(33);
        let benchmark = generate(&world, 1);
        let catalogue = training_catalogue(&world, 4000);
        let mut imputer = ImpImputer::train(&catalogue);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 33)));
        let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
        assert!(outcome.accuracy() > 0.9, "imp accuracy {}", outcome.accuracy());
        assert_eq!(outcome.llm_calls, 0);
        assert_eq!(imputer.training_examples, 4000);
    }

    #[test]
    fn imp_degrades_with_few_labels() {
        let world = WorldSpec::generate(34);
        let benchmark = generate(&world, 1);
        let few = training_catalogue(&world, 4000);
        let mut big = ImpImputer::train(&few);
        let mut small = ImpImputer::train(&few[..50]);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 34)));
        let acc_big = evaluate(&mut big, &benchmark, &mut ctx).accuracy();
        let acc_small = evaluate(&mut small, &benchmark, &mut ctx).accuracy();
        assert!(acc_big > acc_small + 0.1, "big {acc_big} vs small {acc_small}");
    }
}
