//! Simulated HoloClean: holistic statistical repair. HoloClean treats each
//! attribute value as an **atomic categorical** and learns value
//! co-occurrence / functional-dependency signals; it never looks inside a
//! text value. On the Buy task that means: a manufacturer can only be
//! recovered when an *identical* product name or description was seen with a
//! known manufacturer — which essentially never happens for fresh products —
//! so it falls back to the prior mode. This is exactly why the paper reports
//! 16.2% for HoloClean against ≥84% for every LLM-backed method: the
//! relevant signal ("PlayStation ⇒ Sony") is world knowledge, not dataset
//! statistics.

use crate::imputation::Imputer;
use lingua_core::ExecContext;
use std::collections::BTreeMap;

/// The statistical imputer.
pub struct HoloCleanImputer {
    /// exact name -> manufacturer votes
    by_name: BTreeMap<String, BTreeMap<String, usize>>,
    /// exact description -> manufacturer votes
    by_description: BTreeMap<String, BTreeMap<String, usize>>,
    /// prior mode
    mode: String,
}

impl HoloCleanImputer {
    /// Fit on observed `(name, description, manufacturer)` rows.
    pub fn train<'a>(
        observed: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> HoloCleanImputer {
        let mut by_name: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut by_description: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (name, description, manufacturer) in observed {
            *by_name
                .entry(name.to_string())
                .or_default()
                .entry(manufacturer.to_string())
                .or_default() += 1;
            *by_description
                .entry(description.to_string())
                .or_default()
                .entry(manufacturer.to_string())
                .or_default() += 1;
            *counts.entry(manufacturer.to_string()).or_default() += 1;
        }
        let mode =
            counts.iter().max_by_key(|(_, &c)| c).map(|(m, _)| m.clone()).unwrap_or_default();
        HoloCleanImputer { by_name, by_description, mode }
    }

    fn vote(votes: Option<&BTreeMap<String, usize>>) -> Option<&String> {
        votes.and_then(|v| v.iter().max_by_key(|(_, &c)| c).map(|(m, _)| m))
    }
}

impl Imputer for HoloCleanImputer {
    fn name(&self) -> &str {
        "holoclean"
    }

    fn impute(&mut self, name: &str, description: &str, _ctx: &mut ExecContext) -> String {
        // Atomic value matching only — the defining limitation.
        if let Some(m) = Self::vote(self.by_name.get(name)) {
            return m.clone();
        }
        if let Some(m) = Self::vote(self.by_description.get(description)) {
            return m.clone();
        }
        self.mode.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputation::evaluate;
    use lingua_dataset::generators::imputation::{generate, training_catalogue};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::SimLlm;
    use std::sync::Arc;

    #[test]
    fn exact_repeats_are_recovered_but_fresh_rows_fall_to_the_mode() {
        let imputer = HoloCleanImputer::train([
            ("Widget X", "a widget", "Acme"),
            ("Widget X", "a widget", "Acme"),
            ("Gadget Y", "a gadget", "Globex"),
        ]);
        let world = WorldSpec::generate(31);
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 31)));
        let mut imputer = imputer;
        assert_eq!(imputer.impute("Widget X", "?", &mut ctx), "Acme");
        assert_eq!(imputer.impute("?", "a gadget", &mut ctx), "Globex");
        // Fresh product → prior mode (Acme, 2 votes).
        assert_eq!(imputer.impute("PlayStation 2 Memory Card", "8MB", &mut ctx), "Acme");
    }

    #[test]
    fn holoclean_is_weak_on_the_buy_benchmark() {
        let world = WorldSpec::generate(32);
        let benchmark = generate(&world, 1);
        let catalogue = training_catalogue(&world, 500);
        let mut imputer = HoloCleanImputer::train(
            catalogue.iter().map(|(n, d, m)| (n.as_str(), d.as_str(), m.as_str())),
        );
        let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 32)));
        let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
        assert!(
            outcome.accuracy() < 0.25,
            "holoclean should be weak here, got {}",
            outcome.accuracy()
        );
        assert_eq!(outcome.llm_calls, 0);
    }
}
