//! # lingua-bench
//!
//! Shared plumbing for the experiment binaries (`src/bin/*.rs`), each of
//! which regenerates one table or figure from the paper — see `DESIGN.md`'s
//! per-experiment index and `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! Run an experiment:
//!
//! ```text
//! cargo run --release -p lingua-bench --bin table1_entity_resolution
//! ```
//!
//! Every binary accepts `--seeds N` (averaging over N world seeds) and
//! writes a JSON record under `results/`.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parse `--seeds N` style args (very small, zero-dependency).
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Where experiment outputs land (workspace `results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("LINGUA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Persist an experiment record as pretty JSON.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\nresults written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

/// A fixed-width text table printer for experiment output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Format `mean ± std` compactly.
pub fn fmt_mean_std(values: &[f64], scale: f64) -> String {
    format!("{:.2} ±{:.2}", mean(values) * scale, stddev(values) * scale)
}

/// Accumulate named series across seeds.
#[derive(Debug, Default)]
pub struct SeriesSet {
    series: BTreeMap<String, Vec<f64>>,
}

impl SeriesSet {
    pub fn push(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    pub fn get(&self, name: &str) -> &[f64] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn mean(&self, name: &str) -> f64 {
        mean(self.get(name))
    }

    pub fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(
            self.series
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        serde_json::json!({
                            "values": v,
                            "mean": mean(v),
                            "stddev": stddev(v),
                        }),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Dataset", "F1"]);
        t.row(["BeerAdvo-RateBeer", "89.66"]);
        t.row(["x", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[2].contains("89.66"));
        // Columns align: "F1" column starts at the same offset in all rows.
        let offset = lines[0].find("F1").unwrap();
        assert_eq!(&lines[2][offset..offset + 5], "89.66");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(stddev(&[1.0, 1.0, 1.0]) < 1e-12);
        assert!(stddev(&[5.0]) == 0.0);
        let mut s = SeriesSet::default();
        s.push("a", 1.0);
        s.push("a", 3.0);
        assert_eq!(s.mean("a"), 2.0);
        assert_eq!(s.get("missing").len(), 0);
        let json = s.to_json();
        assert_eq!(json["a"]["mean"], 2.0);
    }

    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(arg_usize("--definitely-not-passed", 7), 7);
    }
}
