//! **Script VM** — validator-style repeat execution of MangaScript programs:
//! the bytecode VM against the tree-walking interpreter.
//!
//! The Validator/Simulator loop executes one candidate program once per test
//! case, thousands of times per repair cycle. This bench replays that shape:
//! each workload program is prepared once (parse for the interpreter; parse +
//! compile-once for the VM, exactly as `LlmgcModule` caches it) and then
//! executed over and over with fresh engine state per execution, as `invoke`
//! does. Three workloads cover the common generated-code shapes:
//!
//! * `clean-records` — per-record map/string normalization (the canonical
//!   curation function: loops, map iteration, builtins). Regression-gated.
//! * `score-recursive` — call-heavy arithmetic (recursive scoring), where the
//!   interpreter pays a full body clone per call.
//! * `fold-report` — list building + joins over a window of rows.
//!
//! Writes `results/script_vm.json`. With `--check-baseline <path>` the run
//! compares the gated metric — the VM/interpreter speedup on `clean-records`,
//! measured between the two engines in this same process so host speed
//! cancels out — against a previously committed results file and exits
//! nonzero if the ratio fell more than 2x. `--smoke` shrinks counts for CI.

use lingua_bench::{arg_usize, mean, write_json, TextTable};
use lingua_script::{compile, parse, CompiledScript, Interpreter, NoHost, Program, Value, Vm};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const FUEL: u64 = 2_000_000;

struct Workload {
    name: &'static str,
    source: &'static str,
    entry: &'static str,
    arg: Value,
}

fn record(name: &str, city: &str, n: i64) -> Value {
    let mut m = BTreeMap::new();
    m.insert("name".to_string(), Value::Str(format!("  {name} ")));
    m.insert("city".to_string(), Value::Str(format!(" {city}")));
    m.insert("n".to_string(), Value::Int(n));
    Value::Map(m)
}

fn workloads() -> Vec<Workload> {
    let rows: Vec<Value> =
        (0..24).map(|i| record(&format!("Entity {i}"), &format!("City {}", i % 5), i)).collect();
    vec![
        Workload {
            name: "clean-records",
            entry: "process",
            source: r#"
                fn clean_one(rec) {
                    let out = {};
                    for k in rec {
                        let v = rec[k];
                        if typeof(v) == "str" { insert(out, k, lower(trim(v))); }
                        if typeof(v) != "str" { insert(out, k, v); }
                    }
                    return out;
                }
                fn process(rows) {
                    let cleaned = [];
                    for r in rows {
                        let c = clean_one(r);
                        if c["n"] % 2 == 0 { push(cleaned, c); }
                    }
                    return len(cleaned);
                }
            "#,
            arg: Value::List(rows.clone()),
        },
        Workload {
            name: "score-recursive",
            entry: "process",
            source: r#"
                fn score(n) {
                    if n < 2 { return n; }
                    return score(n - 1) + score(n - 2);
                }
                fn process(n) { return score(n); }
            "#,
            arg: Value::Int(15),
        },
        Workload {
            name: "fold-report",
            entry: "process",
            source: r#"
                fn process(rows) {
                    let lines = [];
                    let total = 0;
                    for r in rows {
                        total = total + r["n"];
                        push(lines, trim(r["name"]) + ":" + r["n"]);
                    }
                    push(lines, "total:" + total);
                    return join(lines, "|");
                }
            "#,
            arg: Value::List(rows),
        },
    ]
}

/// Executions/sec for the tree-walker: parse once, then a fresh interpreter
/// per execution over the shared AST (what `LlmgcModule::invoke` did).
fn run_interp(program: &Program, entry: &str, arg: &Value, execs: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..execs {
        let mut interp = Interpreter::new(program).with_fuel(FUEL);
        std::hint::black_box(interp.call(&mut NoHost, entry, vec![arg.clone()]).unwrap());
    }
    execs as f64 / start.elapsed().as_secs_f64()
}

/// Executions/sec for the VM: compile once, then a fresh VM per execution
/// over the shared bytecode (what `LlmgcModule::invoke` does now).
fn run_vm(compiled: &Arc<CompiledScript>, entry: &str, arg: &Value, execs: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..execs {
        let mut vm = Vm::new(Arc::clone(compiled)).with_fuel(FUEL);
        std::hint::black_box(vm.call(&mut NoHost, entry, vec![arg.clone()]).unwrap());
    }
    execs as f64 / start.elapsed().as_secs_f64()
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pull the gated metric out of a previously committed results file without
/// needing a JSON parser: the writer emits `"gate_speedup": <value>`.
fn read_baseline_gate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"gate_speedup\"")?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn main() {
    let smoke = has_flag("--smoke");
    let reps = arg_usize("--reps", if smoke { 2 } else { 5 });
    let execs = arg_usize("--execs", if smoke { 300 } else { 2_000 });
    println!(
        "Script VM: bytecode vs tree-walking interpreter, validator-style repeat \
         execution ({reps} reps x {execs} execs{})\n",
        if smoke { ", smoke" } else { "" }
    );

    let mut table =
        TextTable::new(["Workload", "Interp exec/s", "VM exec/s", "Speedup", "Compile µs"]);
    let mut rows = Vec::new();
    let mut gate_speedup = 0.0f64;
    let mut gate_ops = 0.0f64;

    for w in workloads() {
        let program = parse(w.source).expect("workload parses");

        // One-time lowering cost, amortized across every later execution.
        let compile_start = Instant::now();
        let compiled = Arc::new(compile(&program));
        let compile_us = compile_start.elapsed().as_secs_f64() * 1e6;

        // Parity guard: a bench comparing two engines that disagree would be
        // measuring a bug, not a speedup.
        let i_out = Interpreter::new(&program)
            .with_fuel(FUEL)
            .call(&mut NoHost, w.entry, vec![w.arg.clone()])
            .unwrap();
        let v_out = Vm::new(Arc::clone(&compiled))
            .with_fuel(FUEL)
            .call(&mut NoHost, w.entry, vec![w.arg.clone()])
            .unwrap();
        assert_eq!(i_out, v_out, "engines disagree on {}", w.name);

        let mut interp_rates = Vec::with_capacity(reps);
        let mut vm_rates = Vec::with_capacity(reps);
        for _ in 0..reps {
            interp_rates.push(run_interp(&program, w.entry, &w.arg, execs));
            vm_rates.push(run_vm(&compiled, w.entry, &w.arg, execs));
        }
        let (interp_ops, vm_ops) = (mean(&interp_rates), mean(&vm_rates));
        let speedup = vm_ops / interp_ops;
        if w.name == "clean-records" {
            gate_speedup = speedup;
            gate_ops = vm_ops;
        }
        table.row([
            w.name.into(),
            format!("{interp_ops:.0}"),
            format!("{vm_ops:.0}"),
            format!("{speedup:.2}x"),
            format!("{compile_us:.0}"),
        ]);
        rows.push(serde_json::json!({
            "workload": w.name,
            "interp_execs_per_sec": interp_ops,
            "vm_execs_per_sec": vm_ops,
            "speedup": speedup,
            "compile_us": compile_us,
            "instructions": compiled.instruction_count(),
        }));
    }

    table.print();
    println!(
        "\nShape: the VM runs slot-indexed locals and Arc-shared values over \
         bytecode compiled once per generation, where the tree-walker clones \
         every callee body per call and hashes a scope map per variable \
         access; compile cost is paid once and amortizes across the \
         thousands of validator executions per repair cycle."
    );

    write_json(
        "script_vm",
        &serde_json::json!({
            "smoke": smoke, "reps": reps, "execs": execs,
            "gate_metric": "clean-records VM/interpreter speedup (same-run, machine-relative)",
            "gate_execs_per_sec": gate_ops,
            "gate_speedup": gate_speedup,
            "rows": rows,
        }),
    );

    if let Some(path) = flag_value("--check-baseline") {
        match read_baseline_gate(&path) {
            Some(baseline) => {
                // Gate on the same-run VM/interpreter ratio, not absolute
                // exec/sec: both engines ran on this host in this process, so
                // the ratio survives shared-runner speed spread.
                println!(
                    "\nRegression gate: VM/interpreter clean-records speedup = \
                     {gate_speedup:.2}x vs baseline {baseline:.2}x"
                );
                if gate_speedup < baseline / 2.0 {
                    eprintln!(
                        "REGRESSION: VM speedup over the tree-walking interpreter \
                         fell more than 2x below the committed ratio"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no usable baseline at {path}; skipping the regression gate");
            }
        }
    }
}
