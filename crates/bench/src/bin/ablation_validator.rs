//! **Ablation A3** — The Validator claim (§3.2): the suggest-and-regenerate
//! cycle fixes buggy LLM-generated code. Bug-injection sweep: force every
//! first generation to carry a bug, run the validation loop, and report
//! pass rates and cycles-to-fix.

use lingua_bench::{arg_usize, write_json, TextTable};
use lingua_core::modules::LlmgcModule;
use lingua_core::optimizer::{TestCase, ValidationOutcome, Validator};
use lingua_core::{Data, ExecContext};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{Calibration, CodeGenSpec, SimLlm, SimLlmConfig};
use std::sync::Arc;

fn str_list(items: &[&str]) -> Data {
    Data::List(items.iter().map(|s| Data::Str(s.to_string())).collect())
}

fn tokenizer_cases() -> Vec<TestCase> {
    vec![
        TestCase::new(Data::Str("Hello, world!".into()), str_list(&["Hello", "world"])),
        TestCase::new(Data::Str("I saw a cat".into()), str_list(&["I", "saw", "a", "cat"])),
        TestCase::new(Data::Null, Data::List(vec![])),
    ]
}

fn extractor_cases() -> Vec<TestCase> {
    vec![
        TestCase::new(
            str_list(&["Yesterday", "John", "Smith", "met", "the", "board"]),
            str_list(&["John Smith"]),
        ),
        TestCase::new(
            str_list(&["The", "board", "met", "Mary", "Brown", "and", "Lee", "Wong"]),
            str_list(&["Mary Brown", "Lee Wong"]),
        ),
        TestCase::new(str_list(&[]), Data::List(vec![])),
    ]
}

fn main() {
    let trials = arg_usize("--trials", 40);
    println!(
        "Ablation A3: validator repair loop under forced bug injection ({trials} trials/task)\n"
    );

    type CaseFn = fn() -> Vec<TestCase>;
    let tasks: [(&str, &str, CaseFn); 2] = [
        ("tokenizer", "tokenize the text into words", tokenizer_cases),
        (
            "noun-phrase extractor",
            "extract noun phrases: group consecutive capitalized tokens",
            extractor_cases,
        ),
    ];

    let world = WorldSpec::generate(8000);
    let mut table = TextTable::new([
        "Task",
        "Buggy at birth",
        "Pass before fix",
        "Pass after loop",
        "Mean cycles",
        "Max cycles",
    ]);
    let mut json_rows = Vec::new();

    for (label, task, cases) in tasks {
        let mut buggy = 0usize;
        let mut pass_before = 0usize;
        let mut pass_after = 0usize;
        let mut cycles: Vec<usize> = Vec::new();
        for trial in 0..trials as u64 {
            // Force a bug on the first generation; repairs use the default
            // calibration.
            let llm = Arc::new(SimLlm::new(
                &world,
                SimLlmConfig {
                    seed: 8000 + trial,
                    calibration: Calibration { codegen_bug_rate: 1.0, ..Default::default() },
                    ..Default::default()
                },
            ));
            let mut ctx = ExecContext::new(llm);
            let spec =
                CodeGenSpec { task: task.into(), function_name: "process".into(), hints: vec![] };
            let mut module = LlmgcModule::generate(label, spec, &ctx).expect("generation parses");
            if module.generation.as_ref().and_then(|g| g.bug).is_some() {
                buggy += 1;
            }
            let validator = Validator::new(cases()).with_budgets(6, 3);
            let before = validator.evaluate(&mut module, &mut ctx);
            if before.is_empty() {
                pass_before += 1;
            }
            let report = validator.validate_and_fix(&mut module, &mut ctx).expect("loop runs");
            if report.outcome == ValidationOutcome::Passed {
                pass_after += 1;
            }
            cycles.push(report.cycles);
        }
        let mean_cycles = cycles.iter().sum::<usize>() as f64 / cycles.len() as f64;
        let max_cycles = cycles.iter().max().copied().unwrap_or(0);
        table.row([
            label.to_string(),
            format!("{buggy}/{trials}"),
            format!("{pass_before}/{trials}"),
            format!("{pass_after}/{trials}"),
            format!("{mean_cycles:.2}"),
            max_cycles.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "task": label, "buggy": buggy, "pass_before": pass_before,
            "pass_after": pass_after, "mean_cycles": mean_cycles, "max_cycles": max_cycles,
        }));
    }
    table.print();
    println!(
        "\nShape: every first generation is buggy by construction; the validation cycle \
         repairs essentially all of them within the cycle budget — the §3.2 loop works \
         because failures are real executions and suggestions come from reading the code."
    );
    write_json("ablation_validator", &serde_json::json!({ "trials": trials, "rows": json_rows }));
}
