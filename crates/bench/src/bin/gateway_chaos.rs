//! **Serving S2** — resilience of the gateway under injected chaos: an ER
//! serving workload pushed through `lingua-gateway` (flaky primary + clean
//! standby) at increasing transient-fault rates, plus a full-outage arm that
//! exercises the circuit breaker.
//!
//! Reported per arm: goodput (jobs/sec and share of requests answered by a
//! real backend), the latency added by retry backoff (virtual, like every
//! latency in this workspace), retry/failover volume, and the breaker's
//! open-time in denied calls. The headline: at a 20% fault rate the workload
//! completes with **zero job-level failures** and zero degraded answers.

use lingua_bench::{arg_usize, write_json, TextTable};
use lingua_core::modules::{CustomModule, LlmModule, Module, PromptBuilder};
use lingua_core::validation::OutputValidator;
use lingua_core::{ContextFactory, CoreError, Data, LogicalOp, PhysicalPipeline};
use lingua_dataset::generators::er::{self, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_gateway::{FaultInjector, FaultPlan, Gateway, ServiceTransport};
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 9200;

/// One-op pipeline: judge every pair of the input batch with a fresh ER
/// `LlmModule` (same shape as the serving-throughput bench).
fn er_pipeline() -> PhysicalPipeline {
    let module = CustomModule::stateless("match_batch", |input, ctx| {
        let items = input
            .as_list()
            .ok_or(CoreError::DataShape { expected: "list of pairs", got: "other".into() })?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let mut judge = LlmModule::new(
                "er_judge",
                PromptBuilder::PairJudgment {
                    description:
                        "Please determine if the following two records refer to the same entity."
                            .into(),
                    examples: vec![],
                },
                OutputValidator::YesNo,
            );
            out.push(judge.invoke(item.clone(), ctx)?);
        }
        Ok(Data::List(out))
    });
    PhysicalPipeline {
        name: "match_batch".to_string(),
        ops: vec![(
            LogicalOp::new("match_batch").output("labels").input("batch"),
            Box::new(module) as Box<dyn Module>,
        )],
    }
}

/// ER pairs batched into per-job inputs.
fn er_jobs(world: &WorldSpec, jobs: usize, batch: usize) -> Vec<Data> {
    let split = er::generate(world, ErDataset::BeerAdvoRateBeer, SEED);
    let schema = split.schema.clone();
    let pairs: Vec<Data> = split
        .train
        .iter()
        .chain(&split.valid)
        .chain(&split.test)
        .map(|p| {
            Data::map([
                ("a".to_string(), Data::Str(p.left.describe(&schema))),
                ("b".to_string(), Data::Str(p.right.describe(&schema))),
            ])
        })
        .collect();
    assert!(pairs.len() >= jobs * batch, "ER split too small for {jobs} jobs x {batch}");
    pairs.chunks(batch).take(jobs).map(|chunk| Data::List(chunk.to_vec())).collect()
}

struct ArmOutcome {
    jobs_per_sec: f64,
    completed: u64,
    failed: u64,
    p50_ms: f64,
    p95_ms: f64,
    goodput_share: f64,
    faults: u64,
    retries: u64,
    failovers: u64,
    added_backoff_ms: u64,
    breaker_opened: u64,
    breaker_denied: u64,
}

/// Serve the whole workload through a gateway whose primary injects
/// transient faults at `rate`; the standby is clean, so no fault may
/// surface as a job failure.
fn chaos_arm(world: &WorldSpec, inputs: &[Data], rate: f64, workers: usize) -> ArmOutcome {
    let flaky = Arc::new(FaultInjector::new(
        "flaky-primary",
        Arc::new(SimLlm::with_seed(world, SEED)),
        FaultPlan::transient(rate, SEED ^ 0xc4a0),
    ));
    let standby: Arc<SimLlm> = Arc::new(SimLlm::with_seed(world, SEED));
    let gateway = Arc::new(
        Gateway::builder()
            .backend(flaky)
            .backend(Arc::new(ServiceTransport::new("standby", standby)))
            .build(),
    );
    let factory = ContextFactory::new(Arc::clone(&gateway) as Arc<dyn LlmService>);
    let config = ServeConfig {
        workers: Some(workers),
        queue_capacity: inputs.len() + 8,
        // Unique batches; dedup off so every job really runs.
        dedup_inflight: false,
        result_cache_capacity: 0,
        ..Default::default()
    };
    let mut server = PipelineServer::start(factory, config).expect("valid bench config");
    server.attach_gateway(Arc::clone(&gateway));
    server.register_pipeline("match_batch", er_pipeline()).expect("pipeline replicates");

    let start = Instant::now();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| {
            server
                .submit(SubmitRequest::new("match_batch").input("batch", input.clone()))
                .expect("queue sized for the run")
        })
        .collect();
    let mut failed = 0u64;
    for handle in handles {
        if handle.wait().is_err() {
            failed += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let snap = server.metrics();
    let gw = snap.gateway.clone().expect("gateway attached");
    server.shutdown();

    let served: u64 = gw.backends.iter().map(|b| b.counters.served).sum();
    let primary = &gw.backends[0];
    ArmOutcome {
        jobs_per_sec: inputs.len() as f64 / secs,
        completed: snap.completed,
        failed,
        p50_ms: snap.p50_latency_ms,
        p95_ms: snap.p95_latency_ms,
        goodput_share: if gw.requests == 0 { 1.0 } else { served as f64 / gw.requests as f64 },
        faults: gw.faults(),
        retries: gw.retries(),
        failovers: gw.failovers,
        added_backoff_ms: gw.added_backoff_ms(),
        breaker_opened: primary.breaker.opened,
        breaker_denied: primary.breaker.denied,
    }
}

fn main() {
    let jobs = arg_usize("--jobs", 48);
    let batch = arg_usize("--batch", 8);
    let workers = arg_usize("--workers", 4);
    println!(
        "Serving S2: gateway chaos — {jobs} ER jobs x {batch}-pair batches, {workers} workers, \
         flaky primary + clean standby\n"
    );

    let world = WorldSpec::generate(SEED);
    let inputs = er_jobs(&world, jobs, batch);

    // 0/5/20% per the acceptance bar, plus a full outage to trip the breaker.
    let arms: [(f64, &str); 4] =
        [(0.0, "baseline"), (0.05, "5% faults"), (0.20, "20% faults"), (1.0, "primary outage")];

    let mut table = TextTable::new([
        "Arm",
        "Jobs/sec",
        "Failed jobs",
        "Goodput",
        "Faults",
        "Retries",
        "Failovers",
        "Backoff (ms)",
        "p95 (ms)",
        "Breaker open (denials)",
    ]);
    let mut json_rows = Vec::new();
    for (rate, label) in &arms {
        let arm = chaos_arm(&world, &inputs, *rate, workers);
        assert_eq!(arm.failed, 0, "fault rate {rate} leaked a job-level failure");
        assert_eq!(arm.completed, jobs as u64);
        table.row([
            label.to_string(),
            format!("{:.1}", arm.jobs_per_sec),
            arm.failed.to_string(),
            format!("{:.1}%", arm.goodput_share * 100.0),
            arm.faults.to_string(),
            arm.retries.to_string(),
            arm.failovers.to_string(),
            arm.added_backoff_ms.to_string(),
            format!("{:.1}", arm.p95_ms),
            format!("{} ({} denied)", arm.breaker_opened, arm.breaker_denied),
        ]);
        json_rows.push(serde_json::json!({
            "arm": label, "fault_rate": rate,
            "jobs": jobs, "batch": batch, "workers": workers,
            "jobs_per_sec": arm.jobs_per_sec,
            "completed": arm.completed, "failed_jobs": arm.failed,
            "goodput_share": arm.goodput_share,
            "faults": arm.faults, "retries": arm.retries, "failovers": arm.failovers,
            "added_backoff_ms": arm.added_backoff_ms,
            "p50_ms": arm.p50_ms, "p95_ms": arm.p95_ms,
            "breaker_opened": arm.breaker_opened, "breaker_denied": arm.breaker_denied,
        }));
    }
    table.print();
    println!(
        "\nBackoff latency is charged virtually (the workspace never sleeps); the breaker's\n\
         open-time is counted in denied calls, its call-count clock."
    );

    write_json("gateway_chaos", &serde_json::json!({ "rows": json_rows }));
}
