//! **Figure 5** — The paper shows a GUI; a terminal reproduction demonstrates
//! the same interaction surface textually: template search, pipeline
//! inspection, DSL round-tripping, compilation preview, and the module
//! taxonomy behind each operator.

use lingua_bench::write_json;
use lingua_core::prelude::*;
use lingua_core::templates::TemplateRegistry;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use std::sync::Arc;

fn main() {
    println!("Figure 5: the Lingua Manga interaction surface (textual stand-in for the UI)\n");

    // 1. Template search — what a no-code user does first.
    let registry = TemplateRegistry::with_builtins();
    println!("> search templates: \"find person names in text\"");
    for hit in registry.search("find person names in text") {
        println!("  [template] {:<24} {}", hit.name, hit.description);
    }
    println!();

    // 2. Pipeline inspection (the canvas panel of the UI).
    let template = registry.get("name_extraction").expect("builtin");
    println!("> open template `{}`:\n{}\n", template.name, template.pipeline.pretty());

    // 3. The DSL round-trip: edit-as-text is first-class.
    let reparsed = Pipeline::parse(&template.pipeline.pretty()).expect("pretty output reparses");
    assert_eq!(reparsed, template.pipeline);
    println!("> pretty-printed DSL re-parses to the identical pipeline ✓\n");

    // 4. Compilation preview: logical operators -> physical module kinds.
    let world = WorldSpec::generate(5000);
    let llm = Arc::new(SimLlm::with_seed(&world, 5000));
    let mut ctx = ExecContext::new(llm);
    ctx.tools.register("stopwords", lingua_core::tools::stopwords_tool_from_world(&world));
    let compiler = Compiler::with_builtins();
    let physical = compiler.compile(&template.pipeline, &mut ctx).expect("compiles");
    println!("> compile:\n{}", physical.describe());

    // 5. Peek inside an LLMGC binding: the generated code a user can inspect
    //    (the code panel of the UI).
    for (op, module) in &physical.ops {
        if module.kind() == ModuleKind::Llmgc {
            println!("> inspect generated module for `{}`:\n{}", op.op_type, module.describe());
            break;
        }
    }

    write_json(
        "fig5_dsl_surface",
        &serde_json::json!({
            "templates": registry.names().len(),
            "roundtrip_ok": true,
            "ops_compiled": physical.ops.len(),
        }),
    );
}
