//! **Streaming S1** — what windowing buys: incremental, window-scoped
//! blocking versus a never-forgetting baseline, plus a sustained run of the
//! full engine.
//!
//! Two kinds of measurement:
//!
//! * `comparison-work` — a deterministic record stream (finite vocabulary,
//!   bounded-lag duplicates, inline xorshift so every host sees the same
//!   stream) is pushed through (a) the engine's real window assignment +
//!   [`WindowState`] blocking and (b) a *full-rescan* baseline: the same
//!   token blocking, but over an index that never forgets. The baseline is
//!   deliberately generous — it keeps its index incrementally instead of
//!   actually re-scanning, and still its per-record work grows with stream
//!   history because a finite vocabulary makes every block grow without
//!   bound. Counted work (blocking probes), not wall time, so the numbers
//!   are exact and machine-independent. Run across tumbling and sliding
//!   shapes at three window sizes.
//! * `sustained` — 10k records through the real [`StreamEngine`] (serve
//!   jobs, LLM judgments, tracing) with conservation checked at the end.
//!
//! Writes `results/stream_throughput.json`. With `--check-baseline <path>`
//! the run compares the gated metric — the rescan/incremental comparison
//! ratio for the default sliding shape, computed in this same run — against
//! a committed results file and exits nonzero if it fell more than 2x. The
//! ratio is a deterministic count, so the gate never flaps on host speed;
//! `--smoke` shrinks only the sustained arm (the counting arm is cheap and
//! must keep its record count for the ratio to be comparable).

use lingua_bench::{arg_usize, write_json, TextTable};
use lingua_core::ContextFactory;
use lingua_dataset::world::WorldSpec;
use lingua_dataset::{Record, Value};
use lingua_llm_sim::{SimLlm, SimLlmConfig};
use lingua_serve::{ServeConfig, StreamTuning};
use lingua_stream::{
    blocking_keys, closed_through, windows_for, StreamConfig, StreamEngine, StreamItem,
    StreamSource, StreamSpec, SyntheticSource, Watermark, WindowId, WindowState,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0x5eed_517e;
const CAP: usize = 24;
const LATENESS: u64 = 8;
/// The gated shape: the default sliding configuration.
const GATE_WINDOW: u64 = 64;

// ---------------------------------------------------------------------------
// Deterministic stream: finite vocabulary + bounded-lag duplicates, no RNG
// crate so the counts are bit-identical everywhere.
// ---------------------------------------------------------------------------

const ADJ: [&str; 24] = [
    "amber", "black", "blonde", "bright", "cloudy", "copper", "crisp", "dark", "double", "dry",
    "golden", "hazy", "imperial", "mild", "pale", "red", "robust", "session", "smoked", "sour",
    "strong", "summer", "winter", "wild",
];
const NOUN: [&str; 18] = [
    "anchor", "badger", "bear", "canyon", "cascade", "cellar", "creek", "falcon", "harbor",
    "hollow", "iron", "kettle", "meadow", "orchard", "raven", "ridge", "stone", "valley",
];
const STYLE: [&str; 6] = ["ale", "lager", "porter", "stout", "pils", "ipa"];

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Emits `(event_time, key)` pairs: mean inter-arrival of 2 ticks, ~35% of
/// records repeating a key seen within the last 24 emissions (the streaming
/// duplicates), the rest drawn from the 2592-name vocabulary.
struct KeyStream {
    state: u64,
    clock: u64,
    recent: VecDeque<String>,
}

impl KeyStream {
    fn new(seed: u64) -> KeyStream {
        KeyStream { state: seed.max(1), clock: 0, recent: VecDeque::new() }
    }

    fn next(&mut self) -> (u64, String) {
        self.state = xorshift(self.state);
        let s = self.state;
        self.clock += 1 + s % 3;
        let key = if s >> 8 & 0x7f < 45 && !self.recent.is_empty() {
            self.recent[(s >> 16) as usize % self.recent.len()].clone()
        } else {
            format!(
                "{} {} {}",
                ADJ[(s >> 24) as usize % ADJ.len()],
                NOUN[(s >> 32) as usize % NOUN.len()],
                STYLE[(s >> 40) as usize % STYLE.len()],
            )
        };
        self.recent.push_back(key.clone());
        if self.recent.len() > 24 {
            self.recent.pop_front();
        }
        (self.clock, key)
    }

    fn take(seed: u64, n: usize) -> Vec<(u64, String)> {
        let mut stream = KeyStream::new(seed);
        (0..n).map(|_| stream.next()).collect()
    }
}

fn item(index: usize, t: u64, key: &str) -> StreamItem {
    StreamItem {
        event_time: t,
        entity: index as u64,
        record: Record::new(vec![Value::Str(key.to_string())]),
    }
}

// ---------------------------------------------------------------------------
// The two counting arms.
// ---------------------------------------------------------------------------

/// Total blocking probes paid by the engine's real path: window assignment,
/// watermark-driven forgetting, window-scoped `WindowState` blocking.
fn incremental_comparisons(stream: &[(u64, String)], tuning: StreamTuning) -> u64 {
    let mut open: BTreeMap<u64, WindowState> = BTreeMap::new();
    let mut watermark = Watermark::new();
    let mut max_event_time = 0u64;
    let mut since = 0u64;
    let mut total = 0u64;
    for (index, (t, key)) in stream.iter().enumerate() {
        max_event_time = max_event_time.max(*t);
        let floor = closed_through(&tuning, watermark.get());
        for k in windows_for(&tuning, *t) {
            if floor.is_some_and(|f| k <= f) {
                continue;
            }
            let window = open.entry(k).or_insert_with(|| WindowState::new(WindowId(k)));
            let outcome = window.insert(item(index, *t, key), 0, CAP);
            total += outcome.candidates.len() as u64;
        }
        since += 1;
        if since >= tuning.watermark_interval {
            since = 0;
            if watermark.advance(max_event_time.saturating_sub(LATENESS)) {
                if let Some(through) = closed_through(&tuning, watermark.get()) {
                    let ready: Vec<u64> = open.range(..=through).map(|(k, _)| *k).collect();
                    for k in ready {
                        open.remove(&k);
                    }
                }
            }
        }
    }
    total
}

/// The full-rescan baseline: identical token blocking, but the index spans
/// the whole accumulated corpus and never drops a record. Uncapped, because
/// a baseline that skipped oversized blocks would silently lose the recall
/// the windowed path keeps.
fn rescan_comparisons(stream: &[(u64, String)]) -> u64 {
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut total = 0u64;
    for (index, (_, key)) in stream.iter().enumerate() {
        let mut partners: BTreeSet<usize> = BTreeSet::new();
        for token in blocking_keys(key) {
            let block = blocks.entry(token).or_default();
            partners.extend(block.iter().copied());
            block.push(index);
        }
        total += partners.len() as u64;
    }
    total
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let comparison_records = arg_usize("--records", 10_000);
    let sustained_records = arg_usize("--sustained", if smoke { 2_000 } else { 10_000 });

    let stream = KeyStream::take(SEED, comparison_records);
    let mut table = TextTable::new(["shape", "window", "slide", "incremental", "rescan", "ratio"]);
    let mut rows = Vec::new();
    let mut gate_ratio = 0.0f64;
    let rescan = rescan_comparisons(&stream);
    for window in [32u64, 64, 128] {
        for (shape, slide) in [("tumbling", window), ("sliding", window / 2)] {
            let tuning = StreamTuning { window, slide, watermark_interval: 8 };
            let incremental = incremental_comparisons(&stream, tuning);
            let ratio = rescan as f64 / incremental.max(1) as f64;
            if shape == "sliding" && window == GATE_WINDOW {
                gate_ratio = ratio;
            }
            table.row([
                shape.to_string(),
                window.to_string(),
                slide.to_string(),
                incremental.to_string(),
                rescan.to_string(),
                format!("{ratio:.1}x"),
            ]);
            rows.push(serde_json::json!({
                "shape": shape, "window": window, "slide": slide,
                "records": comparison_records,
                "incremental_comparisons": incremental,
                "rescan_comparisons": rescan,
                "ratio": ratio,
            }));
        }
    }
    table.print();
    println!(
        "\nShape: the windowed path's probes are bounded by window occupancy, so its \
         total is ~linear in records; the never-forgetting baseline's blocks grow \
         with history (finite vocabulary), so its total is ~quadratic. The ratio is \
         a deterministic count — identical on every host."
    );

    // ---------------------------------------------------------------------
    // Sustained run: the real engine end to end.
    // ---------------------------------------------------------------------
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let mut source = SyntheticSource::new(&world, StreamSpec { seed: SEED, ..Default::default() });
    let schema = source.schema().clone();
    let config = StreamConfig {
        tuning: StreamTuning { window: GATE_WINDOW, slide: GATE_WINDOW / 2, watermark_interval: 8 },
        serve: ServeConfig { workers: Some(4), ..ServeConfig::default() },
        ..StreamConfig::default()
    };
    let engine =
        StreamEngine::start(ContextFactory::new(llm), schema, config).expect("bench engine starts");
    let records = source.take_records(sustained_records);
    let started = Instant::now();
    for record in records {
        engine.ingest(record).expect("bench ingest");
    }
    let reports = engine.finish().expect("bench drain");
    let elapsed = started.elapsed();
    let snap = engine.metrics();
    assert!(snap.record_conservation_holds(), "{}", snap.report());
    assert!(snap.window_conservation_holds(), "{}", snap.report());
    let records_per_sec = sustained_records as f64 / elapsed.as_secs_f64();
    println!(
        "\nsustained: {} records in {:.0} ms ({records_per_sec:.0} rec/s), {} windows, \
         {} judged, {} matched",
        sustained_records,
        elapsed.as_secs_f64() * 1e3,
        reports.len(),
        snap.pairs_judged,
        snap.pairs_matched,
    );
    println!("{}", snap.report());

    write_json(
        "stream_throughput",
        &serde_json::json!({
            "smoke": smoke,
            "comparison_records": comparison_records,
            "gate_metric": "rescan/incremental blocking-probe ratio, sliding window=64 \
                            (deterministic count, machine-independent)",
            "gate_ratio": gate_ratio,
            "rows": rows,
            "sustained": {
                "records": sustained_records,
                "elapsed_ms": elapsed.as_secs_f64() * 1e3,
                "records_per_sec": records_per_sec,
                "windows_closed": snap.windows_closed,
                "comparisons": snap.comparisons,
                "pairs_judged": snap.pairs_judged,
                "pairs_matched": snap.pairs_matched,
                "late_dropped": snap.late_dropped,
                "record_conservation": snap.record_conservation_holds(),
                "window_conservation": snap.window_conservation_holds(),
            },
        }),
    );

    if let Some(path) = flag_value("--check-baseline") {
        match read_baseline_gate(&path) {
            Some(baseline) => {
                println!(
                    "\nRegression gate: rescan/incremental ratio = {gate_ratio:.1}x \
                     vs baseline {baseline:.1}x"
                );
                if gate_ratio < baseline / 2.0 {
                    eprintln!(
                        "REGRESSION: the windowed path's advantage over the \
                         never-forgetting baseline fell more than 2x below the \
                         committed ratio — per-record work is no longer O(window)"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no usable baseline at {path}; skipping the regression gate");
            }
        }
    }
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pull the gated metric out of a committed results file without a JSON
/// parser: the writer emits `"gate_ratio": <value>`.
fn read_baseline_gate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"gate_ratio\"")?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}
