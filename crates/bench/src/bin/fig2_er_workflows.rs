//! **Figure 2** — Two possible entity-resolution workflows: (a) a custom
//! pipeline the user writes in the DSL, (b) the built-in template. Both
//! compile to physical modules and run end-to-end on a real CSV; the demo
//! shows they bind to the same module kinds and produce the same matches.

use lingua_bench::write_json;
use lingua_core::executor::Executor;
use lingua_core::prelude::*;
use lingua_core::templates::TemplateRegistry;
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_dataset::{csv, Record, Schema, Table};
use lingua_llm_sim::SimLlm;
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let world = WorldSpec::generate(42);
    let llm = Arc::new(SimLlm::with_seed(&world, 42));

    // A small paired CSV for the demo (left/right record columns + id).
    let split = generate(&world, ErDataset::BeerAdvoRateBeer, 1);
    let dir = std::env::temp_dir().join("lingua_fig2");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let input_path = dir.join("pairs.csv");
    let output_path = dir.join("matches.csv");
    write_pairs_csv(&split.schema, &split.test[..20], &input_path);

    // -- Figure 2a: the custom pipeline, written in the DSL ------------------
    let dsl = format!(
        r#"
        pipeline custom_er {{
            pairs = load_csv() with {{ path: "{}" }};
            matches = entity_resolution(pairs) with {{
                desc: "Please determine if the following two records refer to the same entity.";
                output: "yesno";
                builder: "pair";
            }};
            save_csv(matches) with {{ path: "{}" }};
        }}
        "#,
        input_path.display(),
        output_path.display()
    );
    let custom = Pipeline::parse(&dsl).expect("DSL parses");
    println!("--- Figure 2a: custom pipeline (user-authored DSL) ---\n{}\n", custom.pretty());

    // -- Figure 2b: the built-in template -------------------------------------
    let registry = TemplateRegistry::with_builtins();
    let hits = registry.search("entity resolution");
    let template = hits.first().expect("template found");
    println!(
        "--- Figure 2b: built-in template `{}` ---\n{}\n",
        template.name,
        template.pipeline.pretty()
    );

    // Compile both and compare bindings.
    let mut compiler = Compiler::with_builtins();
    register_er_op(&mut compiler);
    let mut ctx = ExecContext::new(llm.clone());
    let mut physical_custom = compiler.compile(&custom, &mut ctx).expect("custom compiles");
    let physical_template =
        compiler.compile(&template.pipeline, &mut ctx).expect("template compiles");
    println!("--- Compiled bindings ---");
    println!("{}", physical_custom.describe());
    println!("{}", physical_template.describe());

    // Run the custom pipeline end-to-end.
    let report =
        Executor::run(&mut physical_custom, &mut ctx, BTreeMap::new()).expect("pipeline runs");
    let matches = report.get("matches").expect("matches var").as_table().expect("table").clone();
    println!("--- Execution ---");
    println!("{}", report.summary());
    println!("output preview:\n{}", matches.preview(5));

    let match_count = matches
        .column("is_match")
        .map(|col| col.iter().filter(|v| v.as_bool() == Some(true)).count())
        .unwrap_or(0);
    println!(
        "{match_count} of {} pairs judged matches; results in {}",
        matches.len(),
        output_path.display()
    );

    write_json(
        "fig2_er_workflows",
        &serde_json::json!({
            "pairs": matches.len(),
            "matches": match_count,
            "llm_calls": report.llm_calls(),
            "custom_ops": custom.ops.len(),
            "template_ops": template.pipeline.ops.len(),
        }),
    );
}

/// Register the record-pair `entity_resolution` physical op used by the demo:
/// wraps the compiler's LLM binding to map over table rows.
fn register_er_op(compiler: &mut Compiler) {
    let inner = Compiler::with_builtins();
    compiler.register("entity_resolution", move |op, ctx| {
        // Bind the underlying LLM pair-judgment module from the same params.
        let mut judge = inner.bind(
            &LogicalOp::new("entity_resolution_judge")
                .using(ModuleKind::Llm)
                .param("desc", op.params.get("desc").cloned().unwrap_or_default())
                .param("output", "yesno")
                .param("builder", "pair"),
            ctx,
        )?;
        Ok(Box::new(lingua_core::modules::CustomModule::new(
            "entity_resolution",
            move |input, ctx| {
                let table = input.as_table()?;
                let mut out = table.clone();
                let judged: Result<Vec<Data>, CoreError> = table
                    .rows()
                    .iter()
                    .map(|row| {
                        let (a, b) = split_pair_row(table.schema(), row);
                        judge.invoke(Data::map([("a".to_string(), a), ("b".to_string(), b)]), ctx)
                    })
                    .collect();
                let judged = judged?;
                let mut index = 0;
                out.add_column("is_match", lingua_dataset::ColumnType::Bool, |_row| {
                    let verdict = judged[index].as_bool().unwrap_or(false);
                    index += 1;
                    lingua_dataset::Value::Bool(verdict)
                });
                Ok(Data::Table(out))
            },
        )) as Box<dyn Module>)
    });
}

/// Split a `left_*`/`right_*` row into two record descriptions.
fn split_pair_row(schema: &Schema, row: &Record) -> (Data, Data) {
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (i, value) in row.iter().enumerate() {
        let name = schema.name(i);
        if let Some(field) = name.strip_prefix("left_") {
            a.push(format!("{field}: {}", value.render()));
        } else if let Some(field) = name.strip_prefix("right_") {
            b.push(format!("{field}: {}", value.render()));
        }
    }
    (Data::Str(a.join("; ")), Data::Str(b.join("; ")))
}

/// Serialize labeled pairs to a `left_*`/`right_*` CSV.
fn write_pairs_csv(
    schema: &Schema,
    pairs: &[lingua_dataset::labels::LabeledPair],
    path: &std::path::Path,
) {
    let mut names: Vec<String> = Vec::new();
    for side in ["left", "right"] {
        for col in schema.names() {
            names.push(format!("{side}_{col}"));
        }
    }
    let mut table = Table::new("pairs", Schema::of_names(names));
    for pair in pairs {
        let mut cells = pair.left.values().to_vec();
        cells.extend(pair.right.values().to_vec());
        table.push(Record::new(cells)).expect("arity");
    }
    csv::write_path(&table, path).expect("write csv");
}
