//! **Ablation A1** — Label efficiency: the paper claims users can build
//! solutions "with no or only a few labeled examples ... while still
//! achieving accuracy comparable to the SOTA ML-based methods trained with
//! thousands of labels" (§1). This sweep trains the supervised matcher on k
//! labeled pairs and gives Lingua Manga k in-context examples, for growing k.

use lingua_bench::{arg_usize, write_json, SeriesSet, TextTable};
use lingua_core::ExecContext;
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::labels::PairSplit;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::er::ditto::DittoMatcher;
use lingua_tasks::er::evaluate;
use lingua_tasks::er::lingua::{LinguaErConfig, LinguaMatcher};
use std::sync::Arc;

const LABEL_BUDGETS: [usize; 5] = [2, 4, 8, 32, 128];

fn main() {
    let seeds = arg_usize("--seeds", 3);
    let dataset = ErDataset::ItunesAmazon;
    println!("Ablation A1: label efficiency on {} (mean over {seeds} seed(s))\n", dataset.name());

    let mut series = SeriesSet::default();
    for seed in 0..seeds as u64 {
        let world = WorldSpec::generate(6000 + seed);
        let split = generate(&world, dataset, seed);
        let llm = Arc::new(SimLlm::with_seed(&world, 6000 + seed));
        let mut ctx = ExecContext::new(llm);

        for &budget in &LABEL_BUDGETS {
            // Supervised matcher restricted to `budget` labeled pairs (keep
            // the class mix by taking a balanced prefix).
            let limited = limit_labels(&split, budget);
            if limited.train.iter().any(|p| p.label) && limited.train.iter().any(|p| !p.label) {
                let mut supervised = DittoMatcher::train(&limited, seed);
                series.push(
                    &format!("supervised@{budget}"),
                    evaluate(&mut supervised, &split, &mut ctx).f1(),
                );
            } else {
                series.push(&format!("supervised@{budget}"), 0.0);
            }

            // Lingua Manga with the same budget as in-context examples.
            let mut lingua = LinguaMatcher::build(
                &split.schema,
                &split.train[..budget.min(split.train.len())],
                &LinguaErConfig { examples: budget.min(8), simulate: false },
            );
            series.push(&format!("lingua@{budget}"), evaluate(&mut lingua, &split, &mut ctx).f1());
        }
        // The full-label ceiling.
        let mut full = DittoMatcher::train(&split, seed);
        series.push("supervised@full", evaluate(&mut full, &split, &mut ctx).f1());
    }

    let mut table = TextTable::new(["Labels k", "Supervised (Ditto-style)", "Lingua Manga"]);
    for &budget in &LABEL_BUDGETS {
        table.row([
            budget.to_string(),
            format!("{:.2}", series.mean(&format!("supervised@{budget}")) * 100.0),
            format!("{:.2}", series.mean(&format!("lingua@{budget}")) * 100.0),
        ]);
    }
    table.row([
        format!("{} (full)", 323),
        format!("{:.2}", series.mean("supervised@full") * 100.0),
        "-".to_string(),
    ]);
    table.print();

    let lingua_at_4 = series.mean("lingua@4");
    let supervised_full = series.mean("supervised@full");
    println!(
        "\nShape: with 4 labels Lingua Manga reaches {:.1} F1 — {:.1} points off the \
         fully-supervised ceiling ({:.1}), while the supervised matcher needs two orders \
         of magnitude more labels to close the gap.",
        lingua_at_4 * 100.0,
        (supervised_full - lingua_at_4) * 100.0,
        supervised_full * 100.0
    );
    write_json(
        "ablation_label_efficiency",
        &serde_json::json!({ "seeds": seeds, "dataset": dataset.name(), "series": series.to_json() }),
    );
}

/// Take a balanced subset of `k` training labels (pairs) from the split.
fn limit_labels(split: &PairSplit, k: usize) -> PairSplit {
    let positives = split.train.iter().filter(|p| p.label);
    let negatives = split.train.iter().filter(|p| !p.label);
    let half = k / 2;
    let train: Vec<_> = positives.take(k - half).chain(negatives.take(half)).cloned().collect();
    PairSplit {
        schema: split.schema.clone(),
        train,
        valid: split.valid[..split.valid.len().min(k)].to_vec(),
        test: split.test.clone(),
    }
}
