//! **Figure 4** — The expert's data-imputation pipeline: an LLMGC module with
//! generated rules, an LLM fallback for hard cases, and the Validator's
//! repair cycle. This demo shows the artifacts themselves: the generated
//! code, the validation history, and the per-row routing economics.

use lingua_bench::write_json;
use lingua_core::ExecContext;
use lingua_dataset::generators::imputation::generate;
use lingua_dataset::world::{BrandMention, WorldSpec};
use lingua_llm_sim::SimLlm;
use lingua_tasks::imputation::lingua::{register_tools, LinguaImputer};
use lingua_tasks::imputation::Imputer;
use std::sync::Arc;

fn main() {
    let world = WorldSpec::generate(4000);
    let benchmark = generate(&world, 0);
    let llm = Arc::new(SimLlm::with_seed(&world, 4000));
    let mut ctx = ExecContext::new(llm);
    register_tools(&mut ctx, &benchmark.vocabulary);

    println!("Figure 4: the data-imputation pipeline (LLMGC rules + LLM fallback)\n");
    let build_calls_before = ctx.llm.usage().calls;
    let mut imputer = LinguaImputer::build(&mut ctx).expect("build + validation");
    let build_calls = ctx.llm.usage().calls - build_calls_before;

    println!("--- generated module (after validation) ---\n{}", imputer.source());
    println!(
        "--- validation ---\ncycles: {}, regenerations: {}, failure history: {:?}, \
         construction cost: {build_calls} LLM call(s)\n",
        imputer.validation.cycles,
        imputer.validation.regenerations,
        imputer.validation.failure_history
    );

    // Routing economics per difficulty class.
    let mut stats: Vec<(&str, usize, usize, usize)> = vec![
        ("brand in name", 0, 0, 0),
        ("brand in description", 0, 0, 0),
        ("knowledge only (hard)", 0, 0, 0),
    ];
    for ((row, truth), mention) in
        benchmark.table.rows().iter().zip(&benchmark.truth).zip(&benchmark.mentions)
    {
        let before = ctx.llm.usage().calls;
        let answer = imputer.impute(&row[0].render(), &row[1].render(), &mut ctx);
        let calls = (ctx.llm.usage().calls - before) as usize;
        let idx = match mention {
            BrandMention::InName => 0,
            BrandMention::InDescription => 1,
            BrandMention::KnowledgeOnly => 2,
        };
        stats[idx].1 += 1;
        stats[idx].2 += calls;
        stats[idx].3 += usize::from(&answer == truth);
    }

    println!("--- per-row routing ---");
    let mut total_rows = 0;
    let mut total_calls = 0;
    let mut total_correct = 0;
    for (label, rows, calls, correct) in &stats {
        println!(
            "{label:<24} rows {rows:>4}   llm calls {calls:>4}   accuracy {:.1}%",
            *correct as f64 / (*rows).max(1) as f64 * 100.0
        );
        total_rows += rows;
        total_calls += calls;
        total_correct += correct;
    }
    println!(
        "\noverall: accuracy {:.2}% with {:.3} LLM calls/row — the rules absorb the easy \
         five-sixths; only the hard rows pay for the LLM (paper: 94.48% at ~1/6 calls).",
        total_correct as f64 / total_rows as f64 * 100.0,
        total_calls as f64 / total_rows as f64
    );

    write_json(
        "fig4_imputation_pipeline",
        &serde_json::json!({
            "validation_cycles": imputer.validation.cycles,
            "regenerations": imputer.validation.regenerations,
            "accuracy": total_correct as f64 / total_rows as f64,
            "calls_per_row": total_calls as f64 / total_rows as f64,
            "routing": stats.iter().map(|(label, rows, calls, correct)| {
                serde_json::json!({"class": label, "rows": rows, "calls": calls, "correct": correct})
            }).collect::<Vec<_>>(),
        }),
    );
}
