//! **Table 1** — Quantitative Experiment on Entity Resolution.
//!
//! Reproduces the paper's F1 comparison of Magellan / Ditto / FMs /
//! Lingua Manga on BeerAdvo-RateBeer, Fodors-Zagats, and iTunes-Amazon,
//! averaged over `--seeds N` (default 5) world seeds.
//!
//! Paper reference values:
//!
//! | Dataset           | Magellan | Ditto  | FMs  | Lingua Manga |
//! |-------------------|----------|--------|------|--------------|
//! | BeerAdvo-RateBeer | 78.8     | 94.37  | 78.6 | 89.66        |
//! | Fodors-Zagats     | 100.0    | 100.00 | 87.2 | 95.65        |
//! | iTunes-Amazon     | 91.2     | 97.06  | 65.9 | 92.00        |

use lingua_bench::{arg_usize, fmt_mean_std, write_json, SeriesSet, TextTable};
use lingua_core::ExecContext;
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::er::ditto::DittoMatcher;
use lingua_tasks::er::evaluate;
use lingua_tasks::er::fms::FmsMatcher;
use lingua_tasks::er::lingua::{LinguaErConfig, LinguaMatcher};
use lingua_tasks::er::magellan::MagellanMatcher;
use std::sync::Arc;

fn paper_reference(dataset: ErDataset) -> [f64; 4] {
    match dataset {
        ErDataset::BeerAdvoRateBeer => [78.8, 94.37, 78.6, 89.66],
        ErDataset::FodorsZagats => [100.0, 100.00, 87.2, 95.65],
        ErDataset::ItunesAmazon => [91.2, 97.06, 65.9, 92.00],
    }
}

fn main() {
    let seeds = arg_usize("--seeds", 5);
    println!("Table 1: Entity Resolution F1 (x100), mean over {seeds} seed(s)\n");

    let mut json_rows = Vec::new();
    let mut table = TextTable::new([
        "Dataset",
        "Magellan",
        "Ditto",
        "FMs",
        "Lingua Manga",
        "(paper: Mag/Ditto/FMs/LM)",
    ]);

    for dataset in ErDataset::ALL {
        let mut series = SeriesSet::default();
        for seed in 0..seeds as u64 {
            let world = WorldSpec::generate(1000 + seed);
            let split = generate(&world, dataset, 77 + seed);
            let llm = Arc::new(SimLlm::with_seed(&world, 1000 + seed));
            let mut ctx = ExecContext::new(llm);

            let mut magellan = MagellanMatcher::train(&split, seed);
            series.push("magellan", evaluate(&mut magellan, &split, &mut ctx).f1());

            let mut ditto = DittoMatcher::train(&split, seed);
            series.push("ditto", evaluate(&mut ditto, &split, &mut ctx).f1());

            let mut fms = FmsMatcher;
            series.push("fms", evaluate(&mut fms, &split, &mut ctx).f1());

            let mut lingua =
                LinguaMatcher::build(&split.schema, &split.train, &LinguaErConfig::default());
            series.push("lingua", evaluate(&mut lingua, &split, &mut ctx).f1());
        }

        let paper = paper_reference(dataset);
        table.row([
            dataset.name().to_string(),
            fmt_mean_std(series.get("magellan"), 100.0),
            fmt_mean_std(series.get("ditto"), 100.0),
            fmt_mean_std(series.get("fms"), 100.0),
            fmt_mean_std(series.get("lingua"), 100.0),
            format!("{:.1}/{:.1}/{:.1}/{:.1}", paper[0], paper[1], paper[2], paper[3]),
        ]);
        json_rows.push(serde_json::json!({
            "dataset": dataset.name(),
            "measured": series.to_json(),
            "paper": {
                "magellan": paper[0], "ditto": paper[1], "fms": paper[2], "lingua": paper[3],
            },
        }));
    }

    table.print();
    println!(
        "\nShape checks: Ditto is the supervised ceiling; FMs trails everything; \
         Lingua Manga sits between FMs and Ditto with only {} in-context labels.",
        LinguaErConfig::default().examples
    );
    write_json(
        "table1_entity_resolution",
        &serde_json::json!({ "seeds": seeds, "rows": json_rows }),
    );
}
