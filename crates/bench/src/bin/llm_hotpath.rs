//! **Hot path H1** — contended throughput of the LLM service cache: the
//! sharded, coalescing `SimLlm` hot path against a faithful replica of the
//! pre-change single-mutex design, at 1/2/4/8 threads across three arms:
//!
//! * `hit-heavy` — a warmed pool of distinct prompts hammered from every
//!   thread; ~100% cache hits. This is the serving steady state and the
//!   regression-gated metric.
//! * `miss-heavy` — every call a distinct prompt against a small cache;
//!   measures the insert/evict path under contention.
//! * `coalesce-storm` — all threads request the *same fresh* prompt at the
//!   same instant, repeatedly; the sharded path computes each prompt once
//!   (singleflight) while the legacy path computes it once per racing thread.
//!
//! The legacy engine below replicates the old `SimLlm::complete` exactly:
//! one global `parking_lot::Mutex` over a `HashMap` + FIFO `VecDeque`, a
//! `String` clone per hit, and both `count_tokens` calls made *under* the
//! lock. Misses route through a cache-disabled `SimLlm` so both engines pay
//! identical compute for a cold prompt; only the cache layer differs.
//!
//! Writes `results/llm_hotpath.json`. With `--check-baseline <path>` the run
//! compares the gated metric — the sharded/legacy hit-heavy *speedup ratio*
//! at 8 threads, measured between the two engines in this same process so
//! host speed cancels out — against a previously committed results file and
//! exits nonzero if the ratio fell more than 2x (absolute ops/sec from a
//! different machine would make the gate flap on shared CI runners).
//! `--smoke` shrinks iteration counts for CI.

use lingua_bench::{arg_usize, mean, write_json, TextTable};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::cost::count_tokens;
use lingua_llm_sim::{fingerprint, CompletionRequest, LlmService, SimLlm, SimLlmConfig, Usage};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const SEED: u64 = 9400;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The regression-gated arm: sharded hit-heavy throughput at this many threads.
const GATE_THREADS: usize = 8;

// ---------------------------------------------------------------------------
// The legacy engine: the exact pre-change hot path, kept here as the bench
// baseline so the comparison survives the refactor it measures.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct LegacyState {
    usage: Usage,
    cache: HashMap<u64, String>,
    cache_order: VecDeque<u64>,
}

/// Single-mutex FIFO cache in front of a cache-disabled `SimLlm`, mirroring
/// the old `SimLlm::complete`: fingerprint per call, `HashMap` lookup, owned
/// `String` clone and two `count_tokens` scans under the one global lock.
struct MutexLlm {
    inner: SimLlm,
    capacity: usize,
    state: Mutex<LegacyState>,
}

impl MutexLlm {
    fn new(world: &WorldSpec, capacity: usize) -> MutexLlm {
        let inner = SimLlm::new(
            world,
            SimLlmConfig { seed: SEED, cache_enabled: false, ..Default::default() },
        );
        MutexLlm { inner, capacity, state: Mutex::new(LegacyState::default()) }
    }
}

trait Engine: Send + Sync {
    fn complete_text(&self, prompt: &str) -> String;
    /// Billed (non-cached) calls, for the coalesce-storm redundancy count.
    fn billed_calls(&self) -> u64;
}

impl Engine for MutexLlm {
    fn complete_text(&self, prompt: &str) -> String {
        let key = fingerprint(prompt);
        {
            let mut state = self.state.lock();
            if let Some(hit) = state.cache.get(&key) {
                let hit = hit.clone();
                state.usage.record_cached(count_tokens(prompt), count_tokens(&hit));
                return hit;
            }
        }
        let response = self.inner.complete(&CompletionRequest::new(prompt));
        let mut state = self.state.lock();
        if state.cache.insert(key, response.clone()).is_none() {
            state.cache_order.push_back(key);
            while state.cache.len() > self.capacity {
                match state.cache_order.pop_front() {
                    Some(oldest) => state.cache.remove(&oldest),
                    None => break,
                };
            }
        }
        response
    }

    fn billed_calls(&self) -> u64 {
        self.inner.usage().calls
    }
}

impl Engine for SimLlm {
    fn complete_text(&self, prompt: &str) -> String {
        self.complete(&CompletionRequest::new(prompt))
    }

    fn billed_calls(&self) -> u64 {
        self.usage().calls
    }
}

fn sharded_llm(world: &WorldSpec, capacity: usize) -> SimLlm {
    SimLlm::new(
        world,
        SimLlmConfig {
            seed: SEED,
            cache_enabled: true,
            cache_capacity: capacity,
            ..Default::default()
        },
    )
}

// ---------------------------------------------------------------------------
// Arms
// ---------------------------------------------------------------------------

fn pool_prompt(i: usize) -> String {
    // Sized like a real curation prompt: task preamble plus a record payload.
    format!(
        "Summarize. Text: service handbook chapter {i} covering retries, \
         backoff policy, cache admission and eviction for tenant workloads. \
         The chapter walks through connection pooling, request hedging and \
         deadline propagation, then catalogues the failure modes observed in \
         production: thundering herds after cache flushes, retry storms \
         amplifying partial outages, and slow-start collapse when a cold \
         replica joins a hot pool under peak load"
    )
}

/// Warm the pool single-threaded, then hammer it from `threads` threads,
/// each walking the pool at its own stride so every call is a cache hit.
fn run_hit_heavy(engine: Arc<dyn Engine>, threads: usize, pool: usize, iters: usize) -> f64 {
    let prompts: Arc<Vec<String>> = Arc::new((0..pool).map(pool_prompt).collect());
    for p in prompts.iter() {
        engine.complete_text(p);
    }
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let prompts = Arc::clone(&prompts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    let p = &prompts[(i * (2 * t + 1) + t) % prompts.len()];
                    std::hint::black_box(engine.complete_text(p));
                }
            })
        })
        .collect();
    // Clock starts before the release so a delayed reschedule of this thread
    // cannot shave worker time off the measurement (workers are all parked
    // at the barrier until the wait below arrives).
    let start = Instant::now();
    barrier.wait();
    for handle in handles {
        handle.join().unwrap();
    }
    (threads * iters) as f64 / start.elapsed().as_secs_f64()
}

/// Every call a brand-new prompt: all misses, with FIFO/LRU eviction churn
/// once the per-run prompt counter outruns the small capacity.
fn run_miss_heavy(engine: Arc<dyn Engine>, threads: usize, iters: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    let p =
                        format!("Summarize. Text: cold document {t}-{i} never requested before");
                    std::hint::black_box(engine.complete_text(&p));
                }
            })
        })
        .collect();
    let start = Instant::now();
    barrier.wait();
    for handle in handles {
        handle.join().unwrap();
    }
    (threads * iters) as f64 / start.elapsed().as_secs_f64()
}

/// All threads ask for the same fresh prompt at the same instant, one storm
/// per round. Returns (ops/sec, billed calls): singleflight computes each
/// round once; the legacy path computes it up to once per thread.
fn run_coalesce_storm(engine: Arc<dyn Engine>, threads: usize, rounds: usize) -> (f64, u64) {
    let billed_before = engine.billed_calls();
    let start = Instant::now();
    for round in 0..rounds {
        let barrier = Arc::new(Barrier::new(threads));
        let prompt = Arc::new(format!("Summarize. Text: breaking storm bulletin number {round}"));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let prompt = Arc::clone(&prompt);
                std::thread::spawn(move || {
                    barrier.wait();
                    std::hint::black_box(engine.complete_text(&prompt));
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ((threads * rounds) as f64 / secs, engine.billed_calls() - billed_before)
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pull the gated metric out of a previously committed results file without
/// needing a JSON parser: the writer emits `"gate_speedup": <value>`.
fn read_baseline_gate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"gate_speedup\"")?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn main() {
    let smoke = has_flag("--smoke");
    let reps = arg_usize("--reps", if smoke { 1 } else { 3 });
    let pool = arg_usize("--pool", 64);
    let capacity = arg_usize("--capacity", 1024);
    let miss_capacity = arg_usize("--miss-capacity", 128);
    let hit_iters = arg_usize("--hit-iters", if smoke { 2_000 } else { 20_000 });
    let miss_iters = arg_usize("--miss-iters", if smoke { 300 } else { 2_000 });
    let storm_rounds = arg_usize("--storm-rounds", if smoke { 20 } else { 120 });
    println!(
        "Hot path H1: sharded+coalescing vs single-mutex FIFO cache \
         ({} reps{})\n",
        reps,
        if smoke { ", smoke" } else { "" }
    );

    let world = WorldSpec::generate(SEED);
    let mut table = TextTable::new(["Arm", "Threads", "Legacy ops/s", "Sharded ops/s", "Speedup"]);
    let mut rows = Vec::new();
    let mut gate_ops = 0.0f64;
    let mut gate_speedup = 0.0f64;

    for &threads in &THREAD_COUNTS {
        let mut legacy_rates = Vec::with_capacity(reps);
        let mut sharded_rates = Vec::with_capacity(reps);
        for _ in 0..reps {
            let legacy = Arc::new(MutexLlm::new(&world, capacity));
            legacy_rates.push(run_hit_heavy(legacy, threads, pool, hit_iters));
            let sharded = Arc::new(sharded_llm(&world, capacity));
            sharded_rates.push(run_hit_heavy(sharded, threads, pool, hit_iters));
        }
        let (legacy_ops, sharded_ops) = (mean(&legacy_rates), mean(&sharded_rates));
        if threads == GATE_THREADS {
            gate_ops = sharded_ops;
            gate_speedup = sharded_ops / legacy_ops;
        }
        table.row([
            "hit-heavy".into(),
            threads.to_string(),
            format!("{legacy_ops:.0}"),
            format!("{sharded_ops:.0}"),
            format!("{:.2}x", sharded_ops / legacy_ops),
        ]);
        rows.push(serde_json::json!({
            "arm": "hit_heavy", "threads": threads,
            "legacy_ops_per_sec": legacy_ops, "sharded_ops_per_sec": sharded_ops,
            "speedup": sharded_ops / legacy_ops,
        }));
    }

    for &threads in &THREAD_COUNTS {
        let mut legacy_rates = Vec::with_capacity(reps);
        let mut sharded_rates = Vec::with_capacity(reps);
        for _ in 0..reps {
            let legacy = Arc::new(MutexLlm::new(&world, miss_capacity));
            legacy_rates.push(run_miss_heavy(legacy, threads, miss_iters));
            let sharded = Arc::new(sharded_llm(&world, miss_capacity));
            sharded_rates.push(run_miss_heavy(sharded, threads, miss_iters));
        }
        let (legacy_ops, sharded_ops) = (mean(&legacy_rates), mean(&sharded_rates));
        table.row([
            "miss-heavy".into(),
            threads.to_string(),
            format!("{legacy_ops:.0}"),
            format!("{sharded_ops:.0}"),
            format!("{:.2}x", sharded_ops / legacy_ops),
        ]);
        rows.push(serde_json::json!({
            "arm": "miss_heavy", "threads": threads,
            "legacy_ops_per_sec": legacy_ops, "sharded_ops_per_sec": sharded_ops,
            "speedup": sharded_ops / legacy_ops,
        }));
    }

    for &threads in &THREAD_COUNTS {
        let legacy = Arc::new(MutexLlm::new(&world, capacity));
        let (legacy_ops, legacy_billed) =
            run_coalesce_storm(Arc::clone(&legacy) as Arc<dyn Engine>, threads, storm_rounds);
        let sharded = Arc::new(sharded_llm(&world, capacity));
        let (sharded_ops, sharded_billed) =
            run_coalesce_storm(Arc::clone(&sharded) as Arc<dyn Engine>, threads, storm_rounds);
        table.row([
            "coalesce-storm".into(),
            threads.to_string(),
            format!("{legacy_ops:.0} ({legacy_billed} billed)"),
            format!("{sharded_ops:.0} ({sharded_billed} billed)"),
            format!("{:.2}x", sharded_ops / legacy_ops),
        ]);
        rows.push(serde_json::json!({
            "arm": "coalesce_storm", "threads": threads,
            "legacy_ops_per_sec": legacy_ops, "sharded_ops_per_sec": sharded_ops,
            "legacy_billed_calls": legacy_billed, "sharded_billed_calls": sharded_billed,
            "rounds": storm_rounds,
        }));
    }

    table.print();
    println!(
        "\nShape: hits on the sharded path return a clone-free Arc<str> with \
         precomputed token counts, so the legacy path's per-hit String clone \
         and double count_tokens scan under one global mutex is the gap; the \
         storm arm additionally shows singleflight billing each prompt once \
         where the legacy cache computes it per racing thread."
    );

    write_json(
        "llm_hotpath",
        &serde_json::json!({
            "smoke": smoke, "reps": reps, "pool": pool, "capacity": capacity,
            "hit_iters": hit_iters, "miss_iters": miss_iters, "storm_rounds": storm_rounds,
            "gate_metric": "hit_heavy sharded/legacy speedup at 8 threads (same-run, machine-relative)",
            "gate_ops_per_sec": gate_ops,
            "gate_speedup": gate_speedup,
            "rows": rows,
        }),
    );

    if let Some(path) = flag_value("--check-baseline") {
        match read_baseline_gate(&path) {
            Some(baseline) => {
                // Gate on the same-run sharded/legacy ratio, not absolute
                // ops/sec: both engines ran on this host in this process, so
                // the ratio is machine-relative and survives the severalfold
                // throughput spread across shared CI runners.
                println!(
                    "\nRegression gate: sharded/legacy hit-heavy speedup @{GATE_THREADS}t = \
                     {gate_speedup:.2}x vs baseline {baseline:.2}x"
                );
                if gate_speedup < baseline / 2.0 {
                    eprintln!(
                        "REGRESSION: contended hit-path speedup over the single-mutex \
                         baseline engine fell more than 2x below the committed ratio"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no usable baseline at {path}; skipping the regression gate");
            }
        }
    }
}
