//! **Ablation A2** — The cost claim (§3.2 Simulator + response caching):
//! LLM calls, tokens, simulated latency, and dollars for a tagging stream
//! under four configurations: plain LLM module, +cache, +simulator, +both —
//! plus an optimizer-on arm where the cost-based planner, calibrated on a
//! 100-item prefix, chooses the physical form itself.

use lingua_bench::{arg_usize, write_json, TextTable};
use lingua_core::modules::{LlmModule, Module, PromptBuilder};
use lingua_core::optimizer::{Simulated, SimulatorConfig, StudentKind};
use lingua_core::validation::OutputValidator;
use lingua_core::{Compiler, CurationStage, Data, DatasetStats, ExecContext, LogicalOp, Pipeline};
use lingua_dataset::generators::names::{generate, NamesConfig};
use lingua_dataset::world::WorldSpec;
use lingua_dataset::{Record, Schema, Table, Value};
use lingua_llm_sim::{LlmService, SimLlm, SimLlmConfig};
use lingua_plan::{MemoModule, Objective, PhysicalAlt, Planner};
use lingua_trace::Tracer;
use std::sync::Arc;

fn tagger() -> LlmModule {
    LlmModule::new(
        "tag_names",
        PromptBuilder::Template {
            template:
                "Is the following phrase a person name?\nLanguage: {language}\nText: {phrase}"
                    .into(),
        },
        OutputValidator::YesNo,
    )
}

fn main() {
    let stream_len = arg_usize("--stream", 2500);
    println!("Ablation A2: LLM cost for a {stream_len}-phrase tagging stream\n");

    // Build the phrase stream from the multilingual corpus (names +
    // distractor proper nouns, as the noun-phrase extractor would emit).
    let world = WorldSpec::generate(7000);
    let corpus = generate(&world, &NamesConfig { passages: 900, ..Default::default() }, 7);
    let mut stream: Vec<(String, String)> = Vec::new();
    'outer: for passage in &corpus {
        for name in &passage.person_names {
            stream.push((name.clone(), passage.language.code().to_string()));
            if stream.len() >= stream_len {
                break 'outer;
            }
        }
        // Interleave distractors so the stream is not all-positive.
        if let Some(lex) = world.lexicons.get(&passage.language) {
            if let Some(place) = lex.distractors.first() {
                stream.push((place.clone(), passage.language.code().to_string()));
            }
        }
    }
    stream.truncate(stream_len);

    let configs: [(&str, bool, bool); 4] = [
        ("LLM module", false, false),
        ("+ response cache", true, false),
        ("+ simulator", false, true),
        ("+ cache + simulator", true, true),
    ];

    let mut table = TextTable::new([
        "Configuration",
        "LLM calls",
        "Cache hits",
        "Tokens in",
        "Sim. latency (s)",
        "Cost (USD)",
    ]);
    let mut json_rows = Vec::new();
    for (label, cache, simulate) in configs {
        let llm = Arc::new(SimLlm::new(
            &world,
            SimLlmConfig { seed: 7000, cache_enabled: cache, ..Default::default() },
        ));
        let mut ctx = ExecContext::new(llm.clone());
        let mut module: Box<dyn Module> = if simulate {
            Box::new(Simulated::new(
                Box::new(tagger()),
                StudentKind::Binary,
                SimulatorConfig::default(),
            ))
        } else {
            Box::new(tagger())
        };
        for (phrase, language) in &stream {
            let input = Data::map([
                ("phrase".to_string(), Data::Str(phrase.clone())),
                ("language".to_string(), Data::Str(language.clone())),
            ]);
            let _ = module.invoke(input, &mut ctx).expect("tagging runs");
        }
        let usage = llm.usage();
        let cost = usage.cost_usd(llm.pricing());
        table.row([
            label.to_string(),
            usage.calls.to_string(),
            usage.cached_calls.to_string(),
            usage.tokens_in.to_string(),
            format!("{:.1}", llm.simulated_latency_ms() as f64 / 1000.0),
            format!("{cost:.4}"),
        ]);
        json_rows.push(serde_json::json!({
            "config": label, "optimizer": false, "calls": usage.calls,
            "cached_calls": usage.cached_calls,
            "tokens_in": usage.tokens_in, "cost_usd": cost,
        }));
    }

    // -----------------------------------------------------------------
    // Optimizer-on arm: calibrate the direct LLM on a 100-item prefix,
    // hand the stream's duplicate statistics to the cost-based planner,
    // and run whichever physical form it picks (the memoized LLM should
    // win: ~42% of the stream is exact repeats).
    // -----------------------------------------------------------------
    let cal_n = 100.min(stream.len());
    let cal_llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: 7000, ..Default::default() }));
    let mut cal_ctx = ExecContext::new(cal_llm.clone());
    let mut cal_module = tagger();
    for (phrase, language) in &stream[..cal_n] {
        let input = Data::map([
            ("phrase".to_string(), Data::Str(phrase.clone())),
            ("language".to_string(), Data::Str(language.clone())),
        ]);
        let _ = cal_module.invoke(input, &mut cal_ctx).expect("calibration runs");
    }
    let mut planner = Planner::new(Compiler::with_builtins());
    planner.estimator_mut().record_usage(
        CurationStage::Extract,
        PhysicalAlt::DirectLlm,
        &cal_llm.usage(),
        cal_n as u64,
        cal_llm.simulated_latency_ms(),
    );
    let cal_cost = cal_llm.usage().cost_usd(cal_llm.pricing());
    let stats = DatasetStats::from_table(
        &Table::with_rows(
            "phrases",
            Schema::of_names(["phrase", "language"]),
            stream
                .iter()
                .map(|(p, l)| Record::new(vec![Value::Str(p.clone()), Value::Str(l.clone())]))
                .collect(),
        )
        .unwrap(),
    );
    let pipeline = Pipeline::new("tagging").op(LogicalOp::new("tag_names")
        .input("phrases")
        .output("tags")
        .param("desc", "Tag whether the phrase is a person name"));
    let plan = planner
        .plan(&pipeline, &stats, &Objective::cheapest_dollars(), &Tracer::disabled())
        .expect("planning succeeds");
    let chosen = plan.alt_of("tag_names").expect("tagging op planned");

    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: 7000, ..Default::default() }));
    let mut ctx = ExecContext::new(llm.clone());
    let run_stream = |module: &mut dyn Module, ctx: &mut ExecContext| {
        for (phrase, language) in &stream {
            let input = Data::map([
                ("phrase".to_string(), Data::Str(phrase.clone())),
                ("language".to_string(), Data::Str(language.clone())),
            ]);
            let _ = module.invoke(input, ctx).expect("planned tagging runs");
        }
    };
    let memo_hits = match chosen {
        PhysicalAlt::CachedLlm => {
            let mut module = MemoModule::new(Box::new(tagger()), 4096);
            run_stream(&mut module, &mut ctx);
            module.hits()
        }
        _ => {
            let mut module = tagger();
            run_stream(&mut module, &mut ctx);
            0
        }
    };
    let usage = llm.usage();
    let run_cost = usage.cost_usd(llm.pricing());
    let label = format!("optimizer on ({})", chosen.name());
    table.row([
        label.clone(),
        (cal_n as u64 + usage.calls).to_string(),
        memo_hits.to_string(),
        usage.tokens_in.to_string(),
        format!("{:.1}", llm.simulated_latency_ms() as f64 / 1000.0),
        format!("{:.4}", cal_cost + run_cost),
    ]);
    json_rows.push(serde_json::json!({
        "config": label, "optimizer": true, "calls": cal_n as u64 + usage.calls,
        "cached_calls": memo_hits,
        "tokens_in": usage.tokens_in, "cost_usd": cal_cost + run_cost,
        "calibration_calls": cal_n, "est_usd": plan.est_usd,
        "duplicate_rate": stats.duplicate_rate(),
    }));

    table.print();
    println!(
        "\nShape: the simulator bounds LLM spend to the warm-up prefix regardless of \
         stream length; the cache only helps on exact repeats. Combined they make the \
         marginal cost of a new record ~zero — the §3.2 economics. The optimizer arm \
         recovers the cache's savings without being told: the duplicate rate in the \
         dataset statistics prices the memoized form below the direct LLM."
    );
    write_json(
        "ablation_llm_cost",
        &serde_json::json!({ "stream": stream_len, "rows": json_rows }),
    );
}
