//! **Serving S1** — throughput of the `lingua-serve` worker pool: ER and
//! imputation pipelines served at 1/2/4/8 workers (jobs/sec + scaling vs a
//! single worker), plus the dedup arm: identical submissions coalesced
//! in-flight and answered from the result cache, with the LLM-call savings.
//!
//! Each job is a *batch* of records so it carries real work; every LLM call
//! also sleeps `--service-us` microseconds to model provider latency (the
//! SimLlm itself only tracks virtual latency). Sleeping calls are exactly
//! what a serving pool overlaps, so throughput scales with workers.
//!
//! The **batching arm** moves the service time out of the module and into a
//! serialized provider round trip, then serves the same ER workload — judged
//! through `PipelinedMapModule`, so each worker keeps up to a batch's worth
//! of calls in flight — with and without continuous batching: a batched
//! flush pays the round-trip toll once for all of its members, so backend
//! round trips collapse by roughly the batch occupancy. The regression gate
//! is the same-run unbatched/batched round-trip ratio — machine-relative,
//! like the hotpath gate.

use lingua_bench::{arg_usize, fmt_mean_std, mean, write_json, TextTable};
use lingua_core::modules::{CustomModule, LlmModule, Module, PipelinedMapModule, PromptBuilder};
use lingua_core::validation::OutputValidator;
use lingua_core::{ContextFactory, CoreError, Data, LogicalOp, PhysicalPipeline};
use lingua_dataset::generators::er::{self, ErDataset};
use lingua_dataset::generators::imputation;
use lingua_dataset::world::WorldSpec;
use lingua_gateway::BatchSnapshot;
use lingua_llm_sim::{
    BatchOutcome, CodeGenSpec, CompletionRequest, GeneratedCode, LlmService, SimLlm, SimLlmConfig,
    Usage,
};
use lingua_serve::{BatchTuning, PipelineServer, ServeConfig, SubmitRequest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 9100;

/// One-op pipeline: a stateless batch module that judges every item of the
/// input list with a fresh `LlmModule`, sleeping `service_us` per call.
fn batch_pipeline(
    name: &str,
    make_judge: impl Fn() -> LlmModule + Send + Sync + 'static,
    service_us: u64,
) -> PhysicalPipeline {
    let module = CustomModule::stateless(name, move |input, ctx| {
        let items = input
            .as_list()
            .ok_or(CoreError::DataShape { expected: "list of items", got: "other".into() })?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let mut judge = make_judge();
            let verdict = judge.invoke(item.clone(), ctx)?;
            if service_us > 0 {
                std::thread::sleep(Duration::from_micros(service_us));
            }
            out.push(verdict);
        }
        Ok(Data::List(out))
    });
    PhysicalPipeline {
        name: name.to_string(),
        ops: vec![(
            LogicalOp::new(name).output("labels").input("batch"),
            Box::new(module) as Box<dyn Module>,
        )],
    }
}

/// The ER judge the batching arm shares between its pipelines.
fn er_judge() -> LlmModule {
    LlmModule::new(
        "er_judge",
        PromptBuilder::PairJudgment {
            description: "Please determine if the following two records refer to the same entity."
                .into(),
            examples: vec![],
        },
        OutputValidator::YesNo,
    )
}

/// One-op ER pipeline over [`PipelinedMapModule`]: each job's record list is
/// dispatched with up to `depth` calls in flight, so a worker keeps many
/// members inside the batcher's window at once instead of trickling one
/// request per flush. Both batching-arm configurations use this pipeline, so
/// the arms execute identical work and differ only in the batcher.
fn pipelined_er_pipeline(depth: usize) -> PhysicalPipeline {
    let module =
        PipelinedMapModule::new("match_batch", depth, || Box::new(er_judge()) as Box<dyn Module>);
    PhysicalPipeline {
        name: "match_batch".to_string(),
        ops: vec![(
            LogicalOp::new("match_batch").output("labels").input("batch"),
            Box::new(module) as Box<dyn Module>,
        )],
    }
}

fn er_pipeline(service_us: u64) -> PhysicalPipeline {
    batch_pipeline("match_batch", er_judge, service_us)
}

fn imputation_pipeline(vocabulary: Vec<String>, service_us: u64) -> PhysicalPipeline {
    batch_pipeline(
        "impute_batch",
        move || {
            LlmModule::new(
                "imputer",
                PromptBuilder::TextTask {
                    description: "Fill in the missing manufacturer for this product.".into(),
                    payload_label: "Product".into(),
                    extra_lines: vec![format!("Candidates: {}", vocabulary.join(", "))],
                },
                OutputValidator::Category { vocabulary: vocabulary.clone() },
            )
        },
        service_us,
    )
}

/// Batch ER pairs into per-job inputs: `batch` ↦ list of `{a, b}` maps.
fn er_jobs(world: &WorldSpec, jobs: usize, batch: usize) -> Vec<Data> {
    let split = er::generate(world, ErDataset::BeerAdvoRateBeer, SEED);
    let schema = split.schema.clone();
    let pairs: Vec<Data> = split
        .train
        .iter()
        .chain(&split.valid)
        .chain(&split.test)
        .map(|p| {
            Data::map([
                ("a".to_string(), Data::Str(p.left.describe(&schema))),
                ("b".to_string(), Data::Str(p.right.describe(&schema))),
            ])
        })
        .collect();
    assert!(pairs.len() >= jobs * batch, "ER split too small for {jobs} jobs x {batch}");
    pairs.chunks(batch).take(jobs).map(|chunk| Data::List(chunk.to_vec())).collect()
}

/// Batch imputation rows into per-job inputs: `batch` ↦ list of row texts.
fn imputation_jobs(world: &WorldSpec, jobs: usize, batch: usize) -> (Vec<Data>, Vec<String>) {
    let bench = imputation::generate(world, SEED);
    let schema = bench.table.schema().clone();
    let rows: Vec<Data> =
        bench.table.rows().iter().map(|row| Data::Str(row.describe(&schema))).collect();
    assert!(rows.len() >= jobs * batch, "imputation table too small for {jobs} jobs x {batch}");
    let inputs = rows.chunks(batch).take(jobs).map(|chunk| Data::List(chunk.to_vec())).collect();
    (inputs, bench.vocabulary)
}

struct ArmResult {
    secs: f64,
    p50_ms: f64,
    p95_ms: f64,
}

/// Stand up a fresh server (fresh SimLlm, so no cross-run cache), serve every
/// job, and time submit-all → wait-all.
fn serve_once(
    world: &WorldSpec,
    pipeline: PhysicalPipeline,
    inputs: &[Data],
    workers: usize,
) -> ArmResult {
    let llm = Arc::new(SimLlm::new(world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let factory = ContextFactory::new(llm);
    let config = ServeConfig {
        workers: Some(workers),
        queue_capacity: inputs.len() + 8,
        ..Default::default()
    };
    let mut server = PipelineServer::start(factory, config).expect("valid bench config");
    let id = pipeline.name.clone();
    server.register_pipeline(id.as_str(), pipeline).expect("pipeline replicates");
    let start = Instant::now();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| {
            server
                .submit(SubmitRequest::new(id.as_str()).input("batch", input.clone()))
                .expect("queue sized for the run")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("job completes");
    }
    let secs = start.elapsed().as_secs_f64();
    let snapshot = server.metrics();
    server.shutdown();
    ArmResult { secs, p50_ms: snapshot.p50_latency_ms, p95_ms: snapshot.p95_latency_ms }
}

/// The dedup arm: `dups` copies of each distinct job, interleaved so the
/// duplicates race, with in-flight dedup + result cache on vs off.
fn dedup_arm(
    world: &WorldSpec,
    pipeline: PhysicalPipeline,
    distinct: &[Data],
    dups: usize,
    enabled: bool,
) -> (f64, u64, u64) {
    let llm = Arc::new(SimLlm::new(world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let factory = ContextFactory::new(llm.clone());
    let config = ServeConfig {
        workers: Some(4),
        queue_capacity: distinct.len() * dups + 8,
        dedup_inflight: enabled,
        result_cache_capacity: if enabled { 1024 } else { 0 },
        ..Default::default()
    };
    let mut server = PipelineServer::start(factory, config).expect("valid bench config");
    let id = pipeline.name.clone();
    server.register_pipeline(id.as_str(), pipeline).expect("pipeline replicates");
    let start = Instant::now();
    let mut handles = Vec::with_capacity(distinct.len() * dups);
    for _round in 0..dups {
        for input in distinct {
            handles.push(
                server
                    .submit(SubmitRequest::new(id.as_str()).input("batch", input.clone()))
                    .expect("queue sized for the run"),
            );
        }
    }
    for handle in handles {
        handle.wait().expect("job completes");
    }
    let secs = start.elapsed().as_secs_f64();
    let deduped = server.metrics().deduped();
    server.shutdown();
    (secs, llm.usage().calls, deduped)
}

/// Models a rate-limited provider connection: every backend round trip —
/// batched or not — serializes on one connection and pays `rt_us` of wire
/// latency. A batched flush pays that toll once for all of its members,
/// which is exactly the economy continuous batching buys.
struct RoundTripLlm {
    inner: Arc<SimLlm>,
    connection: Mutex<()>,
    rt_us: u64,
    round_trips: AtomicU64,
}

impl RoundTripLlm {
    fn new(inner: Arc<SimLlm>, rt_us: u64) -> RoundTripLlm {
        RoundTripLlm { inner, connection: Mutex::new(()), rt_us, round_trips: AtomicU64::new(0) }
    }

    fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    fn toll(&self) {
        let _connection = self.connection.lock().unwrap();
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        if self.rt_us > 0 {
            std::thread::sleep(Duration::from_micros(self.rt_us));
        }
    }
}

impl LlmService for RoundTripLlm {
    fn complete(&self, request: &CompletionRequest) -> String {
        self.toll();
        self.inner.complete(request)
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> BatchOutcome {
        self.toll();
        self.inner.complete_batch(requests)
    }

    fn embed(&self, text: &str) -> Vec<f64> {
        self.inner.embed(text)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }

    fn simulated_latency_ms(&self) -> u64 {
        self.inner.simulated_latency_ms()
    }

    fn generate_code(&self, spec: &CodeGenSpec) -> GeneratedCode {
        self.inner.generate_code(spec)
    }

    fn suggest_fix(&self, source: &str, failures: &[String]) -> String {
        self.inner.suggest_fix(source, failures)
    }

    fn repair_code(
        &self,
        spec: &CodeGenSpec,
        previous: &GeneratedCode,
        suggestion: &str,
    ) -> GeneratedCode {
        self.inner.repair_code(spec, previous, suggestion)
    }
}

/// The batching arm: the ER workload over a round-trip-tolled provider, with
/// or without the serve-layer batcher wrapped around it. Dedup and the
/// result cache stay off so the two arms execute identical work.
fn batch_arm(
    world: &WorldSpec,
    inputs: &[Data],
    workers: usize,
    rt_us: u64,
    tuning: Option<BatchTuning>,
) -> (f64, u64, Option<BatchSnapshot>) {
    let sim = Arc::new(SimLlm::new(world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let llm = Arc::new(RoundTripLlm::new(sim, rt_us));
    let factory = ContextFactory::new(Arc::clone(&llm) as Arc<dyn LlmService>);
    let config = ServeConfig {
        workers: Some(workers),
        queue_capacity: inputs.len() + 8,
        dedup_inflight: false,
        result_cache_capacity: 0,
        batch: tuning,
        ..Default::default()
    };
    let mut server = PipelineServer::start(factory, config).expect("valid bench config");
    // Pipelined dispatch in both arms: up to one batch's worth of calls in
    // flight per worker, so batches fill from within a single job.
    let pipeline = pipelined_er_pipeline(8);
    let id = pipeline.name.clone();
    server.register_pipeline(id.as_str(), pipeline).expect("pipeline replicates");
    let start = Instant::now();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| {
            server
                .submit(SubmitRequest::new(id.as_str()).input("batch", input.clone()))
                .expect("queue sized for the run")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("job completes");
    }
    let secs = start.elapsed().as_secs_f64();
    let snapshot = server.metrics().batch;
    server.shutdown();
    (secs, llm.round_trips(), snapshot)
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pull the gated metric out of a previously committed results file without
/// needing a JSON parser: the writer emits `"gate_round_trip_ratio": <value>`.
fn read_baseline_gate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"gate_round_trip_ratio\"")?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn main() {
    let smoke = has_flag("--smoke");
    // 48 x 8 = 384 records per workload, within the 450-pair ER split.
    let jobs = arg_usize("--jobs", if smoke { 16 } else { 48 });
    let batch = arg_usize("--batch", 8);
    let reps = arg_usize("--reps", if smoke { 1 } else { 3 });
    let service_us = arg_usize("--service-us", 400) as u64;
    let rt_us = arg_usize("--round-trip-us", 300) as u64;
    let worker_counts = [1usize, 2, 4, 8];
    println!(
        "Serving S1: {jobs} jobs x {batch}-record batches per pipeline, \
         {service_us}us simulated service time per LLM call, {reps} reps{}\n",
        if smoke { ", smoke" } else { "" }
    );

    let world = WorldSpec::generate(SEED);
    let (imp_inputs, vocabulary) = imputation_jobs(&world, jobs, batch);
    let er_inputs = er_jobs(&world, jobs, batch);

    type PipelineFn = Box<dyn Fn() -> PhysicalPipeline>;
    let workloads: Vec<(&str, PipelineFn, &[Data])> = vec![
        ("entity resolution", Box::new(move || er_pipeline(service_us)), &er_inputs[..]),
        (
            "imputation",
            Box::new({
                let vocabulary = vocabulary.clone();
                move || imputation_pipeline(vocabulary.clone(), service_us)
            }),
            &imp_inputs[..],
        ),
    ];

    let mut table = TextTable::new([
        "Workload",
        "Workers",
        "Jobs/sec",
        "Speedup vs 1",
        "p50 latency (ms)",
        "p95 latency (ms)",
    ]);
    let mut json_rows = Vec::new();
    for (label, make_pipeline, inputs) in &workloads {
        let mut baseline = 0.0f64;
        for &workers in &worker_counts {
            let mut rates = Vec::with_capacity(reps);
            let mut last = None;
            for _ in 0..reps {
                let arm = serve_once(&world, make_pipeline(), inputs, workers);
                rates.push(inputs.len() as f64 / arm.secs);
                last = Some(arm);
            }
            let arm = last.expect("at least one rep");
            let rate = mean(&rates);
            if workers == 1 {
                baseline = rate;
            }
            table.row([
                label.to_string(),
                workers.to_string(),
                fmt_mean_std(&rates, 1.0),
                format!("{:.2}x", rate / baseline),
                format!("{:.1}", arm.p50_ms),
                format!("{:.1}", arm.p95_ms),
            ]);
            json_rows.push(serde_json::json!({
                "workload": label, "workers": workers, "jobs_per_sec": rate,
                "speedup": rate / baseline, "p50_ms": arm.p50_ms, "p95_ms": arm.p95_ms,
            }));
        }
    }
    table.print();

    // Dedup arm: 6 copies of 16 distinct ER jobs, racing on 4 workers.
    let dups = 6;
    let distinct: Vec<Data> = er_inputs.iter().take(16).cloned().collect();
    let (secs_on, calls_on, deduped_on) =
        dedup_arm(&world, er_pipeline(service_us), &distinct, dups, true);
    let (secs_off, calls_off, deduped_off) =
        dedup_arm(&world, er_pipeline(service_us), &distinct, dups, false);
    println!(
        "\nDedup arm ({} submissions, {} distinct, 4 workers):\n\
         \x20 dedup on : {:>6.2}s  {:>5} LLM calls  {:>3} jobs deduped\n\
         \x20 dedup off: {:>6.2}s  {:>5} LLM calls  {:>3} jobs deduped",
        distinct.len() * dups,
        distinct.len(),
        secs_on,
        calls_on,
        deduped_on,
        secs_off,
        calls_off,
        deduped_off,
    );
    // Batching arm: 8 workers against a serialized provider connection, with
    // and without the serve-layer batcher. The gate is the same-run
    // unbatched/batched round-trip ratio — both arms ran on this host in this
    // process, so the ratio survives CI-runner throughput spread.
    let batch_workers = 8;
    let tuning = BatchTuning { max_batch_size: 8, max_wait: Duration::from_millis(5) };
    let mut batched_secs = Vec::with_capacity(reps);
    let mut unbatched_secs = Vec::with_capacity(reps);
    let mut batched_trips = Vec::with_capacity(reps);
    let mut unbatched_trips = Vec::with_capacity(reps);
    let mut snapshot = None;
    for _ in 0..reps {
        let (secs, trips, snap) = batch_arm(&world, &er_inputs, batch_workers, rt_us, Some(tuning));
        batched_secs.push(secs);
        batched_trips.push(trips as f64);
        snapshot = snap.or(snapshot);
        let (secs, trips, _) = batch_arm(&world, &er_inputs, batch_workers, rt_us, None);
        unbatched_secs.push(secs);
        unbatched_trips.push(trips as f64);
    }
    let snapshot = snapshot.expect("batched server surfaces batch counters");
    let gate_round_trip_ratio = mean(&unbatched_trips) / mean(&batched_trips);
    println!(
        "\nBatching arm ({} jobs, {} workers, {}us round trip, batch {} x {}ms window):\n\
         \x20 batched  : {:>6.2}s  {:>5.0} provider round trips  \
         ({} batches, mean occupancy {:.1})\n\
         \x20 unbatched: {:>6.2}s  {:>5.0} provider round trips\n\
         \x20 round-trip ratio: {:.2}x fewer backend calls",
        er_inputs.len(),
        batch_workers,
        rt_us,
        tuning.max_batch_size,
        tuning.max_wait.as_millis(),
        mean(&batched_secs),
        mean(&batched_trips),
        snapshot.batches,
        snapshot.mean_occupancy(),
        mean(&unbatched_secs),
        mean(&unbatched_trips),
        gate_round_trip_ratio,
    );

    println!(
        "\nShape: jobs/sec rises with workers because per-call service time \
         overlaps across the pool; dedup answers duplicate submissions from \
         one execution, so LLM spend tracks distinct work, not request volume; \
         batching folds concurrent members into one provider round trip, so \
         backend calls track flushes, not members."
    );

    write_json(
        "serve_throughput",
        &serde_json::json!({
            "smoke": smoke,
            "jobs": jobs, "batch": batch, "reps": reps, "service_us": service_us,
            "rows": json_rows,
            "dedup": {
                "submissions": distinct.len() * dups, "distinct": distinct.len(),
                "on": { "secs": secs_on, "llm_calls": calls_on, "deduped": deduped_on },
                "off": { "secs": secs_off, "llm_calls": calls_off, "deduped": deduped_off },
            },
            "batching": {
                "workers": batch_workers, "round_trip_us": rt_us,
                "max_batch_size": tuning.max_batch_size,
                "max_wait_ms": tuning.max_wait.as_millis() as u64,
                "batched": {
                    "secs": mean(&batched_secs),
                    "jobs_per_sec": er_inputs.len() as f64 / mean(&batched_secs),
                    "round_trips": mean(&batched_trips),
                },
                "unbatched": {
                    "secs": mean(&unbatched_secs),
                    "jobs_per_sec": er_inputs.len() as f64 / mean(&unbatched_secs),
                    "round_trips": mean(&unbatched_trips),
                },
                "batches": snapshot.batches, "members": snapshot.members,
                "mean_occupancy": snapshot.mean_occupancy(),
                "max_occupancy": snapshot.max_occupancy,
            },
            "gate_metric": "unbatched/batched provider round trips at 8 workers \
                            (same-run, machine-relative)",
            "gate_round_trip_ratio": gate_round_trip_ratio,
        }),
    );

    if let Some(path) = flag_value("--check-baseline") {
        match read_baseline_gate(&path) {
            Some(baseline) => {
                println!(
                    "\nRegression gate: unbatched/batched round-trip ratio @{batch_workers}w = \
                     {gate_round_trip_ratio:.2}x vs baseline {baseline:.2}x"
                );
                if gate_round_trip_ratio < baseline / 2.0 {
                    eprintln!(
                        "REGRESSION: continuous batching collapsed fewer provider round \
                         trips than half the committed ratio — the batcher is not filling"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no usable baseline at {path}; skipping the regression gate");
            }
        }
    }
}
