//! **Serving S1** — throughput of the `lingua-serve` worker pool: ER and
//! imputation pipelines served at 1/2/4/8 workers (jobs/sec + scaling vs a
//! single worker), plus the dedup arm: identical submissions coalesced
//! in-flight and answered from the result cache, with the LLM-call savings.
//!
//! Each job is a *batch* of records so it carries real work; every LLM call
//! also sleeps `--service-us` microseconds to model provider latency (the
//! SimLlm itself only tracks virtual latency). Sleeping calls are exactly
//! what a serving pool overlaps, so throughput scales with workers.

use lingua_bench::{arg_usize, fmt_mean_std, mean, write_json, TextTable};
use lingua_core::modules::{CustomModule, LlmModule, Module, PromptBuilder};
use lingua_core::validation::OutputValidator;
use lingua_core::{ContextFactory, CoreError, Data, LogicalOp, PhysicalPipeline};
use lingua_dataset::generators::er::{self, ErDataset};
use lingua_dataset::generators::imputation;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{LlmService, SimLlm, SimLlmConfig};
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 9100;

/// One-op pipeline: a stateless batch module that judges every item of the
/// input list with a fresh `LlmModule`, sleeping `service_us` per call.
fn batch_pipeline(
    name: &str,
    make_judge: impl Fn() -> LlmModule + Send + Sync + 'static,
    service_us: u64,
) -> PhysicalPipeline {
    let module = CustomModule::stateless(name, move |input, ctx| {
        let items = input
            .as_list()
            .ok_or(CoreError::DataShape { expected: "list of items", got: "other".into() })?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let mut judge = make_judge();
            let verdict = judge.invoke(item.clone(), ctx)?;
            if service_us > 0 {
                std::thread::sleep(Duration::from_micros(service_us));
            }
            out.push(verdict);
        }
        Ok(Data::List(out))
    });
    PhysicalPipeline {
        name: name.to_string(),
        ops: vec![(
            LogicalOp::new(name).output("labels").input("batch"),
            Box::new(module) as Box<dyn Module>,
        )],
    }
}

fn er_pipeline(service_us: u64) -> PhysicalPipeline {
    batch_pipeline(
        "match_batch",
        || {
            LlmModule::new(
                "er_judge",
                PromptBuilder::PairJudgment {
                    description:
                        "Please determine if the following two records refer to the same entity."
                            .into(),
                    examples: vec![],
                },
                OutputValidator::YesNo,
            )
        },
        service_us,
    )
}

fn imputation_pipeline(vocabulary: Vec<String>, service_us: u64) -> PhysicalPipeline {
    batch_pipeline(
        "impute_batch",
        move || {
            LlmModule::new(
                "imputer",
                PromptBuilder::TextTask {
                    description: "Fill in the missing manufacturer for this product.".into(),
                    payload_label: "Product".into(),
                    extra_lines: vec![format!("Candidates: {}", vocabulary.join(", "))],
                },
                OutputValidator::Category { vocabulary: vocabulary.clone() },
            )
        },
        service_us,
    )
}

/// Batch ER pairs into per-job inputs: `batch` ↦ list of `{a, b}` maps.
fn er_jobs(world: &WorldSpec, jobs: usize, batch: usize) -> Vec<Data> {
    let split = er::generate(world, ErDataset::BeerAdvoRateBeer, SEED);
    let schema = split.schema.clone();
    let pairs: Vec<Data> = split
        .train
        .iter()
        .chain(&split.valid)
        .chain(&split.test)
        .map(|p| {
            Data::map([
                ("a".to_string(), Data::Str(p.left.describe(&schema))),
                ("b".to_string(), Data::Str(p.right.describe(&schema))),
            ])
        })
        .collect();
    assert!(pairs.len() >= jobs * batch, "ER split too small for {jobs} jobs x {batch}");
    pairs.chunks(batch).take(jobs).map(|chunk| Data::List(chunk.to_vec())).collect()
}

/// Batch imputation rows into per-job inputs: `batch` ↦ list of row texts.
fn imputation_jobs(world: &WorldSpec, jobs: usize, batch: usize) -> (Vec<Data>, Vec<String>) {
    let bench = imputation::generate(world, SEED);
    let schema = bench.table.schema().clone();
    let rows: Vec<Data> =
        bench.table.rows().iter().map(|row| Data::Str(row.describe(&schema))).collect();
    assert!(rows.len() >= jobs * batch, "imputation table too small for {jobs} jobs x {batch}");
    let inputs = rows.chunks(batch).take(jobs).map(|chunk| Data::List(chunk.to_vec())).collect();
    (inputs, bench.vocabulary)
}

struct ArmResult {
    secs: f64,
    p50_ms: f64,
    p95_ms: f64,
}

/// Stand up a fresh server (fresh SimLlm, so no cross-run cache), serve every
/// job, and time submit-all → wait-all.
fn serve_once(
    world: &WorldSpec,
    pipeline: PhysicalPipeline,
    inputs: &[Data],
    workers: usize,
) -> ArmResult {
    let llm = Arc::new(SimLlm::new(world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let factory = ContextFactory::new(llm);
    let config = ServeConfig {
        workers: Some(workers),
        queue_capacity: inputs.len() + 8,
        ..Default::default()
    };
    let mut server = PipelineServer::start(factory, config).expect("valid bench config");
    let id = pipeline.name.clone();
    server.register_pipeline(id.as_str(), pipeline).expect("pipeline replicates");
    let start = Instant::now();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| {
            server
                .submit(SubmitRequest::new(id.as_str()).input("batch", input.clone()))
                .expect("queue sized for the run")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("job completes");
    }
    let secs = start.elapsed().as_secs_f64();
    let snapshot = server.metrics();
    server.shutdown();
    ArmResult { secs, p50_ms: snapshot.p50_latency_ms, p95_ms: snapshot.p95_latency_ms }
}

/// The dedup arm: `dups` copies of each distinct job, interleaved so the
/// duplicates race, with in-flight dedup + result cache on vs off.
fn dedup_arm(
    world: &WorldSpec,
    pipeline: PhysicalPipeline,
    distinct: &[Data],
    dups: usize,
    enabled: bool,
) -> (f64, u64, u64) {
    let llm = Arc::new(SimLlm::new(world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let factory = ContextFactory::new(llm.clone());
    let config = ServeConfig {
        workers: Some(4),
        queue_capacity: distinct.len() * dups + 8,
        dedup_inflight: enabled,
        result_cache_capacity: if enabled { 1024 } else { 0 },
        ..Default::default()
    };
    let mut server = PipelineServer::start(factory, config).expect("valid bench config");
    let id = pipeline.name.clone();
    server.register_pipeline(id.as_str(), pipeline).expect("pipeline replicates");
    let start = Instant::now();
    let mut handles = Vec::with_capacity(distinct.len() * dups);
    for _round in 0..dups {
        for input in distinct {
            handles.push(
                server
                    .submit(SubmitRequest::new(id.as_str()).input("batch", input.clone()))
                    .expect("queue sized for the run"),
            );
        }
    }
    for handle in handles {
        handle.wait().expect("job completes");
    }
    let secs = start.elapsed().as_secs_f64();
    let deduped = server.metrics().deduped();
    server.shutdown();
    (secs, llm.usage().calls, deduped)
}

fn main() {
    // 48 x 8 = 384 records per workload, within the 450-pair ER split.
    let jobs = arg_usize("--jobs", 48);
    let batch = arg_usize("--batch", 8);
    let reps = arg_usize("--reps", 3);
    let service_us = arg_usize("--service-us", 400) as u64;
    let worker_counts = [1usize, 2, 4, 8];
    println!(
        "Serving S1: {jobs} jobs x {batch}-record batches per pipeline, \
         {service_us}us simulated service time per LLM call, {reps} reps\n"
    );

    let world = WorldSpec::generate(SEED);
    let (imp_inputs, vocabulary) = imputation_jobs(&world, jobs, batch);
    let er_inputs = er_jobs(&world, jobs, batch);

    type PipelineFn = Box<dyn Fn() -> PhysicalPipeline>;
    let workloads: Vec<(&str, PipelineFn, &[Data])> = vec![
        ("entity resolution", Box::new(move || er_pipeline(service_us)), &er_inputs[..]),
        (
            "imputation",
            Box::new({
                let vocabulary = vocabulary.clone();
                move || imputation_pipeline(vocabulary.clone(), service_us)
            }),
            &imp_inputs[..],
        ),
    ];

    let mut table = TextTable::new([
        "Workload",
        "Workers",
        "Jobs/sec",
        "Speedup vs 1",
        "p50 latency (ms)",
        "p95 latency (ms)",
    ]);
    let mut json_rows = Vec::new();
    for (label, make_pipeline, inputs) in &workloads {
        let mut baseline = 0.0f64;
        for &workers in &worker_counts {
            let mut rates = Vec::with_capacity(reps);
            let mut last = None;
            for _ in 0..reps {
                let arm = serve_once(&world, make_pipeline(), inputs, workers);
                rates.push(inputs.len() as f64 / arm.secs);
                last = Some(arm);
            }
            let arm = last.expect("at least one rep");
            let rate = mean(&rates);
            if workers == 1 {
                baseline = rate;
            }
            table.row([
                label.to_string(),
                workers.to_string(),
                fmt_mean_std(&rates, 1.0),
                format!("{:.2}x", rate / baseline),
                format!("{:.1}", arm.p50_ms),
                format!("{:.1}", arm.p95_ms),
            ]);
            json_rows.push(serde_json::json!({
                "workload": label, "workers": workers, "jobs_per_sec": rate,
                "speedup": rate / baseline, "p50_ms": arm.p50_ms, "p95_ms": arm.p95_ms,
            }));
        }
    }
    table.print();

    // Dedup arm: 6 copies of 16 distinct ER jobs, racing on 4 workers.
    let dups = 6;
    let distinct: Vec<Data> = er_inputs.iter().take(16).cloned().collect();
    let (secs_on, calls_on, deduped_on) =
        dedup_arm(&world, er_pipeline(service_us), &distinct, dups, true);
    let (secs_off, calls_off, deduped_off) =
        dedup_arm(&world, er_pipeline(service_us), &distinct, dups, false);
    println!(
        "\nDedup arm ({} submissions, {} distinct, 4 workers):\n\
         \x20 dedup on : {:>6.2}s  {:>5} LLM calls  {:>3} jobs deduped\n\
         \x20 dedup off: {:>6.2}s  {:>5} LLM calls  {:>3} jobs deduped",
        distinct.len() * dups,
        distinct.len(),
        secs_on,
        calls_on,
        deduped_on,
        secs_off,
        calls_off,
        deduped_off,
    );
    println!(
        "\nShape: jobs/sec rises with workers because per-call service time \
         overlaps across the pool; dedup answers duplicate submissions from \
         one execution, so LLM spend tracks distinct work, not request volume."
    );

    write_json(
        "serve_throughput",
        &serde_json::json!({
            "jobs": jobs, "batch": batch, "reps": reps, "service_us": service_us,
            "rows": json_rows,
            "dedup": {
                "submissions": distinct.len() * dups, "distinct": distinct.len(),
                "on": { "secs": secs_on, "llm_calls": calls_on, "deduped": deduped_on },
                "off": { "secs": secs_off, "llm_calls": calls_off, "deduped": deduped_off },
            },
        }),
    );
}
