//! **Durability D1** — what write-ahead journaling costs the serve hot path,
//! and what recovery replay costs at restart.
//!
//! Three arms run the same LLM-pipeline workload on the same host in the
//! same process: journal off, journal to in-memory sim storage (isolates the
//! framing/encode cost), and journal to a real file (adds the filesystem).
//! The regression gate is the same-run file-journal/no-journal wall-time
//! ratio — machine-relative, like the serve and hotpath gates, so it
//! survives CI-runner throughput spread. A fourth measurement replays the
//! file journal and times recovery itself.

use lingua_bench::{arg_usize, fmt_mean_std, mean, write_json, TextTable};
use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::world::WorldSpec;
use lingua_durable::{CrashInjector, Journal, JournalTuning, KillPoint, SimStorage};
use lingua_llm_sim::{SimLlm, SimLlmConfig};
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 9400;

const CURATE: &str = r#"pipeline curate {
    out = summarize(text) using llm with { desc: "summarize the following document" };
}"#;

fn request(i: usize) -> SubmitRequest {
    SubmitRequest::new("curate")
        .input("text", Data::Str(format!("field report #{i}, batch {}", i * 31 % 7)))
}

/// Stand up a fresh server (fresh SimLlm, fresh journal), serve every job,
/// and time submit-all → wait-all.
fn serve_once(jobs: usize, workers: usize, journal: Option<JournalTuning>) -> f64 {
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let mut server = PipelineServer::start(
        ContextFactory::new(llm),
        ServeConfig {
            workers: Some(workers),
            queue_capacity: jobs + 8,
            journal,
            ..Default::default()
        },
    )
    .expect("valid bench config");
    server.register_dsl("curate", CURATE, &Compiler::with_builtins()).expect("register");
    let start = Instant::now();
    let handles: Vec<_> =
        (0..jobs).map(|i| server.submit(request(i)).expect("queue sized for the run")).collect();
    for handle in handles {
        handle.wait().expect("job completes");
    }
    let secs = start.elapsed().as_secs_f64();
    server.shutdown();
    secs
}

fn temp_journal_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lingua-durability-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.journal"))
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pull the gated metric out of a previously committed results file without
/// needing a JSON parser: the writer emits `"gate_overhead_ratio": <value>`.
fn read_baseline_gate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"gate_overhead_ratio\"")?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn main() {
    let smoke = has_flag("--smoke");
    let jobs = arg_usize("--jobs", if smoke { 64 } else { 256 });
    let reps = arg_usize("--reps", if smoke { 1 } else { 3 });
    let workers = arg_usize("--workers", 4);
    println!(
        "Durability D1: {jobs} jobs, {workers} workers, {reps} reps{}\n",
        if smoke { ", smoke" } else { "" }
    );

    let mut off = Vec::with_capacity(reps);
    let mut sim = Vec::with_capacity(reps);
    let mut file = Vec::with_capacity(reps);
    for rep in 0..reps {
        off.push(serve_once(jobs, workers, None));
        sim.push(serve_once(jobs, workers, Some(JournalTuning::sim(SimStorage::new()))));
        let path = temp_journal_path(&format!("arm-{rep}"));
        std::fs::remove_file(&path).ok();
        file.push(serve_once(
            jobs,
            workers,
            Some(JournalTuning::file(&path).expect("temp journal opens")),
        ));
    }

    // Recovery replay: journal the whole workload without a clean shutdown
    // (so nothing compacts), then time `Journal::open` folding it back.
    let replay_path = temp_journal_path("replay");
    std::fs::remove_file(&replay_path).ok();
    {
        let world = WorldSpec::generate(SEED);
        let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: SEED, ..Default::default() }));
        let server = PipelineServer::start(
            ContextFactory::new(llm),
            ServeConfig {
                workers: Some(workers),
                queue_capacity: jobs + 8,
                journal: Some(
                    JournalTuning::file(&replay_path)
                        .expect("temp journal opens")
                        // No compaction while serving, and the shutdown
                        // checkpoint tears mid-write: the log recovery sees
                        // is a real crash's — every record, damaged tail.
                        .with_checkpoint_interval(usize::MAX)
                        .with_injector(CrashInjector::armed_at(KillPoint::MidCheckpoint, 1)),
                ),
                ..Default::default()
            },
        )
        .expect("valid bench config");
        server.register_dsl("curate", CURATE, &Compiler::with_builtins()).expect("register");
        let handles: Vec<_> = (0..jobs).map(|i| server.submit(request(i)).unwrap()).collect();
        for handle in handles {
            handle.wait().expect("job completes");
        }
        drop(server); // the shutdown checkpoint dies: the log stays long
    }
    let replay_start = Instant::now();
    let (_journal, recovered) =
        Journal::open(JournalTuning::file(&replay_path).expect("reopen")).expect("recover");
    let replay_secs = replay_start.elapsed().as_secs_f64();

    let mut table = TextTable::new(["Arm", "Wall (s)", "Jobs/sec", "Overhead vs off"]);
    let base = mean(&off);
    for (label, secs) in [("journal off", &off), ("journal sim", &sim), ("journal file", &file)] {
        table.row([
            label.to_string(),
            fmt_mean_std(secs, 1.0),
            format!("{:.1}", jobs as f64 / mean(secs)),
            format!("{:.2}x", mean(secs) / base),
        ]);
    }
    table.print();
    let gate_overhead_ratio = mean(&file) / base;
    println!(
        "\nRecovery replay: {} records folded in {:.1}ms ({} finished jobs restored)",
        recovered.replayed,
        replay_secs * 1e3,
        recovered.finished.len(),
    );
    println!(
        "\nShape: the jobs here are nearly free, so this is worst-case pressure — \
         the three CRC-framed records journaled per job are the whole cost and \
         the ratio is an upper bound; any real LLM latency amortizes it toward \
         1x. Replay cost is linear in the un-compacted tail, which \
         checkpointing bounds in production."
    );

    write_json(
        "durability_overhead",
        &serde_json::json!({
            "smoke": smoke, "jobs": jobs, "reps": reps, "workers": workers,
            "arms": {
                "off": { "secs": base, "jobs_per_sec": jobs as f64 / base },
                "sim": { "secs": mean(&sim), "jobs_per_sec": jobs as f64 / mean(&sim),
                         "overhead": mean(&sim) / base },
                "file": { "secs": mean(&file), "jobs_per_sec": jobs as f64 / mean(&file),
                          "overhead": gate_overhead_ratio },
            },
            "recovery": {
                "records_replayed": recovered.replayed,
                "finished_restored": recovered.finished.len(),
                "secs": replay_secs,
            },
            "gate_metric": "file-journal / no-journal wall time, same run \
                            (machine-relative)",
            "gate_overhead_ratio": gate_overhead_ratio,
        }),
    );

    if let Some(path) = flag_value("--check-baseline") {
        match read_baseline_gate(&path) {
            Some(baseline) => {
                println!(
                    "\nRegression gate: file-journal overhead = {gate_overhead_ratio:.2}x \
                     vs baseline {baseline:.2}x"
                );
                // Generous headroom: fail only when journaling costs more
                // than double the committed overhead AND is substantial in
                // absolute terms — small baselines jitter.
                if gate_overhead_ratio > baseline * 2.0 && gate_overhead_ratio > 1.5 {
                    eprintln!(
                        "REGRESSION: write-ahead journaling slowed the serve hot path \
                         far beyond the committed overhead — check the append path"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no usable baseline at {path}; skipping the regression gate");
            }
        }
    }
}
