//! **Planner P1** — what cost-based planning buys: total cost of ownership
//! for a seeded entity-resolution workload, planned versus always-LLM.
//!
//! Workload: the Fodors-Zagats test splits of several dataset seeds
//! concatenated into one pair stream (189 pairs per seed). Two arms:
//!
//! * `naive` — every pair goes straight to the LLM (one billed call each).
//! * `planned` — the planner is given real evidence first: the teacher LLM
//!   labels one seed's training split (568 calls, booked as the ml_model's
//!   setup cost), a random forest is distilled from those *teacher* verdicts,
//!   and both the direct LLM and the model are calibrated on a validation
//!   sample. The planner then chooses under the cheap-$ objective and the
//!   chosen pipeline serves the whole stream. The planned arm's dollars are
//!   total cost of ownership: labeling + calibration + serving.
//!
//! Every call runs against the deterministic simulator, so calls and tokens
//! — and therefore the gated ratio — are machine-independent. With
//! `--check-baseline <path>` the run compares `gate_ratio`
//! (naive $ ÷ planned $) against a committed results file and exits nonzero
//! on a >2x drop; the arms and record counts are identical in `--smoke`
//! (the run is simulator-cheap), which only skips the audit replay arm.
//!
//! The run itself fails (exit 1) if the planned arm is not *strictly*
//! cheaper than always-LLM, or if the plan's accuracy floor was not met on
//! the stream — those are the acceptance claims this binary exists to check.

use lingua_bench::{arg_usize, write_json, TextTable};
use lingua_core::modules::{Module, ModuleKind};
use lingua_core::{Compiler, CurationStage, Data, ExecContext, Executor, LogicalOp, Pipeline};
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::labels::LabeledPair;
use lingua_dataset::world::WorldSpec;
use lingua_dataset::{Record, Schema, Table, Value};
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_plan::{audit_events, Calibrator, MlPairModule, Objective, PhysicalAlt, Planner};
use lingua_trace::{ring_tracer, Tracer};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 4242;
const DATASET: ErDataset = ErDataset::FodorsZagats;

fn er_op() -> LogicalOp {
    LogicalOp::new("entity_resolution")
        .input("pairs")
        .output("matches")
        .param("desc", "Determine if the two records refer to the same entity")
}

fn pair_input(pair: &LabeledPair, schema: &Schema) -> Data {
    Data::map([
        ("a".to_string(), Data::Str(pair.left.describe(schema))),
        ("b".to_string(), Data::Str(pair.right.describe(schema))),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds = arg_usize("--seeds", 10);
    let calibration = arg_usize("--calibration", 64);
    println!("Planner P1: planned vs always-LLM over {seeds} {} seeds\n", DATASET.name());

    let world = WorldSpec::generate(SEED);
    // One split supplies the training/validation evidence; every split's
    // test pairs join the serving stream.
    let evidence = generate(&world, DATASET, 1000);
    let mut stream: Vec<LabeledPair> = evidence.test.clone();
    for i in 1..seeds {
        stream.extend(generate(&world, DATASET, 1000 + i as u64).test);
    }
    let schema = evidence.schema.clone();

    let stats = {
        let rows: Vec<Record> = stream
            .iter()
            .map(|p| {
                Record::new(vec![
                    Value::Str(p.left.describe(&schema)),
                    Value::Str(p.right.describe(&schema)),
                ])
            })
            .collect();
        let positives = stream.iter().filter(|p| p.label).count() as u64;
        lingua_core::DatasetStats::from_table(
            &Table::with_rows("pairs", Schema::of_names(["a", "b"]), rows).unwrap(),
        )
        .with_match_selectivity(positives, stream.len() as u64)
    };

    // ------------------------------------------------------------------
    // Naive arm: one LLM call per pair, no planning.
    // ------------------------------------------------------------------
    let mut llm_op = er_op();
    llm_op.kind = Some(ModuleKind::Llm);
    let naive_llm = Arc::new(SimLlm::with_seed(&world, SEED));
    let mut naive_ctx = ExecContext::new(naive_llm.clone());
    let mut naive_module =
        Compiler::with_builtins().bind(&llm_op, &mut naive_ctx).expect("llm binds");
    let mut naive_correct = 0usize;
    for pair in &stream {
        let out =
            naive_module.invoke(pair_input(pair, &schema), &mut naive_ctx).expect("naive judgment");
        if out.as_bool() == Some(pair.label) {
            naive_correct += 1;
        }
    }
    let naive_usage = naive_llm.usage();
    let naive_usd = naive_usage.cost_usd(naive_llm.pricing());
    let naive_accuracy = naive_correct as f64 / stream.len() as f64;

    // ------------------------------------------------------------------
    // Planned arm: evidence, plan, serve. Total cost of ownership.
    // ------------------------------------------------------------------
    let planned_llm = Arc::new(SimLlm::with_seed(&world, SEED));
    let mut ctx = ExecContext::new(planned_llm.clone());
    let mut planner = Planner::new(Compiler::with_builtins());
    let mut teacher = Compiler::with_builtins().bind(&llm_op, &mut ctx).expect("llm binds");

    // Distill: the teacher labels the training split; the forest learns
    // from those verdicts (not the ground truth), and the plan carries the
    // full labeling bill as the model's setup cost.
    let before_labels = planned_llm.usage();
    let distilled: Vec<LabeledPair> = evidence
        .train
        .iter()
        .map(|pair| {
            let verdict = teacher
                .invoke(pair_input(pair, &schema), &mut ctx)
                .expect("teacher labels")
                .as_bool()
                .unwrap_or(false);
            LabeledPair { label: verdict, ..pair.clone() }
        })
        .collect();
    let label_usage = planned_llm.usage().since(&before_labels);
    let train_started = Instant::now();
    let model = MlPairModule::train("er_student", &schema, &distilled, SEED).expect("train");
    planner.estimator_mut().record_setup(
        CurationStage::Match,
        PhysicalAlt::MlModel,
        &label_usage,
        train_started.elapsed().as_millis() as u64,
    );

    // Calibrate both live alternatives on the validation sample.
    let sample = &evidence.valid[..calibration.min(evidence.valid.len())];
    let calibrator = Calibrator::from_pairs(&schema, sample);
    let before_cal = planned_llm.usage();
    let llm_sample = calibrator.calibrate(
        planner.estimator_mut(),
        CurationStage::Match,
        PhysicalAlt::DirectLlm,
        teacher.as_mut(),
        &mut ctx,
    );
    let calibration_usage = planned_llm.usage().since(&before_cal);
    let mut probe = model.fresh_instance().expect("replicable");
    let model_sample = calibrator.calibrate(
        planner.estimator_mut(),
        CurationStage::Match,
        PhysicalAlt::MlModel,
        probe.as_mut(),
        &mut ctx,
    );
    planner.install_model(CurationStage::Match, Box::new(model)).expect("install model");

    let objective = Objective::cheapest_dollars();
    let pipeline = Pipeline::new("er_planned").op(er_op());
    let plan = planner.plan(&pipeline, &stats, &objective, &Tracer::disabled()).expect("plan");
    println!("{}\n", plan.summary());
    let chosen = plan.alt_of("entity_resolution").map(|a| a.name().to_string()).unwrap_or_default();

    // Serve the stream with the chosen physical pipeline.
    let planned = planner.compile(&plan, &mut ctx).expect("compile plan");
    let mut exec = planned.physical.fresh_instance().expect("replicable");
    let mut planned_correct = 0usize;
    for pair in &stream {
        let env = BTreeMap::from([("pairs".to_string(), pair_input(pair, &schema))]);
        let report = Executor::run(&mut exec, &mut ctx, env).expect("planned run");
        if report.get("matches").expect("output").as_bool() == Some(pair.label) {
            planned_correct += 1;
        }
    }
    let planned_usage = planned_llm.usage();
    let planned_usd = planned_usage.cost_usd(planned_llm.pricing());
    let planned_accuracy = planned_correct as f64 / stream.len() as f64;
    let serving_calls = planned_usage.calls - label_usage.calls - calibration_usage.calls;

    let mut table = TextTable::new(["arm", "LLM calls", "cost (USD)", "accuracy"]);
    table.row([
        "always-LLM".to_string(),
        naive_usage.calls.to_string(),
        format!("{naive_usd:.4}"),
        format!("{naive_accuracy:.3}"),
    ]);
    table.row([
        format!("planned ({chosen})"),
        planned_usage.calls.to_string(),
        format!("{planned_usd:.4}"),
        format!("{planned_accuracy:.3}"),
    ]);
    table.print();
    let gate_ratio = naive_usd / planned_usd.max(1e-12);
    println!(
        "\nShape: the planner pays once for teacher labels ({} calls) and calibration \
         ({} calls), then serves all {} pairs for {} LLM calls — {gate_ratio:.2}x cheaper \
         than paying per record, at accuracy {planned_accuracy:.3} against the plan's \
         {:.2} floor.",
        label_usage.calls,
        calibration_usage.calls,
        stream.len(),
        serving_calls,
        objective.accuracy_floor,
    );

    // ------------------------------------------------------------------
    // Audit replay (skipped in smoke): record the plan span, run a slice of
    // the stream under the same tracer, and reconcile estimated vs actual.
    // ------------------------------------------------------------------
    let mut audit_json = serde_json::json!(null);
    if !smoke {
        let (tracer, sink) = ring_tracer(8192);
        let audited = planner.plan(&pipeline, &stats, &objective, &tracer).expect("plan");
        let compiled = planner.compile(&audited, &mut ctx).expect("compile");
        let mut exec = compiled.physical.fresh_instance().expect("replicable");
        let mut audit_ctx = ExecContext::new(planned_llm.clone());
        audit_ctx.tracer = tracer.clone();
        for pair in stream.iter().take(50) {
            let env = BTreeMap::from([("pairs".to_string(), pair_input(pair, &schema))]);
            Executor::run(&mut exec, &mut audit_ctx, env).expect("audited run");
        }
        let audits = audit_events(&sink.events(), planned_llm.pricing());
        if let Some(audit) = audits.first() {
            println!(
                "\naudit: {} runs estimated ${:.4}, actually billed ${:.4}",
                audit.runs, audit.est_usd, audit.actual_usd
            );
            let op_rows: Vec<serde_json::Value> = audit
                .ops
                .iter()
                .map(|op| {
                    serde_json::json!({
                        "op": op.op.clone(), "alt": op.alt.clone(), "est_usd": op.est_usd,
                        "actual_usd": op.actual_usd, "actual_calls": op.actual_calls,
                    })
                })
                .collect();
            audit_json = serde_json::json!({
                "pipeline": audit.pipeline.clone(),
                "objective": audit.objective.clone(),
                "runs": audit.runs,
                "est_usd": audit.est_usd,
                "actual_usd": audit.actual_usd,
                "ops": op_rows,
            });
        }
    }

    write_json(
        "plan_quality",
        &serde_json::json!({
            "smoke": smoke,
            "seeds": seeds,
            "stream_pairs": stream.len(),
            "gate_metric": "always-LLM $ / planned total-cost-of-ownership $ \
                            (teacher labels + calibration + serving; deterministic \
                            simulator token counts, machine-independent)",
            "gate_ratio": gate_ratio,
            "accuracy_floor": objective.accuracy_floor,
            "floor_met": planned_accuracy >= objective.accuracy_floor,
            "naive": {
                "calls": naive_usage.calls,
                "tokens_in": naive_usage.tokens_in,
                "cost_usd": naive_usd,
                "accuracy": naive_accuracy,
            },
            "planned": {
                "chosen": chosen,
                "calls": planned_usage.calls,
                "label_calls": label_usage.calls,
                "calibration_calls": calibration_usage.calls,
                "serving_calls": serving_calls,
                "tokens_in": planned_usage.tokens_in,
                "cost_usd": planned_usd,
                "est_usd": plan.est_usd,
                "accuracy": planned_accuracy,
                "llm_sample_accuracy": llm_sample.accuracy(),
                "model_sample_accuracy": model_sample.accuracy(),
            },
            "audit": audit_json,
        }),
    );

    if planned_usd >= naive_usd {
        eprintln!(
            "FAIL: planned arm (${planned_usd:.4}) is not strictly cheaper than \
             always-LLM (${naive_usd:.4})"
        );
        std::process::exit(1);
    }
    if planned_accuracy < objective.accuracy_floor {
        eprintln!(
            "FAIL: planned accuracy {planned_accuracy:.3} fell below the plan's \
             {:.2} floor",
            objective.accuracy_floor
        );
        std::process::exit(1);
    }

    if let Some(path) = flag_value("--check-baseline") {
        match read_baseline_gate(&path) {
            Some(baseline) => {
                println!(
                    "\nRegression gate: naive/planned $ ratio = {gate_ratio:.2}x vs \
                     baseline {baseline:.2}x"
                );
                if gate_ratio < baseline / 2.0 {
                    eprintln!(
                        "REGRESSION: the planner's $ advantage over always-LLM fell \
                         more than 2x below the committed ratio"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no usable baseline at {path}; skipping the regression gate");
            }
        }
    }
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pull the gated metric out of a committed results file without a JSON
/// parser: the writer emits `"gate_ratio": <value>`.
fn read_baseline_gate(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let idx = text.find("\"gate_ratio\"")?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}
