//! **Trace export** — run a traced ER serving workload end to end and write
//! the Chrome `trace_event` JSON under `results/`, ready to open in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! One tracer is threaded through every layer: the serve lifecycle
//! (`serve_job` spans with queued/dequeued instants), pipeline and op
//! execution, gateway routing (attempt/fault/failover instants under each
//! request span), and per-call LLM usage. A mildly flaky primary backend is
//! injected so the exported timeline shows retries and failovers, not just
//! the happy path.

use lingua_bench::{arg_usize, results_dir, TextTable};
use lingua_core::{Compiler, ContextFactory, Data};
use lingua_dataset::generators::er::{self, ErDataset};
use lingua_dataset::labels::LabeledPair;
use lingua_dataset::world::WorldSpec;
use lingua_gateway::{FaultInjector, FaultPlan, Gateway, ServiceTransport};
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_serve::{PipelineServer, ServeConfig, SubmitRequest};
use lingua_trace::{chrome_trace_json, ring_tracer, TraceTree};
use std::sync::Arc;

const SEED: u64 = 9300;

const ER_PIPELINE: &str = r#"pipeline er {
    verdict = entity_resolution(a, b) using llm with {
        desc: "Determine if the following two records refer to the same entity.",
        output: "yesno"
    };
}"#;

fn main() {
    let jobs = arg_usize("--jobs", 12);
    let workers = arg_usize("--workers", 4);
    println!("Trace export: {jobs} traced ER jobs across {workers} workers\n");

    let world = WorldSpec::generate(SEED);
    let (tracer, sink) = ring_tracer(1 << 16);

    // Flaky primary + clean standby, sharing the workload's tracer so the
    // gateway's routing story lands in the same timeline as the serve spans.
    let gateway: Arc<Gateway> = Arc::new(
        Gateway::builder()
            .backend(Arc::new(FaultInjector::new(
                "flaky-primary",
                Arc::new(SimLlm::with_seed(&world, SEED)),
                FaultPlan::transient(0.15, SEED ^ 0x7ace),
            )))
            .backend(Arc::new(ServiceTransport::new(
                "standby",
                Arc::new(SimLlm::with_seed(&world, SEED)),
            )))
            .tracer(tracer.clone())
            .build(),
    );
    let factory = ContextFactory::new(Arc::clone(&gateway) as Arc<dyn LlmService>)
        .with_tracer(tracer.clone());
    let mut server = PipelineServer::start(
        factory,
        ServeConfig { workers: Some(workers), queue_capacity: jobs + 8, ..Default::default() },
    )
    .expect("valid bench config");
    server.attach_gateway(Arc::clone(&gateway));
    server.register_dsl("er", ER_PIPELINE, &Compiler::with_builtins()).expect("er DSL compiles");

    let split = er::generate(&world, ErDataset::BeerAdvoRateBeer, SEED);
    let schema = split.schema.clone();
    let pairs: Vec<_> = split.test.iter().take(jobs).collect();
    assert_eq!(pairs.len(), jobs, "ER test split too small for {jobs} jobs");
    let request = |pair: &LabeledPair| {
        SubmitRequest::new("er")
            .input("a", Data::Str(pair.left.describe(&schema)))
            .input("b", Data::Str(pair.right.describe(&schema)))
    };
    let handles: Vec<_> =
        pairs.iter().map(|&p| server.submit(request(p)).expect("queue sized for run")).collect();
    for handle in &handles {
        handle.wait().expect("traced job completes");
    }
    // Repeat one request so the cache-hit path shows on the timeline too.
    server.run(request(pairs[0])).expect("cache repeat completes");

    let metrics = server.metrics();
    server.shutdown();
    assert_eq!(tracer.dropped(), 0, "ring sized for the workload");
    let events = sink.events();
    let tree = TraceTree::build(&events).expect("trace stream is well-formed");

    let summary = metrics.trace.clone().unwrap_or_default();
    let mut table = TextTable::new(["Span kind", "Completed spans"]);
    for (kind, count) in &summary.spans_by_kind {
        table.row([(*kind).to_string(), count.to_string()]);
    }
    table.print();
    println!(
        "\n{} events, {} roots, {} instant(s); llm usage attributed: {} call(s), \
         {} tokens in, {} tokens out",
        summary.events,
        tree.roots.len(),
        summary.instants,
        summary.llm_calls,
        summary.tokens_in,
        summary.tokens_out,
    );

    let path = results_dir().join("er_trace_chrome.json");
    match std::fs::write(&path, chrome_trace_json(&events)) {
        Ok(()) => println!(
            "\nchrome trace written to {} — open in chrome://tracing or ui.perfetto.dev",
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
