//! **Table 2** (§4.3 numbers) — Data imputation on the Buy-style catalogue.
//!
//! Paper reference values:
//!
//! | Method            | Accuracy | LLM calls            |
//! |-------------------|----------|----------------------|
//! | HoloClean         | 16.2     | 0                    |
//! | IMP (supervised)  | 96.5     | 0 (thousands of labels) |
//! | FMs (naive LLM)   | 84.6     | 1 per row            |
//! | LLM module only   | 93.92    | 1 per row            |
//! | Lingua Manga      | 94.48    | ~1/6 per row         |

use lingua_bench::{arg_usize, fmt_mean_std, write_json, SeriesSet, TextTable};
use lingua_core::ExecContext;
use lingua_dataset::generators::imputation::{generate, training_catalogue};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::imputation::evaluate;
use lingua_tasks::imputation::holoclean::HoloCleanImputer;
use lingua_tasks::imputation::imp::ImpImputer;
use lingua_tasks::imputation::lingua::{register_tools, LinguaImputer};
use lingua_tasks::imputation::llm_only::{FmsImputer, LlmOnlyImputer};
use std::sync::Arc;

fn main() {
    let seeds = arg_usize("--seeds", 5);
    println!(
        "Table 2 (Section 4.3): Buy-style manufacturer imputation, mean over {seeds} seed(s)\n"
    );

    let mut series = SeriesSet::default();
    for seed in 0..seeds as u64 {
        let world = WorldSpec::generate(2000 + seed);
        let benchmark = generate(&world, seed);
        let rows = benchmark.len() as f64;

        // HoloClean: atomic-value statistics over a 500-row observed sample.
        {
            let llm = Arc::new(SimLlm::with_seed(&world, 2000 + seed));
            let mut ctx = ExecContext::new(llm);
            let catalogue = training_catalogue(&world, 500);
            let mut imputer = HoloCleanImputer::train(
                catalogue.iter().map(|(n, d, m)| (n.as_str(), d.as_str(), m.as_str())),
            );
            let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
            series.push("holoclean_acc", outcome.accuracy());
            series.push("holoclean_calls", outcome.llm_calls as f64 / rows);
        }

        // IMP: supervised text classifier, 4000 labels.
        {
            let llm = Arc::new(SimLlm::with_seed(&world, 2000 + seed));
            let mut ctx = ExecContext::new(llm);
            let catalogue = training_catalogue(&world, 4000);
            let mut imputer = ImpImputer::train(&catalogue);
            let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
            series.push("imp_acc", outcome.accuracy());
            series.push("imp_calls", outcome.llm_calls as f64 / rows);
        }

        // FMs: naive prompt, raw answer scoring.
        {
            let llm = Arc::new(SimLlm::with_seed(&world, 2000 + seed));
            let mut ctx = ExecContext::new(llm);
            let outcome = evaluate(&mut FmsImputer, &benchmark, &mut ctx);
            series.push("fms_acc", outcome.accuracy());
            series.push("fms_calls", outcome.llm_calls as f64 / rows);
        }

        // LLM module only: validated prompt, one call per row.
        {
            let llm = Arc::new(SimLlm::with_seed(&world, 2000 + seed));
            let mut ctx = ExecContext::new(llm);
            let mut imputer = LlmOnlyImputer::new(benchmark.vocabulary.clone());
            let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
            series.push("llm_only_acc", outcome.accuracy());
            series.push("llm_only_calls", outcome.llm_calls as f64 / rows);
        }

        // Lingua Manga: validated LLMGC rules + LLM fallback.
        {
            let llm = Arc::new(SimLlm::with_seed(&world, 2000 + seed));
            let mut ctx = ExecContext::new(llm);
            register_tools(&mut ctx, &benchmark.vocabulary);
            let mut imputer = LinguaImputer::build(&mut ctx).expect("validation must converge");
            // Exclude construction/validation calls from the per-row figure.
            let outcome = evaluate(&mut imputer, &benchmark, &mut ctx);
            series.push("lingua_acc", outcome.accuracy());
            series.push("lingua_calls", outcome.llm_calls as f64 / rows);
        }
    }

    let mut table =
        TextTable::new(["Method", "Accuracy %", "LLM calls/row", "(paper acc)", "(paper calls)"]);
    let rows = [
        ("HoloClean", "holoclean", "16.2", "0"),
        ("IMP (supervised)", "imp", "96.5", "0"),
        ("FMs (naive prompt)", "fms", "84.6", "1"),
        ("LLM module only", "llm_only", "93.92", "1"),
        ("Lingua Manga", "lingua", "94.48", "~1/6"),
    ];
    for (label, key, paper_acc, paper_calls) in rows {
        table.row([
            label.to_string(),
            fmt_mean_std(series.get(&format!("{key}_acc")), 100.0),
            format!("{:.3}", series.mean(&format!("{key}_calls"))),
            paper_acc.to_string(),
            paper_calls.to_string(),
        ]);
    }
    table.print();

    let ratio = series.mean("lingua_calls") / series.mean("llm_only_calls").max(1e-9);
    println!(
        "\nLLM-call economy: Lingua Manga uses {:.1}% of the pure-LLM module's calls \
         (paper: ~1/6 = 16.7%).",
        ratio * 100.0
    );
    write_json(
        "table2_data_imputation",
        &serde_json::json!({ "seeds": seeds, "series": series.to_json(), "call_ratio": ratio }),
    );
}
