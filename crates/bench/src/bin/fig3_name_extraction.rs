//! **Figure 3 / §4.2** — Name extraction: the tokenize → noun-phrase → tag
//! pipeline, its monolingual failure on multilingual data, the language-
//! detection + multilingual-tools fix, and the simulator's cost reduction.

use lingua_bench::{arg_usize, fmt_mean_std, write_json, SeriesSet, TextTable};
use lingua_core::ExecContext;
use lingua_dataset::generators::names::{generate, NamesConfig};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::names::pipeline::register_tools;
use lingua_tasks::names::{NameExtractionConfig, NameExtractionPipeline};
use std::sync::Arc;

fn main() {
    let seeds = arg_usize("--seeds", 3);
    let passages = arg_usize("--passages", 200);
    println!(
        "Figure 3 / Section 4.2: multilingual name extraction ({passages} passages, mean over {seeds} seed(s))\n"
    );

    let configs: [(&str, NameExtractionConfig); 3] = [
        (
            "monolingual (en-only)",
            NameExtractionConfig { multilingual: false, simulate_tagger: false },
        ),
        (
            "+ langdetect + multilingual tools",
            NameExtractionConfig { multilingual: true, simulate_tagger: false },
        ),
        (
            "+ simulator on the tagger",
            NameExtractionConfig { multilingual: true, simulate_tagger: true },
        ),
    ];

    let mut series = SeriesSet::default();
    for seed in 0..seeds as u64 {
        let world = WorldSpec::generate(3000 + seed);
        let corpus = generate(&world, &NamesConfig { passages, ..Default::default() }, seed);
        for (label, config) in &configs {
            let llm = Arc::new(SimLlm::with_seed(&world, 3000 + seed));
            let mut ctx = ExecContext::new(llm);
            register_tools(&mut ctx, &world);
            let mut pipeline =
                NameExtractionPipeline::build(&mut ctx, config).expect("pipeline builds");
            let score = pipeline.evaluate(&corpus, &mut ctx).expect("evaluation runs");
            series.push(&format!("{label}/precision"), score.precision);
            series.push(&format!("{label}/recall"), score.recall);
            series.push(&format!("{label}/f1"), score.f1);
            series.push(&format!("{label}/llm_calls"), score.llm_calls as f64);
        }
    }

    let mut table = TextTable::new(["Configuration", "Precision", "Recall", "F1", "LLM calls"]);
    for (label, _) in &configs {
        table.row([
            label.to_string(),
            fmt_mean_std(series.get(&format!("{label}/precision")), 100.0),
            fmt_mean_std(series.get(&format!("{label}/recall")), 100.0),
            fmt_mean_std(series.get(&format!("{label}/f1")), 100.0),
            format!("{:.0}", series.mean(&format!("{label}/llm_calls"))),
        ]);
    }
    table.print();

    let mono = series.mean("monolingual (en-only)/f1");
    let multi = series.mean("+ langdetect + multilingual tools/f1");
    let sim_calls = series.mean("+ simulator on the tagger/llm_calls");
    let plain_calls = series.mean("+ langdetect + multilingual tools/llm_calls");
    println!(
        "\nShape: multilingual data degrades the monolingual pipeline (F1 {:.1} → {:.1} \
         after the fix, +{:.1} points); the simulator serves the tagger at {:.0}% of the \
         LLM calls.",
        mono * 100.0,
        multi * 100.0,
        (multi - mono) * 100.0,
        sim_calls / plain_calls.max(1.0) * 100.0
    );
    write_json(
        "fig3_name_extraction",
        &serde_json::json!({ "seeds": seeds, "passages": passages, "series": series.to_json() }),
    );
}
