//! P3 — string-similarity and feature-extraction throughput: the inner loop
//! of every matcher and of knowledge-base resolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lingua_ml::features::{pair_features, rich_pair_features, HashingVectorizer};
use lingua_ml::textsim;

fn bench_textsim(c: &mut Criterion) {
    let a = "Golden Lantern Imperial Stout";
    let b = "Golden Lantren Imp. Stout - bottle";
    let mut group = c.benchmark_group("textsim");

    group.bench_function("levenshtein", |bch| {
        bch.iter(|| textsim::levenshtein(black_box(a), black_box(b)))
    });
    group.bench_function("jaro_winkler", |bch| {
        bch.iter(|| textsim::jaro_winkler(black_box(a), black_box(b)))
    });
    group.bench_function("jaccard_tokens", |bch| {
        bch.iter(|| textsim::jaccard_tokens(black_box(a), black_box(b)))
    });
    group.bench_function("trigram_cosine", |bch| {
        bch.iter(|| textsim::trigram_cosine(black_box(a), black_box(b)))
    });
    group.bench_function("monge_elkan", |bch| {
        bch.iter(|| textsim::monge_elkan(black_box(a), black_box(b)))
    });
    group.finish();

    let left: Vec<String> = vec![
        "Hoppy Badger".into(),
        "Stonegate Brewing".into(),
        "American IPA".into(),
        "5.2%".into(),
    ];
    let right: Vec<String> =
        vec!["Hopy Badgr - IPA".into(), "Stonegate".into(), "".into(), "5.20".into()];
    let mut group = c.benchmark_group("features");
    group.bench_function("pair_features_4_fields", |bch| {
        bch.iter(|| pair_features(black_box(&left), black_box(&right)))
    });
    group.bench_function("rich_pair_features_4_fields", |bch| {
        bch.iter(|| rich_pair_features(black_box(&left), black_box(&right)))
    });
    let vectorizer = HashingVectorizer::new(512);
    let text = "compact wireless keyboard from the vista 300 series with rechargeable battery";
    group.bench_function("hashing_vectorizer_512", |bch| {
        bch.iter(|| vectorizer.transform(black_box(text)))
    });
    group.finish();
}

criterion_group!(benches, bench_textsim);
criterion_main!(benches);
