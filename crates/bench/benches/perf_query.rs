//! P2 — mini-SQL query engine throughput over a 10k-row table: the cost of
//! the Connector's local execution path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lingua_dataset::query::Catalog;
use lingua_dataset::{Record, Schema, Table, Value};
use rand::prelude::*;
use rand::rngs::StdRng;

fn build_catalog(rows: usize) -> Catalog {
    let mut rng = StdRng::seed_from_u64(9);
    let schema = Schema::of_names(["id", "name", "manufacturer", "price"]);
    let makers = ["Sony", "Canon", "Garmin", "Epson", "Belkin"];
    let mut table = Table::new("products", schema);
    for i in 0..rows {
        table
            .push(Record::new(vec![
                Value::Int(i as i64),
                Value::Str(format!("product number {i}")),
                Value::Str(makers[rng.gen_range(0..makers.len())].to_string()),
                Value::Float((rng.gen_range(100..99999) as f64) / 100.0),
            ]))
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.register(table);
    catalog
}

fn bench_query(c: &mut Criterion) {
    let catalog = build_catalog(10_000);
    let mut group = c.benchmark_group("query_engine_10k_rows");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("filter_numeric", |b| {
        b.iter(|| {
            catalog
                .execute(black_box("SELECT id, price FROM products WHERE price < 100.0"))
                .unwrap()
        })
    });

    group.bench_function("like_scan", |b| {
        b.iter(|| {
            catalog.execute(black_box("SELECT id FROM products WHERE name LIKE '%999%'")).unwrap()
        })
    });

    group.bench_function("group_by_aggregate", |b| {
        b.iter(|| {
            catalog
                .execute(black_box(
                    "SELECT manufacturer, count(*), avg(price) FROM products GROUP BY manufacturer",
                ))
                .unwrap()
        })
    });

    group.bench_function("order_by_limit", |b| {
        b.iter(|| {
            catalog
                .execute(black_box("SELECT id, price FROM products ORDER BY price DESC LIMIT 10"))
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
