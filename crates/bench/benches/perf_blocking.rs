//! P4 — token blocking and parallel feature extraction over a 2k-row table:
//! the scale path that keeps whole-table deduplication (and its LLM bill)
//! tractable.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lingua_core::executor::parallel_map;
use lingua_dataset::world::{WorldConfig, WorldSpec};
use lingua_dataset::{Record, Schema, Table, Value};
use lingua_ml::features::pair_features;
use lingua_tasks::er::blocking::token_blocking;

fn beers_table(n: usize) -> Table {
    let world = WorldSpec::generate_with(
        3,
        &WorldConfig { beers: n, products: 10, restaurants: 10, songs: 10, ..Default::default() },
    );
    let schema = Schema::of_names(["beer_name", "brewery"]);
    let mut table = Table::new("beers", schema);
    for beer in &world.beers {
        table
            .push(Record::new(vec![
                Value::Str(beer.name.clone()),
                Value::Str(beer.brewery.clone()),
            ]))
            .unwrap();
    }
    table
}

fn bench_blocking(c: &mut Criterion) {
    let table = beers_table(2000);
    let mut group = c.benchmark_group("blocking_2k_rows");
    group.throughput(Throughput::Elements(2000));
    group.bench_function("token_blocking", |b| {
        b.iter(|| token_blocking(black_box(&table), "beer_name", 50).unwrap())
    });
    group.finish();

    // Candidate scoring, sequential vs parallel.
    let (pairs, _) = token_blocking(&table, "beer_name", 50).unwrap();
    let rows = table.rows();
    let fields: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(|v| v.render()).collect()).collect();
    let mut group = c.benchmark_group("candidate_scoring");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| pairs.iter().map(|&(i, j)| pair_features(&fields[i], &fields[j])[0]).sum::<f64>())
    });
    for threads in [2, 4] {
        group.bench_function(format!("parallel_{threads}_threads"), |b| {
            b.iter(|| {
                parallel_map(&pairs, threads, |&(i, j)| pair_features(&fields[i], &fields[j])[0])
                    .iter()
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
