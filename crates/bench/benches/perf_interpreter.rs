//! P1 — MangaScript interpreter throughput: the cost of running LLMGC
//! modules record-at-a-time (parse once, execute per record).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lingua_script::{parse, Interpreter, NoHost, Value};

const TOKENIZER: &str = r#"
fn process(text) {
    if is_null(text) { return []; }
    let out = [];
    for w in split(text, "") {
        let t = strip_punct(w);
        if len(t) > 0 { push(out, t); }
    }
    return out;
}
fn strip_punct(w) {
    let cs = chars(w);
    let start = 0;
    let end = len(cs);
    while start < end && !(is_alpha(cs[start]) || is_digit(cs[start])) { start = start + 1; }
    while end > start && !(is_alpha(cs[end - 1]) || is_digit(cs[end - 1])) { end = end - 1; }
    let out = "";
    for i in range(start, end) { out = out + cs[i]; }
    return out;
}
"#;

const FIB: &str = "fn main() { return fib(16); } fn fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); }";

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");

    let program = parse(TOKENIZER).unwrap();
    let text =
        "Yesterday John Smith met with the board of Acme Corp to discuss the annual budget, \
                and Mary Brown presented the new prototype.";
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("tokenizer_per_record", |b| {
        let mut interp = Interpreter::new(&program);
        b.iter(|| {
            interp
                .call(&mut NoHost, "process", vec![Value::Str(black_box(text).to_string())])
                .unwrap()
        })
    });

    group.bench_function("parse_tokenizer_source", |b| {
        b.iter(|| parse(black_box(TOKENIZER)).unwrap())
    });

    let fib = parse(FIB).unwrap();
    group.bench_function("fib_16_recursion", |b| {
        let mut interp = Interpreter::new(&fib);
        b.iter(|| interp.call(&mut NoHost, "main", vec![]).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
