//! Multinomial naive Bayes over token counts — the workhorse behind the
//! simulated-IMP imputation baseline and the Simulator's text classifiers.

use crate::textsim::tokens;
use std::collections::BTreeMap;

/// A trained multinomial naive-Bayes text classifier mapping token bags to
/// one of `n` string classes.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    classes: Vec<String>,
    /// log P(class)
    log_prior: Vec<f64>,
    /// per-class token log-likelihoods, with Laplace smoothing baked in.
    log_likelihood: Vec<BTreeMap<String, f64>>,
    /// log of the smoothed probability for unseen tokens, per class.
    log_unseen: Vec<f64>,
    vocab_size: usize,
}

impl NaiveBayes {
    /// Train from `(text, class)` pairs. Laplace smoothing with alpha = 1.
    pub fn train<'a>(examples: impl IntoIterator<Item = (&'a str, &'a str)>) -> NaiveBayes {
        let mut class_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut class_docs: Vec<usize> = Vec::new();
        let mut class_tokens: Vec<BTreeMap<String, usize>> = Vec::new();
        let mut vocab: std::collections::BTreeSet<String> = Default::default();
        let mut total_docs = 0usize;

        for (text, class) in examples {
            let idx = *class_index.entry(class.to_string()).or_insert_with(|| {
                class_docs.push(0);
                class_tokens.push(BTreeMap::new());
                class_docs.len() - 1
            });
            class_docs[idx] += 1;
            total_docs += 1;
            for tok in tokens(text) {
                vocab.insert(tok.clone());
                *class_tokens[idx].entry(tok).or_default() += 1;
            }
        }
        assert!(total_docs > 0, "cannot train on an empty set");

        let vocab_size = vocab.len().max(1);
        let mut classes: Vec<String> = vec![String::new(); class_index.len()];
        for (name, &idx) in &class_index {
            classes[idx] = name.clone();
        }
        let log_prior: Vec<f64> =
            class_docs.iter().map(|&d| (d as f64 / total_docs as f64).ln()).collect();
        let mut log_likelihood = Vec::with_capacity(classes.len());
        let mut log_unseen = Vec::with_capacity(classes.len());
        for counts in &class_tokens {
            let total: usize = counts.values().sum();
            let denom = (total + vocab_size) as f64;
            log_unseen.push((1.0 / denom).ln());
            log_likelihood.push(
                counts
                    .iter()
                    .map(|(tok, &c)| (tok.clone(), ((c + 1) as f64 / denom).ln()))
                    .collect(),
            );
        }
        NaiveBayes { classes, log_prior, log_likelihood, log_unseen, vocab_size }
    }

    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Per-class log joint scores for `text`, in class order.
    pub fn scores(&self, text: &str) -> Vec<f64> {
        let toks = tokens(text);
        (0..self.classes.len())
            .map(|c| {
                let mut score = self.log_prior[c];
                for tok in &toks {
                    score += self.log_likelihood[c].get(tok).copied().unwrap_or(self.log_unseen[c]);
                }
                score
            })
            .collect()
    }

    /// Most likely class and its posterior probability.
    pub fn predict(&self, text: &str) -> (&str, f64) {
        let scores = self.scores(text);
        let (best, &best_score) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("at least one class");
        // Softmax over log-joint for a posterior, computed stably.
        let denom: f64 = scores.iter().map(|s| (s - best_score).exp()).sum();
        (&self.classes[best], 1.0 / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NaiveBayes {
        NaiveBayes::train([
            ("playstation memory card sony console", "Sony"),
            ("sony wireless controller dualshock", "Sony"),
            ("playstation portable screen", "Sony"),
            ("xbox controller microsoft wireless", "Microsoft"),
            ("microsoft surface keyboard", "Microsoft"),
            ("xbox headset chat", "Microsoft"),
            ("switch dock nintendo joycon", "Nintendo"),
            ("nintendo game card zelda", "Nintendo"),
        ])
    }

    #[test]
    fn classifies_by_token_evidence() {
        let m = model();
        assert_eq!(m.predict("playstation 2 memory card 8mb").0, "Sony");
        assert_eq!(m.predict("xbox wireless headset").0, "Microsoft");
        assert_eq!(m.predict("joycon charging dock").0, "Nintendo");
    }

    #[test]
    fn posterior_is_a_probability() {
        let m = model();
        let (_, p) = m.predict("playstation console");
        assert!(p > 0.5 && p <= 1.0);
        let (_, p_unseen) = m.predict("entirely unrelated words qqq");
        assert!(p_unseen <= 1.0 && p_unseen > 0.0);
    }

    #[test]
    fn handles_unseen_tokens_gracefully() {
        let m = model();
        // Should not panic and should return *some* class.
        let (class, _) = m.predict("zzz yyy xxx");
        assert!(m.classes().contains(&class.to_string()));
    }

    #[test]
    fn classes_are_complete() {
        let m = model();
        let mut classes = m.classes().to_vec();
        classes.sort();
        assert_eq!(classes, ["Microsoft", "Nintendo", "Sony"]);
        assert!(m.vocab_size() > 10);
    }

    #[test]
    fn prior_matters_for_empty_text() {
        let m = NaiveBayes::train([("a", "Major"), ("b", "Major"), ("c", "Major"), ("d", "Minor")]);
        assert_eq!(m.predict("").0, "Major");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        NaiveBayes::train(std::iter::empty::<(&str, &str)>());
    }
}
