//! k-nearest-neighbour classification with cosine or Euclidean distance.

use crate::Example;

/// Distance metric for [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Euclidean,
    Cosine,
}

/// A lazy (memorizing) kNN classifier.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    metric: Metric,
    examples: Vec<Example>,
}

impl Knn {
    pub fn new(k: usize, metric: Metric, examples: Vec<Example>) -> Knn {
        assert!(k >= 1, "k must be >= 1");
        assert!(!examples.is_empty(), "cannot build kNN over an empty set");
        Knn { k, metric, examples }
    }

    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.metric {
            Metric::Euclidean => {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
            }
            Metric::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na * nb)
                }
            }
        }
    }

    /// Predict the majority label among the k nearest examples, along with
    /// the vote fraction it won (a confidence proxy).
    pub fn predict(&self, features: &[f64]) -> (usize, f64) {
        let mut dists: Vec<(f64, usize)> = self
            .examples
            .iter()
            .map(|ex| (self.distance(features, &ex.features), ex.label))
            .collect();
        let k = self.k.min(dists.len());
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut votes: std::collections::BTreeMap<usize, usize> = Default::default();
        for (_, label) in &dists[..k] {
            *votes.entry(*label).or_default() += 1;
        }
        let (&label, &count) = votes.iter().max_by_key(|(_, &c)| c).unwrap();
        (label, count as f64 / k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Example> {
        // Two clusters at (0,0) and (10,10).
        let mut out = Vec::new();
        for dx in 0..3 {
            for dy in 0..3 {
                out.push(Example::new(vec![dx as f64 * 0.1, dy as f64 * 0.1], 0));
                out.push(Example::new(vec![10.0 + dx as f64 * 0.1, 10.0 + dy as f64 * 0.1], 1));
            }
        }
        out
    }

    #[test]
    fn euclidean_classification() {
        let knn = Knn::new(3, Metric::Euclidean, grid());
        assert_eq!(knn.predict(&[0.5, 0.5]).0, 0);
        assert_eq!(knn.predict(&[9.0, 9.0]).0, 1);
    }

    #[test]
    fn confidence_reflects_vote_share() {
        let knn = Knn::new(5, Metric::Euclidean, grid());
        let (_, conf) = knn.predict(&[0.0, 0.0]);
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let examples = vec![Example::new(vec![1.0, 0.0], 0), Example::new(vec![0.0, 1.0], 1)];
        let knn = Knn::new(1, Metric::Cosine, examples);
        // Large-magnitude vector in the x direction is still class 0.
        assert_eq!(knn.predict(&[100.0, 1.0]).0, 0);
        // Zero vector: maximal distance from everything; still answers.
        let (label, _) = knn.predict(&[0.0, 0.0]);
        assert!(label <= 1);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let examples = vec![Example::new(vec![0.0], 7)];
        let knn = Knn::new(99, Metric::Euclidean, examples);
        assert_eq!(knn.predict(&[0.5]).0, 7);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_examples_panic() {
        Knn::new(1, Metric::Euclidean, vec![]);
    }
}
