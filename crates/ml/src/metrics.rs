//! Evaluation metrics: accuracy, precision/recall/F1, confusion matrices.

/// Binary classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl Confusion {
    /// Tally from parallel prediction/label slices.
    pub fn from_pairs(predictions: &[bool], labels: &[bool]) -> Confusion {
        assert_eq!(predictions.len(), labels.len(), "slices must align");
        let mut c = Confusion::default();
        for (&p, &y) in predictions.iter().zip(labels) {
            match (p, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    pub fn add(&mut self, prediction: bool, label: bool) {
        match (prediction, label) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Multiclass accuracy from parallel slices.
pub fn accuracy<T: PartialEq>(predictions: &[T], labels: &[T]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "slices must align");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(labels).filter(|(p, y)| p == y).count();
    correct as f64 / predictions.len() as f64
}

/// Set-based precision/recall/F1 for extraction tasks (e.g. name extraction):
/// compares predicted strings to gold strings as multisets.
pub fn extraction_prf(predicted: &[String], gold: &[String]) -> (f64, f64, f64) {
    use std::collections::BTreeMap;
    let mut gold_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for g in gold {
        *gold_counts.entry(g.as_str()).or_default() += 1;
    }
    let mut tp = 0usize;
    for p in predicted {
        if let Some(c) = gold_counts.get_mut(p.as_str()) {
            if *c > 0 {
                *c -= 1;
                tp += 1;
            }
        }
    }
    let precision = if predicted.is_empty() { 0.0 } else { tp as f64 / predicted.len() as f64 };
    let recall = if gold.is_empty() { 0.0 } else { tp as f64 / gold.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_metrics() {
        let preds = [true, true, false, false, true];
        let labels = [true, false, true, false, true];
        let c = Confusion::from_pairs(&preds, &labels);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.accuracy() - 0.6).abs() < 1e-9);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let c = Confusion::from_pairs(&[true, false], &[true, false]);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn incremental_add_matches_batch() {
        let preds = [true, false, true];
        let labels = [false, false, true];
        let batch = Confusion::from_pairs(&preds, &labels);
        let mut inc = Confusion::default();
        for (&p, &y) in preds.iter().zip(&labels) {
            inc.add(p, y);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn multiclass_accuracy() {
        assert_eq!(accuracy(&["a", "b", "c"], &["a", "x", "c"]), 2.0 / 3.0);
        assert_eq!(accuracy::<u8>(&[], &[]), 0.0);
    }

    #[test]
    fn extraction_prf_multiset_semantics() {
        let predicted =
            vec!["John Smith".to_string(), "John Smith".to_string(), "Mary Brown".to_string()];
        let gold = vec!["John Smith".to_string(), "Mary Brown".to_string(), "Lee Wong".to_string()];
        let (p, r, f1) = extraction_prf(&predicted, &gold);
        assert!((p - 2.0 / 3.0).abs() < 1e-9);
        assert!((r - 2.0 / 3.0).abs() < 1e-9);
        assert!(f1 > 0.6);
        // Empty cases.
        assert_eq!(extraction_prf(&[], &gold).0, 0.0);
        assert_eq!(extraction_prf(&predicted, &[]).1, 0.0);
    }
}
