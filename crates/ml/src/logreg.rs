//! Binary logistic regression trained with mini-batch SGD.

use crate::Example;
#[cfg(test)]
use crate::FeatureVec;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig { epochs: 60, learning_rate: 0.3, l2: 1e-4, batch_size: 16, seed: 0 }
    }
}

/// A trained binary logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogReg {
    pub weights: Vec<f64>,
    pub bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogReg {
    /// Train on examples with labels in `{0, 1}`. Examples with other labels
    /// are treated as 1 if nonzero.
    pub fn train(examples: &[Example], config: &LogRegConfig) -> LogReg {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        let dims = examples[0].features.len();
        let mut weights = vec![0.0; dims];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            // Simple 1/sqrt decay keeps late epochs stable.
            let lr = config.learning_rate / (1.0 + epoch as f64).sqrt();
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut grad_w = vec![0.0; dims];
                let mut grad_b = 0.0;
                for &i in batch {
                    let ex = &examples[i];
                    let y = if ex.label != 0 { 1.0 } else { 0.0 };
                    let p = sigmoid(dot(&weights, &ex.features) + bias);
                    let err = p - y;
                    for (g, x) in grad_w.iter_mut().zip(&ex.features) {
                        *g += err * x;
                    }
                    grad_b += err;
                }
                let scale = lr / batch.len() as f64;
                for (w, g) in weights.iter_mut().zip(&grad_w) {
                    *w -= scale * (g + config.l2 * *w);
                }
                bias -= scale * grad_b;
            }
        }
        LogReg { weights, bias }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, features) + self.bias)
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Hard prediction at a custom threshold.
    pub fn predict_at(&self, features: &[f64], threshold: f64) -> bool {
        self.predict_proba(features) >= threshold
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Pick the classification threshold maximizing F1 on a validation set.
pub fn tune_threshold(model: &LogReg, valid: &[Example]) -> f64 {
    let mut best = (0.5, -1.0);
    let mut t = 0.05;
    while t < 0.96 {
        let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
        for ex in valid {
            let pred = model.predict_at(&ex.features, t);
            let actual = ex.label != 0;
            match (pred, actual) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                (false, false) => {}
            }
        }
        let f1 = if tp == 0.0 { 0.0 } else { 2.0 * tp / (2.0 * tp + fp + fn_) };
        if f1 > best.1 {
            best = (t, f1);
        }
        t += 0.05;
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable blob data.
    fn blobs(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let center = if label == 1 { 2.0 } else { -2.0 };
                let features: FeatureVec =
                    (0..3).map(|_| center + rng.gen_range(-1.0..1.0)).collect();
                Example::new(features, label)
            })
            .collect()
    }

    #[test]
    fn learns_separable_data() {
        let train = blobs(200, 1);
        let test = blobs(100, 2);
        let model = LogReg::train(&train, &LogRegConfig::default());
        let correct =
            test.iter().filter(|ex| model.predict(&ex.features) == (ex.label == 1)).count();
        assert!(correct >= 97, "accuracy {correct}/100");
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let train = blobs(200, 3);
        let model = LogReg::train(&train, &LogRegConfig::default());
        assert!(model.predict_proba(&[3.0, 3.0, 3.0]) > 0.9);
        assert!(model.predict_proba(&[-3.0, -3.0, -3.0]) < 0.1);
    }

    #[test]
    fn training_is_deterministic() {
        let train = blobs(100, 4);
        let a = LogReg::train(&train, &LogRegConfig::default());
        let b = LogReg::train(&train, &LogRegConfig::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        LogReg::train(&[], &LogRegConfig::default());
    }

    #[test]
    fn threshold_tuning_improves_f1_on_imbalanced_data() {
        // 10% positives with overlapping distributions.
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<Example> = (0..400)
            .map(|i| {
                let label = usize::from(i % 10 == 0);
                let center = if label == 1 { 0.8 } else { -0.2 };
                Example::new(vec![center + rng.gen_range(-1.0..1.0)], label)
            })
            .collect();
        let model = LogReg::train(&data[..300], &LogRegConfig::default());
        let threshold = tune_threshold(&model, &data[300..]);
        assert!((0.05..0.95).contains(&threshold));
    }
}
