//! String similarity measures.
//!
//! All functions return a similarity in `[0, 1]` (1 = identical) unless noted,
//! operate on Unicode scalar values, and are case-sensitive — callers that
//! want case-insensitive behaviour should lowercase first (the feature
//! extractor does).

use std::collections::BTreeSet;

/// Raw Levenshtein edit distance (insert/delete/substitute, unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Levenshtein similarity: `1 - dist / max_len`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions.
    let mut transpositions = 0usize;
    let mut j = 0usize;
    for (i, &flag) in a_matched.iter().enumerate() {
        if flag {
            while !b_matched[j] {
                j += 1;
            }
            if a[i] != b[j] {
                transpositions += 1;
            }
            j += 1;
        }
    }
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64 / 2.0) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard 0.1 prefix scale, capped at a
/// 4-character common prefix.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let base = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    base + prefix * 0.1 * (1.0 - base)
}

/// Whitespace tokenization, lowercased, punctuation-trimmed.
pub fn tokens(text: &str) -> Vec<String> {
    text.split(|c: char| c.is_whitespace() || c == ',' || c == ';' || c == '/')
        .map(|t| t.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase())
        .filter(|t| !t.is_empty())
        .collect()
}

/// Jaccard similarity over whitespace tokens.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<String> = tokens(a).into_iter().collect();
    let sb: BTreeSet<String> = tokens(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Overlap coefficient over tokens: `|A ∩ B| / min(|A|, |B|)` — robust to one
/// side having extra decorations ("(Remastered)").
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<String> = tokens(a).into_iter().collect();
    let sb: BTreeSet<String> = tokens(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    inter / sa.len().min(sb.len()) as f64
}

/// Character trigrams of the lowercased string, space-padded.
fn trigrams(text: &str) -> Vec<String> {
    let padded: Vec<char> = format!("  {}  ", text.to_lowercase()).chars().collect();
    padded.windows(3).map(|w| w.iter().collect()).collect()
}

/// Cosine similarity over character-trigram counts.
pub fn trigram_cosine(a: &str, b: &str) -> f64 {
    use std::collections::BTreeMap;
    let mut ca: BTreeMap<String, f64> = BTreeMap::new();
    let mut cb: BTreeMap<String, f64> = BTreeMap::new();
    for g in trigrams(a) {
        *ca.entry(g).or_default() += 1.0;
    }
    for g in trigrams(b) {
        *cb.entry(g).or_default() += 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return if ca.is_empty() && cb.is_empty() { 1.0 } else { 0.0 };
    }
    let dot: f64 = ca.iter().filter_map(|(g, x)| cb.get(g).map(|y| x * y)).sum();
    let na: f64 = ca.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|x| x * x).sum::<f64>().sqrt();
    dot / (na * nb)
}

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in `b`.
/// Asymmetric; callers usually take `max(me(a,b), me(b,a))`.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() {
        return if tb.is_empty() { 1.0 } else { 0.0 };
    }
    if tb.is_empty() {
        return 0.0;
    }
    let total: f64 =
        ta.iter().map(|x| tb.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max)).sum();
    total / ta.len() as f64
}

/// Exact-match indicator on the lowercased, whitespace-normalized strings.
pub fn exact_norm(a: &str, b: &str) -> f64 {
    let norm = |s: &str| tokens(s).join(" ");
    if norm(a) == norm(b) {
        1.0
    } else {
        0.0
    }
}

/// Similarity between strings that may contain numbers (prices, ABVs,
/// durations): extracts numeric runs and compares them; falls back to
/// Levenshtein similarity when either side has no number.
pub fn numeric_sim(a: &str, b: &str) -> f64 {
    let na = extract_numbers(a);
    let nb = extract_numbers(b);
    if na.is_empty() || nb.is_empty() {
        return levenshtein_sim(a, b);
    }
    // Compare the full numeric vectors pairwise (aligned by position).
    let n = na.len().max(nb.len());
    let mut total = 0.0;
    for i in 0..n {
        match (na.get(i), nb.get(i)) {
            (Some(&x), Some(&y)) => {
                let denom = x.abs().max(y.abs()).max(1e-9);
                total += 1.0 - ((x - y).abs() / denom).min(1.0);
            }
            _ => { /* missing position contributes 0 */ }
        }
    }
    total / n as f64
}

/// Pull every decimal number out of a string. `"4:05"` yields `[4, 5]`;
/// `"$12.99"` yields `[12.99]`.
pub fn extract_numbers(text: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_ascii_digit() || (c == '.' && !current.is_empty() && !current.contains('.')) {
            current.push(c);
        } else if !current.is_empty() {
            if let Ok(v) = current.trim_end_matches('.').parse::<f64>() {
                out.push(v);
            }
            current.clear();
        }
    }
    if !current.is_empty() {
        if let Ok(v) = current.trim_end_matches('.').parse::<f64>() {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "xy"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("café", "cafe"), 1); // unicode-aware
    }

    #[test]
    fn levenshtein_sim_range() {
        assert_eq!(levenshtein_sim("same", "same"), 1.0);
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert!(levenshtein_sim("abc", "xyz") <= 0.0 + 1e-9);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-4);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("a", ""), 0.0);
        assert!(jaro_winkler("dwayne", "duane") > 0.8);
    }

    #[test]
    fn jaccard_and_overlap() {
        assert_eq!(jaccard_tokens("a b c", "a b c"), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        assert!((jaccard_tokens("hoppy badger ipa", "hoppy badger") - 2.0 / 3.0).abs() < 1e-9);
        // Overlap ignores the extra decoration entirely.
        assert_eq!(overlap_tokens("midnight hearts", "midnight hearts (remastered)"), 1.0);
        assert_eq!(overlap_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("a", ""), 0.0);
    }

    #[test]
    fn tokens_strip_punctuation_and_case() {
        assert_eq!(tokens("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokens("The (Remastered)"), vec!["the", "remastered"]);
        assert!(tokens("  ").is_empty());
    }

    #[test]
    fn trigram_cosine_behaviour() {
        assert!((trigram_cosine("abc", "abc") - 1.0).abs() < 1e-9);
        assert!(trigram_cosine("playstation", "playstaton") > 0.75);
        assert!(trigram_cosine("playstation", "xbox") < 0.3);
        assert_eq!(trigram_cosine("", ""), 1.0);
    }

    #[test]
    fn monge_elkan_token_alignment() {
        // Token order doesn't matter much.
        let me = monge_elkan("badger hoppy", "hoppy badger");
        assert!(me > 0.99);
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
    }

    #[test]
    fn exact_norm_ignores_case_and_punct() {
        assert_eq!(exact_norm("Hoppy Badger", "hoppy badger"), 1.0);
        assert_eq!(exact_norm("Hoppy Badger", "hoppy badgers"), 0.0);
    }

    #[test]
    fn numeric_extraction_and_similarity() {
        assert_eq!(extract_numbers("$12.99"), vec![12.99]);
        assert_eq!(extract_numbers("4:05"), vec![4.0, 5.0]);
        assert_eq!(extract_numbers("no numbers"), Vec::<f64>::new());
        assert!((numeric_sim("5.2%", "5.2") - 1.0).abs() < 1e-9);
        assert!(numeric_sim("5.2%", "9.9%") < 0.6);
        // Fallback to string similarity without numbers.
        assert_eq!(numeric_sim("abc", "abc"), 1.0);
    }

    #[test]
    fn similarities_are_bounded() {
        let pairs = [
            ("", ""),
            ("a", "b"),
            ("Golden Lantern", "Golden Lantren"),
            ("完全", "完全一致"),
            ("x", "a much longer string entirely"),
        ];
        for (a, b) in pairs {
            for f in [
                levenshtein_sim,
                jaro,
                jaro_winkler,
                jaccard_tokens,
                trigram_cosine,
                monge_elkan,
                overlap_tokens,
            ] {
                let s = f(a, b);
                assert!((0.0..=1.0 + 1e-9).contains(&s), "{a:?} {b:?} -> {s}");
            }
        }
    }
}
