//! CART decision trees (binary splits on numeric features, Gini impurity).

use crate::Example;

/// Tree growth hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// If set, consider only this many (seeded-random) features per split —
    /// used by the random forest.
    pub max_features: Option<usize>,
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 8, min_samples_split: 4, max_features: None, seed: 0 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
}

impl DecisionTree {
    pub fn train(examples: &[Example], config: &TreeConfig) -> DecisionTree {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        let n_classes = examples.iter().map(|e| e.label).max().unwrap() + 1;
        let indices: Vec<usize> = (0..examples.len()).collect();
        let mut rng_state = config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let root = grow(examples, &indices, n_classes, config, 0, &mut rng_state);
        DecisionTree { root, n_classes }
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class-probability distribution for one input.
    pub fn predict_dist(&self, features: &[f64]) -> Vec<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { dist } => return dist.clone(),
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    pub fn predict(&self, features: &[f64]) -> usize {
        let dist = self.predict_dist(features);
        dist.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of decision nodes (for tests / introspection).
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

/// xorshift step — a tiny deterministic RNG for feature subsampling so the
/// tree itself does not need a full `StdRng`.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn class_dist(examples: &[Example], indices: &[usize], n_classes: usize) -> Vec<f64> {
    let mut dist = vec![0.0; n_classes];
    for &i in indices {
        dist[examples[i].label] += 1.0;
    }
    let total: f64 = dist.iter().sum();
    if total > 0.0 {
        for d in &mut dist {
            *d /= total;
        }
    }
    dist
}

fn gini(dist: &[f64]) -> f64 {
    1.0 - dist.iter().map(|p| p * p).sum::<f64>()
}

fn grow(
    examples: &[Example],
    indices: &[usize],
    n_classes: usize,
    config: &TreeConfig,
    depth: usize,
    rng_state: &mut u64,
) -> Node {
    let dist = class_dist(examples, indices, n_classes);
    let impurity = gini(&dist);
    if depth >= config.max_depth || indices.len() < config.min_samples_split || impurity < 1e-9 {
        return Node::Leaf { dist };
    }

    let n_features = examples[indices[0]].features.len();
    let feature_pool: Vec<usize> = match config.max_features {
        Some(m) if m < n_features => {
            // Sample m distinct features without replacement.
            let mut pool: Vec<usize> = (0..n_features).collect();
            for i in 0..m {
                let j = i + (next_u64(rng_state) as usize) % (n_features - i);
                pool.swap(i, j);
            }
            pool.truncate(m);
            pool
        }
        _ => (0..n_features).collect(),
    };

    let mut best: Option<(f64, usize, f64)> = None; // (weighted gini, feature, threshold)
    for &feat in &feature_pool {
        // Candidate thresholds: midpoints between sorted unique values.
        let mut values: Vec<f64> = indices.iter().map(|&i| examples[i].features[feat]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| examples[i].features[feat] <= threshold);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let gl = gini(&class_dist(examples, &left, n_classes));
            let gr = gini(&class_dist(examples, &right, n_classes));
            let weighted =
                (left.len() as f64 * gl + right.len() as f64 * gr) / indices.len() as f64;
            if best.map(|(b, _, _)| weighted < b - 1e-12).unwrap_or(true) {
                best = Some((weighted, feat, threshold));
            }
        }
    }

    // Zero-gain splits are allowed (weighted == impurity): greedy gain-only
    // CART cannot learn XOR-like targets where the first split is
    // uninformative alone. Recursion still terminates because both sides are
    // non-empty and depth/min-samples bounds apply.
    match best {
        Some((weighted, feature, threshold)) if weighted <= impurity + 1e-12 => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| examples[i].features[feature] <= threshold);
            let left = grow(examples, &left_idx, n_classes, config, depth + 1, rng_state);
            let right = grow(examples, &right_idx, n_classes, config, depth + 1, rng_state);
            Node::Split { feature, threshold, left: Box::new(left), right: Box::new(right) }
        }
        _ => Node::Leaf { dist },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Vec<Example> {
        // XOR is not linearly separable; trees handle it.
        let mut out = Vec::new();
        for _ in 0..10 {
            out.push(Example::new(vec![0.0, 0.0], 0));
            out.push(Example::new(vec![1.0, 1.0], 0));
            out.push(Example::new(vec![0.0, 1.0], 1));
            out.push(Example::new(vec![1.0, 0.0], 1));
        }
        out
    }

    #[test]
    fn learns_xor() {
        let tree = DecisionTree::train(&xor_data(), &TreeConfig::default());
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
    }

    #[test]
    fn pure_node_is_a_leaf() {
        let examples = vec![
            Example::new(vec![1.0], 0),
            Example::new(vec![2.0], 0),
            Example::new(vec![3.0], 0),
        ];
        let tree = DecisionTree::train(&examples, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let tree =
            DecisionTree::train(&xor_data(), &TreeConfig { max_depth: 0, ..Default::default() });
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn predict_dist_sums_to_one() {
        let tree = DecisionTree::train(&xor_data(), &TreeConfig::default());
        let dist = tree.predict_dist(&[0.5, 0.5]);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(dist.len(), tree.n_classes());
    }

    #[test]
    fn feature_subsampling_still_trains() {
        let tree = DecisionTree::train(
            &xor_data(),
            &TreeConfig { max_features: Some(1), seed: 3, ..Default::default() },
        );
        // With one random feature per split it may not solve XOR, but it
        // must produce a valid tree.
        assert!(tree.node_count() >= 1);
        let _ = tree.predict(&[0.0, 1.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DecisionTree::train(&xor_data(), &TreeConfig { seed: 5, ..Default::default() });
        let b = DecisionTree::train(&xor_data(), &TreeConfig { seed: 5, ..Default::default() });
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.predict_dist(&[0.2, 0.9]), b.predict_dist(&[0.2, 0.9]));
    }
}
