//! Random forests: bagged CART trees with per-split feature subsampling.
//! This is the engine of the simulated-Magellan entity-matching baseline.

use crate::tree::{DecisionTree, TreeConfig};
use crate::Example;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 25, tree: TreeConfig::default(), seed: 0 }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    pub fn train(examples: &[Example], config: &ForestConfig) -> RandomForest {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        let n_classes = examples.iter().map(|e| e.label).max().unwrap() + 1;
        let n_features = examples[0].features.len();
        // sqrt(d) features per split, the standard default.
        let max_features = (n_features as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let trees = (0..config.n_trees)
            .map(|t| {
                // Bootstrap sample.
                let sample: Vec<Example> = (0..examples.len())
                    .map(|_| examples[rng.gen_range(0..examples.len())].clone())
                    .collect();
                let tree_config = TreeConfig {
                    max_features: Some(config.tree.max_features.unwrap_or(max_features)),
                    seed: config.seed.wrapping_add(t as u64 + 1),
                    ..config.tree.clone()
                };
                DecisionTree::train(&sample, &tree_config)
            })
            .collect();
        RandomForest { trees, n_classes }
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean class-probability distribution across trees.
    pub fn predict_dist(&self, features: &[f64]) -> Vec<f64> {
        let mut dist = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let d = tree.predict_dist(features);
            for (acc, p) in dist.iter_mut().zip(d.iter().chain(std::iter::repeat(&0.0))) {
                *acc += p;
            }
        }
        for d in &mut dist {
            *d /= self.trees.len() as f64;
        }
        dist
    }

    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_dist(features)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Probability of class 1 (binary convenience).
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let dist = self.predict_dist(features);
        dist.get(1).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let center = if label == 1 { 1.0 } else { -1.0 };
                let features = (0..4).map(|_| center + rng.gen_range(-1.6..1.6)).collect();
                Example::new(features, label)
            })
            .collect()
    }

    #[test]
    fn forest_beats_chance_on_noisy_data() {
        let train = noisy_blobs(300, 1);
        let test = noisy_blobs(150, 2);
        let forest = RandomForest::train(&train, &ForestConfig::default());
        let correct = test.iter().filter(|ex| forest.predict(&ex.features) == ex.label).count();
        assert!(correct as f64 / 150.0 > 0.8, "accuracy {}", correct as f64 / 150.0);
    }

    #[test]
    fn dist_is_normalized() {
        let forest = RandomForest::train(&noisy_blobs(100, 3), &ForestConfig::default());
        let dist = forest.predict_dist(&[0.0, 0.0, 0.0, 0.0]);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = noisy_blobs(100, 4);
        let a = RandomForest::train(&data, &ForestConfig { seed: 7, ..Default::default() });
        let b = RandomForest::train(&data, &ForestConfig { seed: 7, ..Default::default() });
        assert_eq!(a.predict_dist(&[0.3; 4]), b.predict_dist(&[0.3; 4]));
    }

    #[test]
    fn predict_proba_binary() {
        let forest = RandomForest::train(&noisy_blobs(200, 5), &ForestConfig::default());
        assert!(forest.predict_proba(&[2.0; 4]) > 0.5);
        assert!(forest.predict_proba(&[-2.0; 4]) < 0.5);
    }

    #[test]
    fn single_class_training() {
        let data = vec![Example::new(vec![1.0], 0); 10];
        let forest = RandomForest::train(&data, &ForestConfig { n_trees: 3, ..Default::default() });
        assert_eq!(forest.predict(&[0.0]), 0);
        assert_eq!(forest.predict_proba(&[0.0]), 0.0);
    }
}
