//! Feature extraction: record-pair similarity features for entity matching
//! and a hashing vectorizer for free text.

use crate::textsim;

use crate::FeatureVec;

/// Names of the per-field similarity features produced by [`pair_features`].
///
/// Deliberately the *coarse* classic feature set (exact / edit distance /
/// token Jaccard / numeric). The decoration-robust measures (Jaro-Winkler,
/// overlap coefficient, trigram cosine, Monge-Elkan) belong to
/// [`rich_pair_features`] — that representational gap is precisely what
/// separates the simulated-Magellan baseline from simulated-Ditto.
pub const PAIR_FEATURES_PER_FIELD: [&str; 4] =
    ["exact_norm", "levenshtein", "jaccard_tokens", "numeric"];

/// Extract a similarity feature vector for a pair of records given as
/// parallel field slices (missing fields should be empty strings).
///
/// Produces `4 * n_fields + 2` features: four similarities per aligned field,
/// plus two aggregate features (mean field similarity, min field similarity)
/// that help on records with many empty fields.
pub fn pair_features(left: &[String], right: &[String]) -> FeatureVec {
    assert_eq!(left.len(), right.len(), "field slices must align");
    let mut out = Vec::with_capacity(left.len() * PAIR_FEATURES_PER_FIELD.len() + 2);
    let mut field_means = Vec::with_capacity(left.len());
    for (a, b) in left.iter().zip(right) {
        let a = a.to_lowercase();
        let b = b.to_lowercase();
        if a.trim().is_empty() || b.trim().is_empty() {
            // Missing data: neutral 0.5 similarity, so absence is not
            // evidence of mismatch.
            out.extend([0.5; 4]);
            field_means.push(0.5);
            continue;
        }
        let feats = [
            textsim::exact_norm(&a, &b),
            textsim::levenshtein_sim(&a, &b),
            textsim::jaccard_tokens(&a, &b),
            textsim::numeric_sim(&a, &b),
        ];
        field_means.push(feats.iter().sum::<f64>() / feats.len() as f64);
        out.extend(feats);
    }
    let mean = field_means.iter().sum::<f64>() / field_means.len().max(1) as f64;
    let min = field_means.iter().copied().fold(f64::INFINITY, f64::min);
    out.push(mean);
    out.push(if min.is_finite() { min } else { 0.5 });
    out
}

/// Richer variant used by the simulated-Ditto baseline: adds trigram cosine
/// and Monge-Elkan per field (8 features per field + 2 aggregates). A
/// pre-trained language model sees more signal per field; the richer feature
/// set plays that role.
pub fn rich_pair_features(left: &[String], right: &[String]) -> FeatureVec {
    assert_eq!(left.len(), right.len(), "field slices must align");
    let mut out = Vec::with_capacity(left.len() * 8 + 2);
    let mut field_means = Vec::with_capacity(left.len());
    for (a, b) in left.iter().zip(right) {
        let a = a.to_lowercase();
        let b = b.to_lowercase();
        if a.trim().is_empty() || b.trim().is_empty() {
            out.extend([0.5; 8]);
            field_means.push(0.5);
            continue;
        }
        let me = textsim::monge_elkan(&a, &b).max(textsim::monge_elkan(&b, &a));
        let feats = [
            textsim::exact_norm(&a, &b),
            textsim::levenshtein_sim(&a, &b),
            textsim::jaro_winkler(&a, &b),
            textsim::jaccard_tokens(&a, &b),
            textsim::overlap_tokens(&a, &b),
            textsim::numeric_sim(&a, &b),
            textsim::trigram_cosine(&a, &b),
            me,
        ];
        field_means.push(feats.iter().sum::<f64>() / feats.len() as f64);
        out.extend(feats);
    }
    let mean = field_means.iter().sum::<f64>() / field_means.len().max(1) as f64;
    let min = field_means.iter().copied().fold(f64::INFINITY, f64::min);
    out.push(mean);
    out.push(if min.is_finite() { min } else { 0.5 });
    out
}

/// Feature-hashing ("hashing trick") text vectorizer: token unigrams and
/// bigrams hashed into a fixed-dimension count vector, L2-normalized.
#[derive(Debug, Clone)]
pub struct HashingVectorizer {
    dims: usize,
}

impl HashingVectorizer {
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0);
        HashingVectorizer { dims }
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Vectorize text into `dims` dimensions.
    pub fn transform(&self, text: &str) -> FeatureVec {
        let mut v = vec![0.0; self.dims];
        let toks = textsim::tokens(text);
        for t in &toks {
            v[fxhash(t.as_bytes()) as usize % self.dims] += 1.0;
        }
        for w in toks.windows(2) {
            let bigram = format!("{} {}", w[0], w[1]);
            v[fxhash(bigram.as_bytes()) as usize % self.dims] += 1.0;
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

/// FNV-1a 64-bit hash — stable across runs and platforms (unlike
/// `DefaultHasher`, which is randomly keyed per process).
pub fn fxhash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Z-score standardizer fit on training data, applied at inference.
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit means and standard deviations per dimension.
    pub fn fit(rows: &[FeatureVec]) -> Standardizer {
        if rows.is_empty() {
            return Standardizer::default();
        }
        let dims = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dims];
        for row in rows {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dims];
        for row in rows {
            for ((s, x), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-9 {
                *s = 1.0; // constant feature: leave centered at 0
            }
        }
        Standardizer { means, stds }
    }

    pub fn transform(&self, row: &[f64]) -> FeatureVec {
        if self.means.is_empty() {
            return row.to_vec();
        }
        row.iter().zip(&self.means).zip(&self.stds).map(|((x, m), s)| (x - m) / s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pair_features_dimensionality() {
        let f = pair_features(&fields(&["a", "b", "c"]), &fields(&["a", "b", "c"]));
        assert_eq!(f.len(), 3 * 4 + 2);
        let f = rich_pair_features(&fields(&["a"]), &fields(&["a"]));
        assert_eq!(f.len(), 8 + 2);
    }

    #[test]
    fn identical_records_score_high() {
        let f = pair_features(
            &fields(&["Hoppy Badger", "Stonegate Brewing"]),
            &fields(&["Hoppy Badger", "Stonegate Brewing"]),
        );
        // Every similarity should be 1.
        assert!(f.iter().all(|&x| x > 0.99), "{f:?}");
    }

    #[test]
    fn disjoint_records_score_low() {
        let f = pair_features(&fields(&["alpha beta"]), &fields(&["gamma delta"]));
        let mean = f[f.len() - 2];
        assert!(mean < 0.5, "mean {mean}");
    }

    #[test]
    fn missing_fields_are_neutral() {
        let f = pair_features(&fields(&["", "match"]), &fields(&["anything", "match"]));
        assert_eq!(&f[..4], &[0.5; 4]);
        assert!(f[4] > 0.99); // second field matched
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_fields_panic() {
        pair_features(&fields(&["a"]), &fields(&["a", "b"]));
    }

    #[test]
    fn hashing_vectorizer_is_stable_and_normalized() {
        let v = HashingVectorizer::new(64);
        let a = v.transform("playstation memory card");
        let b = v.transform("playstation memory card");
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(v.transform("").iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn hashing_vectorizer_separates_texts() {
        let v = HashingVectorizer::new(256);
        let a = v.transform("sony playstation memory card");
        let b = v.transform("garmin gps navigator unit");
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!(dot < 0.4, "dot {dot}");
    }

    #[test]
    fn fxhash_is_deterministic() {
        assert_eq!(fxhash(b"abc"), fxhash(b"abc"));
        assert_ne!(fxhash(b"abc"), fxhash(b"abd"));
    }

    #[test]
    fn standardizer_zero_means_unit_std() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&rows);
        let t: Vec<FeatureVec> = rows.iter().map(|r| s.transform(r)).collect();
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-9);
        // Constant feature: centered but not blown up.
        assert!(t.iter().all(|r| r[1].abs() < 1e-9));
        // Empty standardizer is identity.
        let id = Standardizer::default();
        assert_eq!(id.transform(&[4.0, 2.0]), vec![4.0, 2.0]);
    }
}
