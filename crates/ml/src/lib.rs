//! # lingua-ml
//!
//! The classic machine-learning substrate for the Lingua Manga reproduction.
//!
//! The paper's *Simulator* optimizer replaces expensive LLM calls with a
//! supervised student model trained on the LLM's own outputs; its Table 1
//! baselines (Magellan, Ditto) and §4.3 baselines (HoloClean, IMP) are
//! likewise classic ML systems. This crate implements everything those
//! components need, from scratch:
//!
//! * [`textsim`] — string similarity measures (Levenshtein, Jaro-Winkler,
//!   token Jaccard, trigram cosine, Monge-Elkan, ...).
//! * [`features`] — record-pair feature extraction and a hashing vectorizer
//!   for free text.
//! * [`logreg`] — binary logistic regression trained with mini-batch SGD.
//! * [`naive_bayes`] — multinomial naive Bayes for multiclass text problems.
//! * [`knn`] — k-nearest-neighbour classification.
//! * [`tree`] / [`forest`] — CART decision trees and random forests.
//! * [`metrics`] — accuracy, precision/recall/F1, confusion matrices.
//!
//! All training is seeded and deterministic.

pub mod features;
pub mod forest;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod naive_bayes;
pub mod textsim;
pub mod tree;

/// A dense feature vector.
pub type FeatureVec = Vec<f64>;

/// A labeled training example: features plus a class id.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    pub features: FeatureVec,
    pub label: usize,
}

impl Example {
    pub fn new(features: FeatureVec, label: usize) -> Self {
        Example { features, label }
    }
}
