//! Property tests for the streaming engine's event-time semantics, checked
//! against an independent pure model.
//!
//! The model below re-derives, from first principles, what the engine must
//! do with each record: which windows take it (exactly the set
//! `windows_for` promises, minus windows the watermark already closed),
//! when the watermark moves (monotonically, every `watermark_interval`
//! ingests), and which windows close (each exactly once). Any divergence —
//! a record in a wrong window, a double close, a watermark regression — is
//! a hard failure for arbitrary tunings and stream shapes.

use lingua_core::ContextFactory;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{SimLlm, SimLlmConfig};
use lingua_serve::{ServeConfig, StreamTuning};
use lingua_stream::{
    closed_through, windows_for, StreamConfig, StreamEngine, StreamSource, StreamSpec,
    SyntheticSource,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Pure re-implementation of the engine's event-time bookkeeping: no locks,
/// no serving, no blocking index — just window assignment, watermark
/// advancement, and close tracking.
struct Model {
    tuning: StreamTuning,
    lateness: u64,
    watermark: u64,
    max_event_time: u64,
    since_advance: u64,
    /// Records landed per (still-relevant) window.
    counts: BTreeMap<u64, usize>,
    closed: BTreeSet<u64>,
    late: u64,
    assigned: u64,
    assignments: u64,
}

impl Model {
    fn new(tuning: StreamTuning, lateness: u64) -> Model {
        Model {
            tuning,
            lateness,
            watermark: 0,
            max_event_time: 0,
            since_advance: 0,
            counts: BTreeMap::new(),
            closed: BTreeSet::new(),
            late: 0,
            assigned: 0,
            assignments: 0,
        }
    }

    fn ingest(&mut self, t: u64) {
        self.max_event_time = self.max_event_time.max(t);
        let floor = closed_through(&self.tuning, self.watermark);
        let mut landed = 0u64;
        for k in windows_for(&self.tuning, t) {
            if floor.is_some_and(|f| k <= f) {
                continue;
            }
            *self.counts.entry(k).or_default() += 1;
            landed += 1;
        }
        if landed > 0 {
            self.assigned += 1;
            self.assignments += landed;
        } else {
            self.late += 1;
        }
        self.since_advance += 1;
        if self.since_advance >= self.tuning.watermark_interval {
            self.since_advance = 0;
            self.advance(self.max_event_time.saturating_sub(self.lateness));
        }
    }

    fn advance(&mut self, candidate: u64) {
        if candidate <= self.watermark {
            return;
        }
        self.watermark = candidate;
        if let Some(through) = closed_through(&self.tuning, self.watermark) {
            let ready: Vec<u64> = self.counts.range(..=through).map(|(k, _)| *k).collect();
            for k in ready {
                assert!(self.closed.insert(k), "model closed window {k} twice");
            }
        }
    }

    /// Close everything, mirroring `StreamEngine::finish`.
    fn finish(&mut self) -> BTreeMap<u64, usize> {
        self.advance(self.max_event_time + self.tuning.window + self.lateness + 1);
        self.counts.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For arbitrary tunings, lateness allowances, and seeded streams, the
    /// engine's per-window record counts, late drops, and close set match
    /// the pure model; the watermark never regresses; every window closes
    /// exactly once.
    #[test]
    fn engine_matches_the_pure_model(
        seed in 0u64..500,
        n in 64usize..200,
        window in 8u64..96,
        slide_num in 1u64..=4,
        lateness in 0u64..24,
        interval in 1u64..12,
    ) {
        // slide in (0, window], spread across tumbling and sliding shapes.
        let slide = (window * slide_num / 4).max(1);
        let tuning = StreamTuning { window, slide, watermark_interval: interval };
        prop_assume!(tuning.validate().is_ok());

        let world = WorldSpec::generate(seed);
        let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed, ..Default::default() }));
        let mut source = SyntheticSource::new(&world, StreamSpec { seed, ..Default::default() });
        let schema = source.schema().clone();
        let config = StreamConfig {
            tuning,
            allowed_lateness: lateness,
            serve: ServeConfig { workers: Some(2), ..ServeConfig::default() },
            ..StreamConfig::default()
        };
        let engine = StreamEngine::start(ContextFactory::new(llm), schema, config).unwrap();
        let mut model = Model::new(tuning, lateness);

        let mut last_watermark = 0u64;
        for item in source.take_records(n) {
            model.ingest(item.event_time);
            engine.ingest(item).unwrap();
            let wm = engine.watermark();
            prop_assert!(wm >= last_watermark, "watermark regressed: {last_watermark} -> {wm}");
            prop_assert_eq!(wm, model.watermark, "watermark diverged from model");
            last_watermark = wm;
        }

        let expected = model.finish();
        let reports = engine.finish().unwrap();

        // Exactly-once close: each opened window appears once, in order.
        let mut seen = BTreeSet::new();
        for report in &reports {
            prop_assert!(seen.insert(report.window.0), "window {} reported twice", report.window.0);
        }

        // Every record landed in exactly the expected window set: per-window
        // occupancy at close equals the model's count, for every window.
        let got: BTreeMap<u64, usize> =
            reports.iter().map(|r| (r.window.0, r.records)).collect();
        prop_assert_eq!(&got, &expected, "per-window record counts diverged");

        let snap = engine.metrics();
        prop_assert!(snap.record_conservation_holds(), "{}", snap.report());
        prop_assert!(snap.window_conservation_holds(), "{}", snap.report());
        prop_assert_eq!(snap.windows_open, 0, "finish() must close every window");
        prop_assert_eq!(snap.late_dropped, model.late);
        prop_assert_eq!(snap.assigned_records, model.assigned);
        prop_assert_eq!(snap.assignments, model.assignments);
        prop_assert_eq!(snap.windows_closed as usize, reports.len());
    }

    /// Candidate generation stays O(window): for arbitrary streams, each
    /// window's candidate pairs are bounded by what its own occupancy could
    /// ever produce, regardless of how many records the stream carried.
    #[test]
    fn candidates_are_window_bounded(
        seed in 0u64..200,
        n in 100usize..240,
    ) {
        let world = WorldSpec::generate(seed);
        let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed, ..Default::default() }));
        let mut source = SyntheticSource::new(&world, StreamSpec { seed, ..Default::default() });
        let schema = source.schema().clone();
        let config = StreamConfig {
            serve: ServeConfig { workers: Some(2), ..ServeConfig::default() },
            ..StreamConfig::default()
        };
        let engine = StreamEngine::start(ContextFactory::new(llm), schema, config).unwrap();
        for item in source.take_records(n) {
            engine.ingest(item).unwrap();
        }
        let reports = engine.finish().unwrap();
        for report in &reports {
            let cap = report.records * report.records.saturating_sub(1) / 2;
            prop_assert!(
                report.candidate_pairs <= cap,
                "window {} produced {} candidates from {} records",
                report.window.0, report.candidate_pairs, report.records
            );
        }
    }
}
