//! Crash-injection matrix for the streaming engine: kill the simulated
//! process at every journal kill point while a windowed dedup stream is
//! running, recover from the surviving bytes, feed the rest of the stream,
//! and prove the union of pre-crash and post-recovery window reports is
//! record-for-record identical to a run that never crashed — and that the
//! restored ledger plus replayed executions bill exactly what the
//! uninterrupted run billed.
//!
//! Exactness preconditions (documented as recovery invariants in
//! DESIGN.md §15):
//!
//! - `watermark_interval == 1`, so the recovered engine's advance cadence
//!   matches the crashed one's (the watermark is re-derived from the
//!   journaled frontier at restore).
//! - [`ReportStrategy::OnWindowClose`]: continuous inline verdicts are not
//!   re-run at restore, so crash-exact reports are a close-strategy
//!   guarantee.

use lingua_core::ContextFactory;
use lingua_dataset::world::WorldSpec;
use lingua_durable::{CrashInjector, JournalTuning, KillPoint, SimStorage};
use lingua_llm_sim::{LlmService, SimLlm, SimLlmConfig, TokenPricing, Usage};
use lingua_serve::{ServeConfig, StreamTuning};
use lingua_stream::{
    ReportStrategy, StreamConfig, StreamEngine, StreamItem, StreamSource, StreamSpec,
    SyntheticSource, WindowReport,
};
use std::sync::Arc;

const SEED: u64 = 83;
const RECORDS: usize = 160;
const CHECKPOINT_INTERVAL: usize = 48;

fn stream_config(journal: JournalTuning) -> StreamConfig {
    StreamConfig {
        tuning: StreamTuning { window: 32, slide: 16, watermark_interval: 1 },
        allowed_lateness: 8,
        strategy: ReportStrategy::OnWindowClose,
        serve: ServeConfig { workers: Some(2), journal: Some(journal), ..ServeConfig::default() },
        ..StreamConfig::default()
    }
}

fn engine_with(journal: JournalTuning) -> (StreamEngine, Arc<SimLlm>) {
    let world = WorldSpec::generate(SEED);
    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed: SEED, ..Default::default() }));
    let source = SyntheticSource::new(&world, StreamSpec { seed: SEED, ..Default::default() });
    let schema = source.schema().clone();
    let engine = StreamEngine::start(
        ContextFactory::new(Arc::clone(&llm) as Arc<dyn LlmService>),
        schema,
        stream_config(journal),
    )
    .expect("engine starts");
    (engine, llm)
}

fn items() -> Vec<StreamItem> {
    let world = WorldSpec::generate(SEED);
    let mut source = SyntheticSource::new(&world, StreamSpec { seed: SEED, ..Default::default() });
    source.take_records(RECORDS)
}

/// Everything a window report asserts on, including its exact LLM bill.
type ReportKey = (u64, u64, u64, usize, usize, u64, u64, u64, usize, Usage);

fn key(r: &WindowReport) -> ReportKey {
    (
        r.window.0,
        r.start,
        r.end,
        r.records,
        r.candidate_pairs,
        r.comparisons,
        r.judged,
        r.matched,
        r.true_duplicates,
        r.llm,
    )
}

#[test]
fn stream_recovery_matches_uninterrupted_at_every_kill_point() {
    let items = items();

    // Reference: the run that never crashes (journal on, injector inert, so
    // the code path is identical to the crashing runs).
    let (engine, llm) = engine_with(
        JournalTuning::sim(SimStorage::new()).with_checkpoint_interval(CHECKPOINT_INTERVAL),
    );
    for item in &items {
        engine.ingest(item.clone()).expect("reference ingest");
    }
    let mut reference: Vec<ReportKey> =
        engine.finish().expect("reference drain").iter().map(key).collect();
    reference.sort_unstable_by_key(|k| k.0);
    let reference_usage = llm.usage();
    assert!(!reference.is_empty(), "the stream must actually close windows");
    assert!(reference_usage.calls > 0, "the workload must actually bill the LLM");
    drop(engine);

    for point in KillPoint::ALL {
        for occurrence in [1u64, 13, 47] {
            let label = format!("{}@{occurrence}", point.as_str());
            let storage = SimStorage::new();

            // Run 1: dies at the armed kill point (or survives if that
            // point never fires this often — recovery is then a no-op).
            let (engine, _llm1) = engine_with(
                JournalTuning::sim(storage.clone())
                    .with_checkpoint_interval(CHECKPOINT_INTERVAL)
                    .with_injector(CrashInjector::armed_at(point, occurrence)),
            );
            let mut resume_from = items.len();
            for (i, item) in items.iter().enumerate() {
                engine.ingest(item.clone()).unwrap_or_else(|err| panic!("{label}: {err}"));
                if engine.dead() {
                    // The item's own journal record may or may not have made
                    // it out before the crash; `last_ingest_durable` says
                    // which, and decides where the replayed feed resumes.
                    resume_from = if engine.last_ingest_durable() { i + 1 } else { i };
                    break;
                }
            }
            // A dead engine hands out nothing (`finish` returns the reports
            // journaled-and-delivered before the crash, possibly none).
            let reports1 = engine.finish().unwrap_or_else(|err| panic!("{label}: {err}"));
            drop(engine);

            // Run 2: recover from the surviving bytes, replay the tail of
            // the stream, and drain.
            let (engine, llm) = engine_with(
                JournalTuning::sim(storage).with_checkpoint_interval(CHECKPOINT_INTERVAL),
            );
            let snapshot =
                engine.server_metrics().recovery.expect("journal surfaces recovery snapshot");
            assert!(
                snapshot.corrupt_records_skipped <= 1,
                "{label}: at most the torn tail frame is lost, got {}",
                snapshot.corrupt_records_skipped
            );
            for item in &items[resume_from..] {
                engine.ingest(item.clone()).unwrap_or_else(|err| panic!("{label}: {err}"));
            }
            assert!(!engine.dead(), "{label}: run 2 has an inert injector");
            let reports2 = engine.finish().unwrap_or_else(|err| panic!("{label}: {err}"));

            // Union of what the crashed process delivered and what the
            // recovered one delivered == the uninterrupted run, exactly.
            let mut combined: Vec<ReportKey> =
                reports1.iter().chain(reports2.iter()).map(key).collect();
            combined.sort_unstable_by_key(|k| k.0);
            for pair in combined.windows(2) {
                assert_ne!(
                    pair[0].0, pair[1].0,
                    "{label}: window {} reported twice across the crash",
                    pair[0].0
                );
            }
            assert_eq!(
                combined, reference,
                "{label}: recovered reports diverge from the uninterrupted run"
            );

            // Ledger reconciliation: the journal-restored bill plus the
            // replayed executions equals the uninterrupted bill — to the
            // cent, because SimLlm is deterministic and restored results
            // are served from the recovered cache instead of re-billing.
            let recovered_usage = llm.usage();
            assert_eq!(
                recovered_usage, reference_usage,
                "{label}: recovered + replayed bill must equal the uninterrupted bill"
            );
            let pricing = TokenPricing::default();
            assert!(
                (recovered_usage.cost_usd(&pricing) - reference_usage.cost_usd(&pricing)).abs()
                    < 1e-12,
                "{label}: ledger reconciles to the cent"
            );
        }
    }
}

/// Recovery restores stream conservation laws, not just outputs: after a
/// crash mid-stream, the recovered engine's books (windows opened == closed,
/// records assigned or dropped) balance over the replayed tail.
#[test]
fn recovered_engine_keeps_conservation_laws() {
    let items = items();
    let storage = SimStorage::new();
    let (engine, _llm) = engine_with(
        JournalTuning::sim(storage.clone())
            .with_checkpoint_interval(CHECKPOINT_INTERVAL)
            .with_injector(CrashInjector::armed_at(KillPoint::AfterJournal, 40)),
    );
    let mut resume_from = items.len();
    for (i, item) in items.iter().enumerate() {
        engine.ingest(item.clone()).expect("ingest");
        if engine.dead() {
            resume_from = if engine.last_ingest_durable() { i + 1 } else { i };
            break;
        }
    }
    assert!(engine.dead(), "the injector must have fired for this test to mean anything");
    drop(engine);

    let (engine, _llm) = engine_with(JournalTuning::sim(storage));
    for item in &items[resume_from..] {
        engine.ingest(item.clone()).expect("replayed ingest");
    }
    let reports = engine.finish().expect("drain");
    let snap = engine.metrics();
    assert!(snap.window_conservation_holds(), "{}", snap.report());
    assert_eq!(snap.windows_open, 0, "finish() closes every window");
    assert!(!reports.is_empty());
}
