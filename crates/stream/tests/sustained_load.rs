//! Sustained concurrent load: 10k records through 8 ingesting threads, then
//! the books must balance exactly.
//!
//! Three families of invariant, all checked after quiescence:
//!
//! 1. **Conservation laws** — every record either landed in ≥1 window or
//!    was dropped late (`ingested == assigned + late`); every opened window
//!    closed (`opened == closed + open`, with `open == 0` after `finish`).
//! 2. **O(window) work** — total blocking probes are bounded by
//!    `assignments × max window occupancy`, and are orders of magnitude
//!    below the corpus-quadratic count a full rescan would have paid.
//! 3. **Cent-exact billing** — the shared simulator's ledger equals, to the
//!    call and the token, the sum of what the engine's inline meter and the
//!    serve layer's job meters booked. No call is lost or double-billed.

use lingua_core::ContextFactory;
use lingua_dataset::world::WorldSpec;
use lingua_gateway::{Gateway, ServiceTransport};
use lingua_llm_sim::{LlmService, SimLlm, SimLlmConfig, TokenPricing, Usage};
use lingua_serve::{ServeConfig, StreamTuning};
use lingua_stream::{
    ReportStrategy, StreamConfig, StreamEngine, StreamSource, StreamSpec, SyntheticSource,
};
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: usize = 1250;
const TOTAL: usize = THREADS * PER_THREAD;

fn run_sustained(strategy: ReportStrategy) {
    let seed = 99;
    let world = WorldSpec::generate(seed);
    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed, ..Default::default() }));
    let mut source = SyntheticSource::new(&world, StreamSpec { seed, ..Default::default() });
    let schema = source.schema().clone();
    let records = source.take_records(TOTAL);

    let config = StreamConfig {
        tuning: StreamTuning { window: 64, slide: 32, watermark_interval: 8 },
        // Concurrent ingestion interleaves event times across threads, and
        // a descheduled thread can fall arbitrarily far behind the frontier
        // the others advance — give the watermark generous slack.
        allowed_lateness: 256,
        strategy,
        // This test measures conservation under load, not backpressure (that
        // is `tiny_queue_backpressure_survives`). An undersized queue couples
        // ingest progress to drain speed: on a small machine the 8 producers
        // out-run 4 debug-build workers, stall in the submit retry loop, fall
        // behind the event-time frontier, and manufacture mass lateness. A
        // queue larger than the total window count removes that coupling.
        serve: ServeConfig { workers: Some(4), queue_capacity: 4096, ..ServeConfig::default() },
        ..StreamConfig::default()
    };
    let engine = Arc::new(
        StreamEngine::start(
            ContextFactory::new(Arc::clone(&llm) as Arc<dyn LlmService>),
            schema,
            config,
        )
        .expect("engine starts"),
    );

    // Strided split: thread i takes records i, i+8, i+16, … so all threads
    // move through event time together (a contiguous split would have the
    // last thread's timestamps declare everything else late).
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let slice: Vec<_> = records.iter().skip(t).step_by(THREADS).cloned().collect();
            std::thread::spawn(move || {
                for item in slice {
                    engine.ingest(item).expect("sustained ingest");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("ingest thread survives");
    }

    let reports = engine.finish().expect("drain");
    let snap = engine.metrics();
    let serve = engine.server_metrics();

    // 1. Conservation.
    assert!(snap.record_conservation_holds(), "{}", snap.report());
    assert!(snap.window_conservation_holds(), "{}", snap.report());
    assert_eq!(snap.ingested, TOTAL as u64);
    assert_eq!(snap.windows_open, 0, "finish() closes every window");
    assert_eq!(snap.windows_closed as usize, reports.len());
    assert_eq!(snap.reports as usize, reports.len());
    let closed_records: usize = reports.iter().map(|r| r.records).sum();
    assert_eq!(closed_records as u64, snap.assignments, "every landed membership closed");
    // Scheduling skew decides exactly how many records arrive late, so only
    // the weak form is deterministic: most records land.
    assert!(
        snap.late_dropped * 2 < snap.ingested,
        "late drops should be the exception: {}",
        snap.report()
    );

    // 2. O(window) work, not O(corpus).
    let max_occupancy = reports.iter().map(|r| r.records).max().unwrap_or(0) as u64;
    assert!(
        snap.comparisons <= snap.assignments * max_occupancy,
        "probes ({}) exceed assignments ({}) x max occupancy ({})",
        snap.comparisons,
        snap.assignments,
        max_occupancy
    );
    let corpus_quadratic = (TOTAL as u64) * (TOTAL as u64 - 1) / 2;
    assert!(
        snap.comparisons * 100 < corpus_quadratic,
        "windowing must beat a full rescan by >100x: {} vs {corpus_quadratic}",
        snap.comparisons
    );

    // 3. Cent-exact billing: shared ledger == inline meter + job meters.
    let ledger = llm.usage();
    let mut booked = Usage::default();
    booked.merge(&snap.inline_llm);
    booked.merge(&serve.llm);
    booked.merge(&serve.llm_partial);
    assert_eq!(booked.calls, ledger.calls, "call counts reconcile");
    assert_eq!(booked.tokens_in, ledger.tokens_in, "input tokens reconcile");
    assert_eq!(booked.tokens_out, ledger.tokens_out, "output tokens reconcile");
    let pricing = TokenPricing::default();
    let booked_cents = (booked.cost_usd(&pricing) * 100.0).round() as i64;
    let ledger_cents = (ledger.cost_usd(&pricing) * 100.0).round() as i64;
    assert_eq!(booked_cents, ledger_cents, "billing reconciles to the cent");

    // The matcher actually did work under load.
    assert!(snap.pairs_judged > 0);
    assert!(snap.pairs_matched > 0);
    match strategy {
        ReportStrategy::OnWindowClose => {
            assert_eq!(snap.inline_llm.calls, 0, "close strategy bills via serve jobs");
            assert_eq!(snap.pairs_judged, snap.inline_llm.calls + serve.llm.calls);
        }
        ReportStrategy::Continuous => {
            assert_eq!(snap.pairs_judged, snap.inline_llm.calls, "continuous bills inline");
            assert_eq!(serve.llm.calls, 0, "window jobs only aggregate");
        }
    }

    // Serve-side books for the window jobs themselves.
    assert_eq!(serve.accepted, snap.windows_closed, "one job per closed window");
    assert_eq!(serve.completed, snap.windows_closed);
    assert_eq!(serve.failed + serve.timed_out + serve.panicked + serve.cancelled, 0);
}

#[test]
fn sustained_load_on_window_close() {
    run_sustained(ReportStrategy::OnWindowClose);
}

#[test]
fn sustained_load_continuous() {
    run_sustained(ReportStrategy::Continuous);
}

/// A tiny serve queue forces the submission path through its backpressure
/// retry loop; the engine must survive and the books must still balance.
#[test]
fn tiny_queue_backpressure_survives() {
    let seed = 31;
    let world = WorldSpec::generate(seed);
    let llm = Arc::new(SimLlm::new(&world, SimLlmConfig { seed, ..Default::default() }));
    let mut source = SyntheticSource::new(&world, StreamSpec { seed, ..Default::default() });
    let schema = source.schema().clone();
    let config = StreamConfig {
        tuning: StreamTuning { window: 32, slide: 32, watermark_interval: 4 },
        serve: ServeConfig { workers: Some(1), queue_capacity: 1, ..ServeConfig::default() },
        submit_retries: 10_000,
        ..StreamConfig::default()
    };
    let engine =
        StreamEngine::start(ContextFactory::new(llm), schema, config).expect("engine starts");
    for item in source.take_records(2_000) {
        engine.ingest(item).expect("ingest through backpressure");
    }
    let reports = engine.finish().expect("drain through backpressure");
    let snap = engine.metrics();
    assert!(snap.record_conservation_holds(), "{}", snap.report());
    assert!(snap.window_conservation_holds(), "{}", snap.report());
    assert_eq!(snap.windows_closed as usize, reports.len());
}

/// The engine is service-agnostic: routed through a resilience gateway, the
/// stream still drains and reports (retry/fallback policy is the gateway's
/// business, not the engine's).
#[test]
fn streams_ride_the_gateway() {
    let seed = 47;
    let world = WorldSpec::generate(seed);
    let backend = Arc::new(SimLlm::new(&world, SimLlmConfig { seed, ..Default::default() }));
    let gateway = Arc::new(
        Gateway::builder().backend(Arc::new(ServiceTransport::new("primary", backend))).build(),
    );
    let mut source = SyntheticSource::new(&world, StreamSpec { seed, ..Default::default() });
    let schema = source.schema().clone();
    let config = StreamConfig {
        serve: ServeConfig { workers: Some(2), ..ServeConfig::default() },
        ..StreamConfig::default()
    };
    let engine =
        StreamEngine::start(ContextFactory::new(gateway as Arc<dyn LlmService>), schema, config)
            .expect("engine starts behind a gateway");
    for item in source.take_records(600) {
        engine.ingest(item).expect("ingest via gateway");
    }
    let reports = engine.finish().expect("drain via gateway");
    assert!(reports.iter().map(|r| r.matched).sum::<u64>() > 0, "matches flow through");
}
