//! Cross-stream window joins: pair up records from two streams that share a
//! key and fall in the same event-time window.
//!
//! The join is windowed for the same reason ER is: an unbounded equi-join
//! must bound its build side, and the window is that bound. Each side keeps
//! a per-window hash index from join key to record indices; when the shared
//! watermark closes a window, the smaller side's index is probed by the
//! other side's records and the matching pairs are emitted exactly once.

use crate::error::StreamError;
use crate::window::{closed_through, windows_for, WindowId};
use lingua_dataset::generators::stream::StreamItem;
use lingua_serve::StreamTuning;
use std::collections::BTreeMap;

/// Which input stream a record arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Key extractor: maps a record to its (normalized) join key.
pub type KeyFn = Box<dyn Fn(&StreamItem) -> String + Send>;

/// One window's joined output.
#[derive(Debug, Clone)]
pub struct JoinedWindow {
    pub window: WindowId,
    /// `(left, right)` record pairs sharing a join key in this window.
    pub pairs: Vec<(StreamItem, StreamItem)>,
    pub left_records: usize,
    pub right_records: usize,
}

struct SideState {
    /// Per open window: join key → records carrying it.
    windows: BTreeMap<u64, BTreeMap<String, Vec<StreamItem>>>,
    ingested: u64,
    late: u64,
}

impl SideState {
    fn new() -> SideState {
        SideState { windows: BTreeMap::new(), ingested: 0, late: 0 }
    }
}

/// A two-stream windowed equi-join sharing one watermark.
///
/// Single-threaded by design: the streaming engine parallelizes across
/// windows (via serve jobs), not inside the join bookkeeping.
pub struct WindowJoin {
    tuning: StreamTuning,
    key_left: KeyFn,
    key_right: KeyFn,
    left: SideState,
    right: SideState,
    watermark: u64,
    /// Windows at or below this index have been emitted (exactly-once).
    emitted_through: Option<u64>,
}

impl WindowJoin {
    /// Build a join over a validated tuning. A zero window/slide or a slide
    /// larger than the window is a caller configuration error and surfaces
    /// typed, exactly as [`crate::StreamEngine::start`] would surface it.
    pub fn new(
        tuning: StreamTuning,
        key_left: KeyFn,
        key_right: KeyFn,
    ) -> Result<WindowJoin, StreamError> {
        tuning.validate().map_err(StreamError::Serve)?;
        Ok(WindowJoin {
            tuning,
            key_left,
            key_right,
            left: SideState::new(),
            right: SideState::new(),
            watermark: 0,
            emitted_through: None,
        })
    }

    /// Ingest one record on `side`. Records whose every window has already
    /// been emitted are counted late and dropped.
    pub fn ingest(&mut self, side: Side, item: StreamItem) {
        let key = match side {
            Side::Left => (self.key_left)(&item),
            Side::Right => (self.key_right)(&item),
        };
        let floor = self.emitted_through;
        let state = match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        };
        state.ingested += 1;
        let mut landed = false;
        for k in windows_for(&self.tuning, item.event_time) {
            if floor.is_some_and(|f| k <= f) {
                continue; // window already emitted
            }
            state.windows.entry(k).or_default().entry(key.clone()).or_default().push(item.clone());
            landed = true;
        }
        if !landed {
            state.late += 1;
        }
    }

    /// Advance the shared watermark (monotone) and emit every window whose
    /// end it has passed. Each window is emitted exactly once, in index
    /// order.
    pub fn advance_watermark(&mut self, watermark: u64) -> Vec<JoinedWindow> {
        if watermark <= self.watermark {
            return Vec::new();
        }
        self.watermark = watermark;
        let Some(through) = closed_through(&self.tuning, watermark) else {
            return Vec::new();
        };
        let from = match self.emitted_through {
            Some(f) if f >= through => return Vec::new(),
            Some(f) => f + 1,
            None => 0,
        };
        self.emitted_through = Some(through);
        let mut out = Vec::new();
        for k in from..=through {
            let left = self.left.windows.remove(&k).unwrap_or_default();
            let right = self.right.windows.remove(&k).unwrap_or_default();
            let left_records: usize = left.values().map(Vec::len).sum();
            let right_records: usize = right.values().map(Vec::len).sum();
            if left_records == 0 && right_records == 0 {
                continue; // nothing landed; not an opened window
            }
            let mut pairs = Vec::new();
            for (key, ls) in &left {
                if let Some(rs) = right.get(key) {
                    for l in ls {
                        for r in rs {
                            pairs.push((l.clone(), r.clone()));
                        }
                    }
                }
            }
            out.push(JoinedWindow { window: WindowId(k), pairs, left_records, right_records });
        }
        out
    }

    /// `(ingested, late)` counters for one side.
    pub fn side_counts(&self, side: Side) -> (u64, u64) {
        let state = match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        };
        (state.ingested, state.late)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_dataset::{Record, Value};

    fn item(t: u64, entity: u64, key: &str) -> StreamItem {
        StreamItem { event_time: t, entity, record: Record::new(vec![Value::Str(key.to_string())]) }
    }

    fn join(window: u64, slide: u64) -> WindowJoin {
        let key = || Box::new(|i: &StreamItem| i.record.get(0).unwrap().render()) as KeyFn;
        WindowJoin::new(StreamTuning { window, slide, watermark_interval: 1 }, key(), key())
            .expect("test tuning is valid")
    }

    #[test]
    fn shared_keys_in_shared_windows_pair_up() {
        let mut j = join(10, 10);
        j.ingest(Side::Left, item(1, 1, "ale"));
        j.ingest(Side::Right, item(3, 2, "ale"));
        j.ingest(Side::Right, item(4, 3, "stout")); // no left partner
        j.ingest(Side::Left, item(12, 4, "ale")); // next window
        let closed = j.advance_watermark(10);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].window, WindowId(0));
        assert_eq!(closed[0].pairs.len(), 1);
        assert_eq!(closed[0].pairs[0].0.entity, 1);
        assert_eq!(closed[0].pairs[0].1.entity, 2);
        assert_eq!((closed[0].left_records, closed[0].right_records), (1, 2));
    }

    #[test]
    fn windows_emit_exactly_once() {
        let mut j = join(10, 10);
        j.ingest(Side::Left, item(2, 1, "k"));
        j.ingest(Side::Right, item(2, 2, "k"));
        assert_eq!(j.advance_watermark(10).len(), 1);
        assert!(j.advance_watermark(10).is_empty(), "same watermark re-emits nothing");
        assert!(j.advance_watermark(15).is_empty(), "window 0 never re-emits");
        // A record for the emitted window is late on both paths.
        j.ingest(Side::Left, item(3, 3, "k"));
        assert_eq!(j.side_counts(Side::Left), (2, 1));
    }

    #[test]
    fn sliding_join_pairs_in_every_shared_window() {
        let mut j = join(10, 5);
        // t=7 lands in windows 0 and 1; t=9 likewise.
        j.ingest(Side::Left, item(7, 1, "k"));
        j.ingest(Side::Right, item(9, 2, "k"));
        let closed = j.advance_watermark(30);
        let with_pairs: Vec<u64> =
            closed.iter().filter(|w| !w.pairs.is_empty()).map(|w| w.window.0).collect();
        assert_eq!(with_pairs, vec![0, 1], "the pair appears once per shared window");
    }

    #[test]
    fn watermark_is_monotone_for_joins() {
        let mut j = join(10, 10);
        j.ingest(Side::Left, item(2, 1, "k"));
        j.ingest(Side::Right, item(2, 2, "k"));
        assert_eq!(j.advance_watermark(20).len(), 1);
        assert!(j.advance_watermark(12).is_empty(), "regressing watermark is ignored");
    }
}
