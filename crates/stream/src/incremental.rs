//! Incremental, window-scoped entity resolution state.
//!
//! The batch dedup path ([`lingua_tasks`-style token blocking]) sees the
//! whole table at once and generates candidate pairs in one pass. A stream
//! never gives you the whole table — and rescanning a growing corpus on
//! every arrival is the quadratic trap. [`WindowState`] keeps a *per-window*
//! token blocking index instead: when a record lands, its key tokens are
//! probed against only the records already in that window, so the work per
//! insert is bounded by window occupancy, never by how much history the
//! stream has accumulated. That bound is asserted (not just claimed) — see
//! [`WindowState::insert`]'s return value and the counter tests.
//!
//! [`lingua_tasks`-style token blocking]: https://en.wikipedia.org/wiki/Record_linkage

use crate::window::WindowId;
use lingua_dataset::generators::stream::StreamItem;
use lingua_dataset::Schema;
use lingua_ml::textsim::tokens;
use lingua_trace::ManualSpan;
use std::collections::{BTreeMap, BTreeSet};

/// Blocking keys for a record's key field: the first three characters of
/// each token, deduplicated. Prefixes are what survive the listing damage
/// this corpus actually has — "Imperial" abbreviated to "Imp." still blocks
/// with its original, where exact-token blocking silently loses the pair.
/// Both the streaming index and the bench's full-rescan baseline use this
/// same function, so incremental-vs-rescan comparisons stay apples to
/// apples.
pub fn blocking_keys(key: &str) -> Vec<String> {
    let mut keys: Vec<String> =
        tokens(key).into_iter().map(|t| t.chars().take(3).collect()).collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Outcome of inserting one record into one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Index the record was stored at within the window.
    pub index: usize,
    /// New candidate pairs `(earlier index, this index)` produced by the
    /// blocking probe. Guaranteed `≤ occupancy before insert` — the
    /// O(window) property the streaming engine is built on.
    pub candidates: Vec<(usize, usize)>,
    /// Window occupancy *before* this insert (the bound on `candidates`).
    pub occupancy_before: usize,
}

/// One open window's entity-resolution state: its records, the window-scoped
/// blocking index, and the candidate pairs generated so far.
pub struct WindowState {
    pub id: WindowId,
    records: Vec<StreamItem>,
    /// Blocking key ([`blocking_keys`] token prefix) → indices of records
    /// whose key field contains it. This is the blocking index; it dies with
    /// the window, so it can never grow beyond window occupancy ×
    /// keys-per-record.
    blocks: BTreeMap<String, Vec<usize>>,
    /// All candidate pairs generated for this window, `(i, j)` with `i < j`.
    candidates: Vec<(usize, usize)>,
    /// Blocking probes performed (sum of candidate-set sizes per insert).
    comparisons: u64,
    /// Matches confirmed so far (continuous strategy fills this as pairs are
    /// judged; on-window-close leaves it to the serve job).
    pub matched_inline: u64,
    pub judged_inline: u64,
    /// Cross-thread trace span covering the window's open→close lifetime.
    pub span: Option<ManualSpan>,
}

impl WindowState {
    pub fn new(id: WindowId) -> WindowState {
        WindowState {
            id,
            records: Vec::new(),
            blocks: BTreeMap::new(),
            candidates: Vec::new(),
            comparisons: 0,
            matched_inline: 0,
            judged_inline: 0,
            span: None,
        }
    }

    /// Insert a record, probing the window-scoped blocking index for new
    /// candidate partners. `max_block_size` caps stop-token blocks exactly
    /// like batch token blocking: a token shared by more than that many
    /// window records is too common to discriminate and is skipped.
    ///
    /// The candidate partners come only from `self.records`, so
    /// `candidates.len() <= occupancy_before` always holds — per-record work
    /// is O(window occupancy), independent of stream length.
    pub fn insert(
        &mut self,
        item: StreamItem,
        key_index: usize,
        max_block_size: usize,
    ) -> InsertOutcome {
        let occupancy_before = self.records.len();
        let index = occupancy_before;
        let key = item.record.get(key_index).map(|v| v.render()).unwrap_or_default();
        let mut partners: BTreeSet<usize> = BTreeSet::new();
        for token in blocking_keys(&key) {
            let block = self.blocks.entry(token).or_default();
            // A block already at the stop-token threshold contributes no
            // partners (matching batch blocking's "skip oversized blocks"),
            // but the record still joins it so the threshold keeps binding.
            if block.len() <= max_block_size {
                partners.extend(block.iter().copied());
            }
            block.push(index);
        }
        self.records.push(item);
        self.comparisons += partners.len() as u64;
        let candidates: Vec<(usize, usize)> = partners.into_iter().map(|p| (p, index)).collect();
        debug_assert!(candidates.len() <= occupancy_before);
        self.candidates.extend(candidates.iter().copied());
        InsertOutcome { index, candidates, occupancy_before }
    }

    pub fn occupancy(&self) -> usize {
        self.records.len()
    }

    pub fn records(&self) -> &[StreamItem] {
        &self.records
    }

    pub fn candidates(&self) -> &[(usize, usize)] {
        &self.candidates
    }

    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Render a candidate pair as the `(record A, record B)` descriptions an
    /// entity-match prompt needs.
    pub fn describe_pair(&self, pair: (usize, usize), schema: &Schema) -> (String, String) {
        (self.records[pair.0].record.describe(schema), self.records[pair.1].record.describe(schema))
    }

    /// Ground-truth duplicate pairs inside this window (same hidden entity
    /// id) — the oracle a report can score matcher output against.
    pub fn true_duplicate_pairs(&self) -> usize {
        let mut by_entity: BTreeMap<u64, u64> = BTreeMap::new();
        for item in &self.records {
            *by_entity.entry(item.entity).or_default() += 1;
        }
        by_entity.values().map(|&n| (n * (n - 1) / 2) as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{StreamSource, SyntheticSource};

    fn items(n: usize) -> (Schema, Vec<StreamItem>) {
        let mut source = SyntheticSource::with_seed(3);
        let schema = source.schema().clone();
        (schema, source.take_records(n))
    }

    #[test]
    fn per_insert_work_is_bounded_by_occupancy() {
        let (_, items) = items(600);
        let mut window = WindowState::new(WindowId(0));
        for item in items {
            let outcome = window.insert(item, 0, 16);
            assert!(
                outcome.candidates.len() <= outcome.occupancy_before,
                "insert produced {} candidates against occupancy {}",
                outcome.candidates.len(),
                outcome.occupancy_before
            );
        }
    }

    #[test]
    fn duplicates_become_candidates() {
        // Within one window, true duplicates share name tokens, so blocking
        // must surface most of them as candidates.
        let (_, items) = items(64);
        let mut window = WindowState::new(WindowId(0));
        let mut dup_pairs = 0usize;
        let mut dup_found = 0usize;
        for item in items {
            let entity = item.entity;
            let before: Vec<u64> = window.records().iter().map(|r| r.entity).collect();
            let outcome = window.insert(item, 0, 32);
            for (i, &e) in before.iter().enumerate() {
                if e == entity {
                    dup_pairs += 1;
                    if outcome.candidates.iter().any(|&(a, _)| a == i) {
                        dup_found += 1;
                    }
                }
            }
        }
        assert!(dup_pairs > 0, "seeded stream contains duplicates");
        assert!(
            dup_found * 10 >= dup_pairs * 7,
            "blocking recall too low: {dup_found}/{dup_pairs}"
        );
    }

    #[test]
    fn stop_token_blocks_stop_contributing() {
        let (_, items) = items(200);
        let mut generous = WindowState::new(WindowId(0));
        let mut strict = WindowState::new(WindowId(0));
        for item in items {
            generous.insert(item.clone(), 0, 64);
            strict.insert(item, 0, 2);
        }
        assert!(
            strict.comparisons() < generous.comparisons(),
            "a tighter stop-token cap must prune probes ({} vs {})",
            strict.comparisons(),
            generous.comparisons()
        );
    }

    #[test]
    fn candidate_pairs_are_ordered_and_unique() {
        let (_, items) = items(120);
        let mut window = WindowState::new(WindowId(0));
        for item in items {
            window.insert(item, 0, 16);
        }
        let mut seen = BTreeSet::new();
        for &(a, b) in window.candidates() {
            assert!(a < b);
            assert!(seen.insert((a, b)), "pair ({a},{b}) generated twice");
        }
    }

    #[test]
    fn true_duplicate_pairs_counts_the_oracle() {
        let (schema, items) = items(48);
        let mut window = WindowState::new(WindowId(0));
        for item in items {
            window.insert(item, 0, 16);
        }
        let truth = window.true_duplicate_pairs();
        // Cross-check against the naive O(n²) count.
        let records = window.records();
        let mut naive = 0usize;
        for i in 0..records.len() {
            for j in i + 1..records.len() {
                if records[i].entity == records[j].entity {
                    naive += 1;
                }
            }
        }
        assert_eq!(truth, naive);
        let (a, b) = window.describe_pair((0, 1), &schema);
        assert!(a.contains("beer_name") && b.contains("brewery"));
    }
}
