//! The streaming curation engine: windows, watermarks, incremental ER, and
//! window-close jobs on the serving substrate.
//!
//! [`StreamEngine`] is deliberately thin. Event-time bookkeeping (which
//! windows a record joins, when the watermark closes them) lives under one
//! mutex and is pure arithmetic; everything expensive rides infrastructure
//! the repo already hardened:
//!
//! - window-close work is submitted as **jobs to `lingua-serve`**, so it
//!   gets panic isolation, deadlines, dedup, and the sharded result cache
//!   for free;
//! - candidate judgments go through the **LLM service the context factory
//!   provides** (wrap it in a gateway for retries/hedging — the engine
//!   doesn't care);
//! - every window is a **cross-thread trace span** (`stream_window`), with
//!   watermark advances and late drops as instants, so `lingua-trace` tools
//!   reconstruct stream behavior the same way they do batch jobs.
//!
//! Work per record is O(window occupancy): the blocking probe only touches
//! the record's own windows ([`WindowState::insert`]), never accumulated
//! history. The conservation laws the metrics promise
//! ([`StreamSnapshot::record_conservation_holds`]) are enforced by tests
//! under sustained concurrent load.

use crate::error::StreamError;
use crate::incremental::WindowState;
use crate::metrics::{StreamMetrics, StreamSnapshot};
use crate::report::{ReportStrategy, WindowReport};
use crate::window::{closed_through, windows_for, Watermark, WindowId};
use lingua_core::modules::{CustomModule, Module};
use lingua_core::validation::OutputValidator;
use lingua_core::{Compiler, ContextFactory, CoreError, Data, LogicalOp, Pipeline};
use lingua_dataset::generators::stream::StreamItem;
use lingua_dataset::Schema;
use lingua_durable::{Journal, KillPoint, StreamCheckpoint, WindowCloseRecord, WindowReportRecord};
use lingua_llm_sim::{CompletionRequest, LlmService};
use lingua_serve::{
    JobHandle, MetricsSnapshot, PipelineServer, Priority, ServeConfig, ServeError, StreamTuning,
    SubmitRequest, UsageMeter,
};
use lingua_trace::{SpanKind, Tracer};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Pipeline id the engine registers for window-close reports.
pub const WINDOW_PIPELINE: &str = "stream_window_report";

/// Full engine configuration: event-time tuning plus execution knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Window/slide/watermark-interval, validated by the serve layer at
    /// [`StreamEngine::start`] (it is embedded into [`ServeConfig::stream`]).
    pub tuning: StreamTuning,
    /// How far (in event-time ticks) the watermark trails the frontier.
    /// Records more out-of-order than this are dropped late.
    pub allowed_lateness: u64,
    pub strategy: ReportStrategy,
    /// Schema column whose tokens drive window-scoped blocking.
    pub key_column: String,
    /// Stop-token threshold for the per-window blocking index.
    pub max_block_size: usize,
    /// Serving substrate configuration for window-close jobs.
    pub serve: ServeConfig,
    /// Backpressure: how many times a window-close submission retries after
    /// [`ServeError::Full`] before giving up. Together with
    /// `submit_backoff` this is the total stall budget ingest will absorb
    /// before surfacing the overload to the source — the default tolerates
    /// several seconds of saturated queue, which unoptimized debug builds
    /// actually hit.
    pub submit_retries: u32,
    /// Pause between backpressure retries.
    pub submit_backoff: Duration,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            tuning: StreamTuning::default(),
            allowed_lateness: 8,
            strategy: ReportStrategy::default(),
            key_column: "beer_name".to_string(),
            max_block_size: 24,
            serve: ServeConfig::default(),
            submit_retries: 10_000,
            submit_backoff: Duration::from_micros(500),
        }
    }
}

/// Event-time state, all under one mutex: which windows are open, where the
/// watermark stands, and how far the frontier has advanced.
struct EngineState {
    open: BTreeMap<u64, WindowState>,
    watermark: Watermark,
    max_event_time: u64,
    /// Ingests since the watermark was last recomputed.
    since_advance: u64,
    /// Window ids whose report was already handed to the application —
    /// restored from the journal on recovery. Defense in depth for the
    /// recovery invariant "never re-close an already-reported window": the
    /// watermark floor already blocks these (a report implies a journaled
    /// watermark past the window's end), but the set makes the invariant
    /// structural rather than emergent.
    reported: BTreeSet<u64>,
}

/// A closed window turned into a serve submission — built under the state
/// lock, submitted outside it so backpressure retries never hold the lock.
struct CloseJob {
    window: WindowId,
    start: u64,
    end: u64,
    records: usize,
    candidate_pairs: usize,
    comparisons: u64,
    true_duplicates: usize,
    inline_judged: u64,
    inline_matched: u64,
    inputs: BTreeMap<String, Data>,
}

/// A submitted window-close job awaiting its result.
struct PendingWindow {
    window: WindowId,
    start: u64,
    end: u64,
    records: usize,
    candidate_pairs: usize,
    comparisons: u64,
    true_duplicates: usize,
    inline_judged: u64,
    inline_matched: u64,
    handle: JobHandle,
}

/// Windowed, incremental streaming curation over the serving substrate.
///
/// `ingest` is safe to call from many threads; `finish` must be called after
/// every ingesting thread has quiesced (the natural shape: producers join,
/// then the driver drains).
pub struct StreamEngine {
    tuning: StreamTuning,
    allowed_lateness: u64,
    strategy: ReportStrategy,
    key_index: usize,
    max_block_size: usize,
    submit_retries: u32,
    submit_backoff: Duration,
    schema: Schema,
    server: PipelineServer,
    /// Meters inline (continuous-strategy) judgments separately from serve
    /// jobs so the billing reconciliation can split the ledger exactly.
    inline_llm: Arc<UsageMeter>,
    tracer: Tracer,
    metrics: StreamMetrics,
    state: Mutex<EngineState>,
    pending: Mutex<Vec<PendingWindow>>,
    /// The server's write-ahead journal, when `serve.journal` is configured.
    /// Every ingest/watermark/close/report event is recorded through it so a
    /// restarted engine resumes from the journaled stream state.
    journal: Option<Arc<Journal>>,
    /// Whether the most recent `ingest` made it to durable storage — `false`
    /// only under crash injection, where it tells the harness exactly which
    /// item the simulated process lost in flight.
    last_ingest_durable: AtomicBool,
}

/// The canonical entity-match prompt (the exact shape `SimLlm`'s
/// entity-match behavior parses and pins its answer format on).
pub fn entity_prompt(a: &str, b: &str) -> String {
    format!(
        "Please determine if the following two records refer to the same entity.\n\
         Record A: {a}\nRecord B: {b}\nAnswer yes or no."
    )
}

/// Conservative verdict parse: anything the yes/no validator can't read with
/// confidence is a non-match (same policy as the batch matcher).
fn is_yes(response: &str) -> bool {
    matches!(OutputValidator::YesNo.validate(response), Some(Data::Bool(true)))
}

fn int_field(map: &BTreeMap<String, Data>, key: &str) -> i64 {
    match map.get(key) {
        Some(Data::Int(n)) => *n,
        _ => 0,
    }
}

/// The window-close module: judges the payload's candidate pairs (if any)
/// and returns `{judged, matched}` totals folded over any counts the
/// continuous strategy already accumulated inline.
fn window_report_module() -> CustomModule {
    CustomModule::stateless("window_report", |input, ctx| {
        let payload = input.as_map().ok_or(CoreError::DataShape {
            expected: "map payload with pairs/judged/matched",
            got: "non-map window payload".to_string(),
        })?;
        let mut judged = int_field(payload, "judged");
        let mut matched = int_field(payload, "matched");
        if let Some(pairs) = payload.get("pairs").and_then(Data::as_list) {
            for pair in pairs {
                // Cooperative cancellation between judgments, so a deadline
                // on a window job stops the batch rather than finishing it.
                ctx.cancel.check().map_err(|reason| CoreError::Cancelled { reason })?;
                let Some(pair) = pair.as_map() else { continue };
                let a = pair.get("a").and_then(Data::as_str).unwrap_or("");
                let b = pair.get("b").and_then(Data::as_str).unwrap_or("");
                let response = ctx.llm.complete(&CompletionRequest::new(entity_prompt(a, b)));
                judged += 1;
                if is_yes(&response) {
                    matched += 1;
                }
            }
        }
        Ok(Data::map([
            ("judged".to_string(), Data::Int(judged)),
            ("matched".to_string(), Data::Int(matched)),
        ]))
    })
}

impl StreamEngine {
    /// Start the engine: validate the tuning (through the serve layer, so a
    /// zero window or slide > window fails *here*, typed), boot the server,
    /// and register the window-report pipeline.
    pub fn start(
        factory: ContextFactory,
        schema: Schema,
        config: StreamConfig,
    ) -> Result<StreamEngine, StreamError> {
        let key_index = schema
            .index_of(&config.key_column)
            .ok_or_else(|| StreamError::UnknownKeyColumn { column: config.key_column.clone() })?;

        let mut serve_config = config.serve.clone();
        serve_config.stream = Some(config.tuning);

        let tracer = factory.tracer().clone();
        let inline_llm = Arc::new(UsageMeter::new(factory.llm()));

        // Compile the window-report pipeline against the same factory the
        // server will replicate contexts from.
        let mut compiler = Compiler::with_builtins();
        compiler.register("window_report", |_op, _ctx| {
            Ok(Box::new(window_report_module()) as Box<dyn Module>)
        });
        let logical = Pipeline::new(WINDOW_PIPELINE)
            .op(LogicalOp::new("window_report").output("report").input("payload"));
        let mut ctx = factory.build();
        // The pipeline is statically constructed above, so compilation can
        // only fail on a compiler regression — but that is still a reachable
        // error path, so it surfaces typed instead of panicking the caller.
        let physical = compiler
            .compile(&logical, &mut ctx)
            .map_err(|err| StreamError::Serve(ServeError::Core(err)))?;

        let server = PipelineServer::start(factory, serve_config)?;
        server.register_pipeline(WINDOW_PIPELINE, physical)?;

        let journal = server.journal();
        let engine = StreamEngine {
            tuning: config.tuning,
            allowed_lateness: config.allowed_lateness,
            strategy: config.strategy,
            key_index,
            max_block_size: config.max_block_size,
            submit_retries: config.submit_retries,
            submit_backoff: config.submit_backoff,
            schema,
            server,
            inline_llm,
            tracer,
            metrics: StreamMetrics::new(),
            state: Mutex::new(EngineState {
                open: BTreeMap::new(),
                watermark: Watermark::new(),
                max_event_time: 0,
                since_advance: 0,
                reported: BTreeSet::new(),
            }),
            pending: Mutex::new(Vec::new()),
            journal,
            last_ingest_durable: AtomicBool::new(true),
        };
        let recovered = engine.server.recovered_stream();
        engine.restore(recovered)?;
        Ok(engine)
    }

    /// Rebuild stream state from a journaled [`StreamCheckpoint`]: restore
    /// the watermark and frontier, reopen every open window by re-inserting
    /// its items (the index is deterministic, so candidates and comparison
    /// counts come back identical), resubmit every closed-but-unreported
    /// window job, and remember reported windows so they are never closed
    /// twice.
    ///
    /// Continuous-strategy inline judgments are *not* re-run here: their
    /// verdict counters died with the crashed process (they are journaled
    /// only at window close), and re-judging would double-bill the inline
    /// ledger. Crash-exact reports are therefore an
    /// [`ReportStrategy::OnWindowClose`] guarantee.
    fn restore(&self, checkpoint: StreamCheckpoint) -> Result<(), StreamError> {
        use std::sync::atomic::Ordering::Relaxed;
        if checkpoint == StreamCheckpoint::default() {
            return Ok(());
        }
        let span = self.tracer.begin(SpanKind::Recovery, "stream_restore", || {
            vec![
                ("open_windows".to_string(), checkpoint.open_windows.len().to_string()),
                ("unreported".to_string(), checkpoint.closed_unreported.len().to_string()),
                ("reported".to_string(), checkpoint.reported.len().to_string()),
            ]
        });
        let closings = {
            let mut state = self.state.lock();
            state.max_event_time = checkpoint.max_event_time;
            self.metrics.max_event_time.store(checkpoint.max_event_time, Relaxed);
            state.watermark.advance(checkpoint.watermark);
            state.reported = checkpoint.reported.keys().copied().collect();
            for (k, items) in checkpoint.open_windows {
                self.metrics.windows_opened.fetch_add(1, Relaxed);
                let mut window = WindowState::new(WindowId(k));
                let (start, end) = window.id.range(&self.tuning);
                window.span = Some(self.tracer.begin(SpanKind::StreamWindow, "window", || {
                    vec![
                        ("window".to_string(), k.to_string()),
                        ("start".to_string(), start.to_string()),
                        ("end".to_string(), end.to_string()),
                        ("restored".to_string(), "true".to_string()),
                    ]
                }));
                for item in items {
                    let outcome = window.insert(item, self.key_index, self.max_block_size);
                    self.metrics.comparisons.fetch_add(outcome.candidates.len() as u64, Relaxed);
                }
                state.open.insert(k, window);
            }
            // The journaled watermark is only a lower bound: the advance
            // triggered by the final durable ingest may itself have died in
            // flight. The frontier *is* exact (every ingest journals before
            // its effects are observable), so re-derive the watermark from
            // it — with `watermark_interval == 1` this makes post-recovery
            // late-drop decisions identical to the uninterrupted run's.
            let rederived = checkpoint.max_event_time.saturating_sub(self.allowed_lateness);
            let mut closings = self.advance_watermark_locked(&mut state, rederived);
            self.metrics.watermark.store(state.watermark.get(), Relaxed);
            // The crash may also have landed between a *journaled* advance
            // and the closes it triggered: any restored window already below
            // the restored floor closes right now, exactly as it would have.
            if let Some(through) = closed_through(&self.tuning, state.watermark.get()) {
                let ready: Vec<u64> = state.open.range(..=through).map(|(k, _)| *k).collect();
                for k in ready {
                    // Key just came from a range scan of this map under the
                    // same lock.
                    let window = state.open.remove(&k).expect("ready window is open");
                    closings.push(self.close_window(window));
                }
            }
            closings
        };
        for job in closings {
            self.submit_close(job)?;
        }
        // Closed-but-unreported windows: the close was durable but the
        // report never went out. Resubmit the journaled job inputs; if the
        // job itself finished before the crash, the serve layer's restored
        // result cache answers without re-executing (exactly-once).
        for (_, close) in checkpoint.closed_unreported {
            self.metrics.windows_opened.fetch_add(1, Relaxed);
            self.metrics.windows_closed.fetch_add(1, Relaxed);
            let job = CloseJob {
                window: WindowId(close.window),
                start: close.start,
                end: close.end,
                records: close.records,
                candidate_pairs: close.candidate_pairs,
                comparisons: close.comparisons,
                true_duplicates: close.true_duplicates,
                inline_judged: close.inline_judged,
                inline_matched: close.inline_matched,
                inputs: close.inputs,
            };
            self.submit_restored(job)?;
        }
        self.tracer.end(span, || Vec::new());
        Ok(())
    }

    /// Ingest one record: assign it to its windows, probe the window-scoped
    /// blocking index, and — every `watermark_interval` ingests — advance
    /// the watermark and close any window it passed.
    pub fn ingest(&self, item: StreamItem) -> Result<(), StreamError> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.journal.as_ref().is_some_and(|journal| journal.dead()) {
            // Simulated crash: the dead process accepts nothing more. The
            // harness observes this through [`StreamEngine::dead`]; this
            // ingest did nothing, so it was by definition not durable (the
            // kill may have fired on a concurrent worker thread between
            // calls, leaving the previous call's flag stale-true).
            self.last_ingest_durable.store(false, std::sync::atomic::Ordering::Relaxed);
            return Ok(());
        }
        let mut closings = Vec::new();
        {
            let mut state = self.state.lock();
            self.metrics.ingested.fetch_add(1, Relaxed);
            if item.event_time > state.max_event_time {
                state.max_event_time = item.event_time;
                self.metrics.max_event_time.store(item.event_time, Relaxed);
            }

            let floor = closed_through(&self.tuning, state.watermark.get());
            let mut landed = 0u64;
            let mut missed = 0u64;
            let mut landed_windows = Vec::new();
            for k in windows_for(&self.tuning, item.event_time) {
                if floor.is_some_and(|f| k <= f) || state.reported.contains(&k) {
                    missed += 1;
                    continue;
                }
                let window = state.open.entry(k).or_insert_with(|| {
                    self.metrics.windows_opened.fetch_add(1, Relaxed);
                    let mut w = WindowState::new(WindowId(k));
                    let (start, end) = w.id.range(&self.tuning);
                    w.span = Some(self.tracer.begin(SpanKind::StreamWindow, "window", || {
                        vec![
                            ("window".to_string(), k.to_string()),
                            ("start".to_string(), start.to_string()),
                            ("end".to_string(), end.to_string()),
                        ]
                    }));
                    w
                });
                let outcome = window.insert(item.clone(), self.key_index, self.max_block_size);
                self.metrics.comparisons.fetch_add(outcome.candidates.len() as u64, Relaxed);
                landed += 1;
                landed_windows.push(k);
                if self.strategy == ReportStrategy::Continuous {
                    // Judge surfaced pairs immediately through the metered
                    // inline path. SimLlm never sleeps, so holding the state
                    // lock here is microseconds; serve jobs provide the
                    // parallelism that matters.
                    for &pair in &outcome.candidates {
                        let (a, b) = window.describe_pair(pair, &self.schema);
                        let response = self
                            .inline_llm
                            .complete(&CompletionRequest::new(entity_prompt(&a, &b)));
                        window.judged_inline += 1;
                        self.metrics.pairs_judged.fetch_add(1, Relaxed);
                        if is_yes(&response) {
                            window.matched_inline += 1;
                            self.metrics.pairs_matched.fetch_add(1, Relaxed);
                        }
                    }
                }
            }
            if landed > 0 {
                self.metrics.assigned_records.fetch_add(1, Relaxed);
                self.metrics.assignments.fetch_add(landed, Relaxed);
                self.metrics.missed_assignments.fetch_add(missed, Relaxed);
            } else {
                self.metrics.late_dropped.fetch_add(1, Relaxed);
                let t = item.event_time;
                self.tracer.instant(SpanKind::StreamWindow, "late_drop", || {
                    vec![("event_time".to_string(), t.to_string())]
                });
            }

            if let Some(journal) = &self.journal {
                // Journaled even when no window took the item: the record
                // still moved the event-time frontier, and recovery must see
                // the same frontier the crashed process saw. A journal I/O
                // failure refuses the ingest (the caller must not believe a
                // record is durable when it is not).
                let durable = journal
                    .record_stream_ingest(&item, &landed_windows)
                    .map_err(|err| ServeError::Journal { reason: err.to_string() })?;
                self.last_ingest_durable.store(durable, Relaxed);
            }

            state.since_advance += 1;
            if state.since_advance >= self.tuning.watermark_interval {
                state.since_advance = 0;
                let candidate = state.max_event_time.saturating_sub(self.allowed_lateness);
                closings = self.advance_watermark_locked(&mut state, candidate);
            }
        }
        for job in closings {
            self.submit_close(job)?;
        }
        Ok(())
    }

    /// Advance the watermark (monotone) and pull every window it passed out
    /// of the open set. Must hold the state lock; returns jobs to submit
    /// *after* releasing it.
    fn advance_watermark_locked(&self, state: &mut EngineState, candidate: u64) -> Vec<CloseJob> {
        use std::sync::atomic::Ordering::Relaxed;
        if !state.watermark.advance(candidate) {
            return Vec::new();
        }
        let watermark = state.watermark.get();
        self.metrics.watermark_advances.fetch_add(1, Relaxed);
        self.metrics.watermark.store(watermark, Relaxed);
        self.tracer.instant(SpanKind::StreamWindow, "watermark_advance", || {
            vec![("watermark".to_string(), watermark.to_string())]
        });
        if let Some(journal) = &self.journal {
            // Best-effort: losing a watermark record only means recovery
            // replays from an older (smaller) watermark, which is always
            // safe — windows re-close deterministically.
            let _ = journal.record_watermark(watermark, state.max_event_time);
        }
        let Some(through) = closed_through(&self.tuning, watermark) else {
            return Vec::new();
        };
        let ready: Vec<u64> = state.open.range(..=through).map(|(k, _)| *k).collect();
        ready
            .into_iter()
            .map(|k| {
                // Invariant: the key came from a range scan of this same map
                // under the same lock, so the entry must still be present.
                let window = state.open.remove(&k).expect("ready window is open");
                self.close_window(window)
            })
            .collect()
    }

    /// Turn a closed window into a serve submission payload.
    fn close_window(&self, mut window: WindowState) -> CloseJob {
        use std::sync::atomic::Ordering::Relaxed;
        self.metrics.windows_closed.fetch_add(1, Relaxed);
        let records = window.occupancy();
        let candidate_pairs = window.candidates().len();
        let comparisons = window.comparisons();
        if let Some(span) = window.span.take() {
            self.tracer.end(span, || {
                vec![
                    ("records".to_string(), records.to_string()),
                    ("candidates".to_string(), candidate_pairs.to_string()),
                ]
            });
        }
        let (start, end) = window.id.range(&self.tuning);
        let mut pairs = Vec::new();
        if self.strategy == ReportStrategy::OnWindowClose {
            for &pair in window.candidates() {
                let (a, b) = window.describe_pair(pair, &self.schema);
                pairs.push(Data::map([
                    ("a".to_string(), Data::Str(a)),
                    ("b".to_string(), Data::Str(b)),
                ]));
            }
        }
        let mut payload = BTreeMap::new();
        payload.insert("window".to_string(), Data::Int(window.id.0 as i64));
        payload.insert("pairs".to_string(), Data::List(pairs));
        payload.insert("judged".to_string(), Data::Int(window.judged_inline as i64));
        payload.insert("matched".to_string(), Data::Int(window.matched_inline as i64));
        let mut inputs = BTreeMap::new();
        inputs.insert("payload".to_string(), Data::Map(payload));
        CloseJob {
            window: window.id,
            start,
            end,
            records,
            candidate_pairs,
            comparisons,
            true_duplicates: window.true_duplicate_pairs(),
            inline_judged: window.judged_inline,
            inline_matched: window.matched_inline,
            inputs,
        }
    }

    /// Submit a window-close job, journaling the close first so a crash
    /// between close and report leaves the window resubmittable.
    fn submit_close(&self, job: CloseJob) -> Result<(), StreamError> {
        if let Some(journal) = &self.journal {
            journal
                .record_window_close(WindowCloseRecord {
                    window: job.window.0,
                    start: job.start,
                    end: job.end,
                    records: job.records,
                    candidate_pairs: job.candidate_pairs,
                    comparisons: job.comparisons,
                    true_duplicates: job.true_duplicates,
                    inline_judged: job.inline_judged,
                    inline_matched: job.inline_matched,
                    inputs: job.inputs.clone(),
                })
                .map_err(|err| ServeError::Journal { reason: err.to_string() })?;
            if journal.dead() {
                // Simulated crash during the close record: the dead process
                // never submits the job; recovery resubmits it (or re-closes
                // the window) from whatever the journal kept.
                return Ok(());
            }
        }
        self.submit_pending(job)
    }

    /// Resubmit a window job restored from the journal — the close record is
    /// already durable, so only the serve submission runs.
    fn submit_restored(&self, job: CloseJob) -> Result<(), StreamError> {
        self.submit_pending(job)
    }

    /// Deterministic backoff jitter in `[0.5, 1.5) × base`, decorrelated
    /// across windows and attempts (splitmix64 avalanche) so synchronized
    /// closers don't stampede the queue in lockstep — while keeping replay
    /// runs byte-identical (no wall-clock or RNG state involved).
    fn jittered(base: Duration, window: u64, attempt: u32) -> Duration {
        let mut z = window
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(attempt))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map the hash's top bits onto [500, 1500) thousandths of the base.
        let thousandths = 500 + ((z >> 44) % 1000) as u32;
        base * thousandths / 1000
    }

    /// The backpressure retry loop: resubmit through [`ServeError::Full`]
    /// with jittered backoff until the retry budget is exhausted, then
    /// surface [`StreamError::Saturated`] with the exact attempt count.
    fn submit_pending(&self, job: CloseJob) -> Result<(), StreamError> {
        use std::sync::atomic::Ordering::Relaxed;
        let mut attempts = 0u32;
        let handle = loop {
            let mut request = SubmitRequest::new(WINDOW_PIPELINE).priority(Priority::High);
            request.inputs = job.inputs.clone();
            match self.server.submit(request) {
                Ok(handle) => break handle,
                Err(ServeError::Full { .. }) if attempts < self.submit_retries => {
                    attempts += 1;
                    self.metrics.backpressure_stalls.fetch_add(1, Relaxed);
                    std::thread::sleep(Self::jittered(self.submit_backoff, job.window.0, attempts));
                }
                Err(ServeError::Full { .. }) => {
                    return Err(StreamError::Saturated { attempts });
                }
                Err(err) => return Err(err.into()),
            }
        };
        self.pending.lock().push(PendingWindow {
            window: job.window,
            start: job.start,
            end: job.end,
            records: job.records,
            candidate_pairs: job.candidate_pairs,
            comparisons: job.comparisons,
            true_duplicates: job.true_duplicates,
            inline_judged: job.inline_judged,
            inline_matched: job.inline_matched,
            handle,
        });
        Ok(())
    }

    /// Drain the stream: push the watermark past the frontier so every open
    /// window closes, wait for every window job, and return the reports in
    /// window order. Call after all ingesting threads have quiesced.
    pub fn finish(&self) -> Result<Vec<WindowReport>, StreamError> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.journal.as_ref().is_some_and(|journal| journal.dead()) {
            // A crashed process hands out nothing; whatever the journal
            // kept is the next incarnation's to report.
            return Ok(Vec::new());
        }
        let closings = {
            let mut state = self.state.lock();
            let horizon = state.max_event_time + self.tuning.window + self.allowed_lateness + 1;
            self.advance_watermark_locked(&mut state, horizon)
        };
        for job in closings {
            self.submit_close(job)?;
        }
        let pending = std::mem::take(&mut *self.pending.lock());
        let mut reports = Vec::with_capacity(pending.len());
        for p in pending {
            if self.journal.as_ref().is_some_and(|journal| journal.dead()) {
                // Simulated crash: unreported windows stay journaled as
                // closed-unreported; the next incarnation reports them.
                break;
            }
            let output = p.handle.wait()?;
            let report = output.get("report")?;
            let report = report.as_map().cloned().unwrap_or_default();
            let judged = int_field(&report, "judged").max(0) as u64;
            let matched = int_field(&report, "matched").max(0) as u64;
            if let Some(journal) = &self.journal {
                // Write-ahead ordering: the report is journaled as submitted
                // *before* it is handed to the application, so a recovered
                // engine never emits a report the caller already saw — and
                // `MidReport` kills the simulated process in the gap where
                // the job finished but the report never went out.
                if journal.injector().fire(KillPoint::MidReport) {
                    break;
                }
                let durable = journal
                    .record_report_submitted(WindowReportRecord {
                        window: p.window.0,
                        start: p.start,
                        end: p.end,
                        records: p.records,
                        candidate_pairs: p.candidate_pairs,
                        comparisons: p.comparisons,
                        judged,
                        matched,
                        true_duplicates: p.true_duplicates,
                        llm: output.llm,
                    })
                    .map_err(|err| ServeError::Journal { reason: err.to_string() })?;
                if !durable {
                    break;
                }
            }
            self.state.lock().reported.insert(p.window.0);
            // Job-side judgments (beyond what ran inline) join the counters.
            self.metrics.pairs_judged.fetch_add(judged.saturating_sub(p.inline_judged), Relaxed);
            self.metrics.pairs_matched.fetch_add(matched.saturating_sub(p.inline_matched), Relaxed);
            self.metrics.reports.fetch_add(1, Relaxed);
            reports.push(WindowReport {
                window: p.window,
                start: p.start,
                end: p.end,
                records: p.records,
                candidate_pairs: p.candidate_pairs,
                comparisons: p.comparisons,
                judged,
                matched,
                true_duplicates: p.true_duplicates,
                llm: output.llm,
            });
        }
        reports.sort_by_key(|r| r.window.0);
        Ok(reports)
    }

    /// Streaming counters. The inline-LLM ledger is copied from the engine's
    /// meter at snapshot time, so it is exact under quiescence.
    pub fn metrics(&self) -> StreamSnapshot {
        *self.metrics.inline_llm.lock() = self.inline_llm.usage();
        self.metrics.snapshot()
    }

    /// The backing server's counters (job paths, cache, LLM usage billed by
    /// window jobs).
    pub fn server_metrics(&self) -> MetricsSnapshot {
        self.server.metrics()
    }

    /// Current watermark position.
    pub fn watermark(&self) -> u64 {
        self.state.lock().watermark.get()
    }

    /// The attached write-ahead journal, if the serve config carried one.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.journal.clone()
    }

    /// Whether the simulated process has crashed (always false without a
    /// journal, or with an inert injector).
    pub fn dead(&self) -> bool {
        self.journal.as_ref().is_some_and(|journal| journal.dead())
    }

    /// Whether the most recent [`StreamEngine::ingest`] reached durable
    /// storage. Only meaningful under crash injection, where it tells the
    /// harness whether the last item fed before death was journaled (resume
    /// after it) or lost in flight (resume *at* it).
    pub fn last_ingest_durable(&self) -> bool {
        self.last_ingest_durable.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Stop the backing server (idempotent; also runs on drop).
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{StreamSource, SyntheticSource};
    use lingua_dataset::world::WorldSpec;
    use lingua_llm_sim::{SimLlm, SimLlmConfig};

    fn engine(strategy: ReportStrategy) -> (StreamEngine, SyntheticSource) {
        let world = WorldSpec::generate(5);
        let llm = Arc::new(SimLlm::new(&world, SimLlmConfig::default()));
        let factory = ContextFactory::new(llm);
        let source = SyntheticSource::with_seed(5);
        let schema = source.schema().clone();
        let config = StreamConfig {
            strategy,
            serve: ServeConfig { workers: Some(2), ..ServeConfig::default() },
            ..StreamConfig::default()
        };
        (StreamEngine::start(factory, schema, config).expect("engine starts"), source)
    }

    #[test]
    fn unknown_key_column_fails_at_start() {
        let world = WorldSpec::generate(1);
        let llm = Arc::new(SimLlm::new(&world, SimLlmConfig::default()));
        let factory = ContextFactory::new(llm);
        let schema = SyntheticSource::with_seed(1).schema().clone();
        let config = StreamConfig { key_column: "color".to_string(), ..StreamConfig::default() };
        let err = match StreamEngine::start(factory, schema, config) {
            Ok(_) => panic!("start must reject an unknown key column"),
            Err(e) => e,
        };
        assert_eq!(err, StreamError::UnknownKeyColumn { column: "color".to_string() });
    }

    #[test]
    fn broken_tuning_fails_at_start_typed() {
        let world = WorldSpec::generate(1);
        let llm = Arc::new(SimLlm::new(&world, SimLlmConfig::default()));
        let factory = ContextFactory::new(llm);
        let schema = SyntheticSource::with_seed(1).schema().clone();
        let config = StreamConfig {
            tuning: StreamTuning { window: 8, slide: 16, watermark_interval: 4 },
            ..StreamConfig::default()
        };
        let err = match StreamEngine::start(factory, schema, config) {
            Ok(_) => panic!("start must reject slide > window"),
            Err(e) => e,
        };
        assert!(matches!(
            err,
            StreamError::Serve(ServeError::InvalidConfig(
                lingua_serve::InvalidConfig::SlideExceedsWindow { slide: 16, window: 8 }
            ))
        ));
    }

    #[test]
    fn end_to_end_close_reports_and_conserves() {
        let (mut engine, mut source) = engine(ReportStrategy::OnWindowClose);
        for item in source.take_records(800) {
            engine.ingest(item).expect("ingest");
        }
        let reports = engine.finish().expect("finish");
        assert!(!reports.is_empty(), "800 records over 64-tick windows close many windows");
        let snap = engine.metrics();
        assert!(snap.record_conservation_holds(), "{}", snap.report());
        assert!(snap.window_conservation_holds(), "{}", snap.report());
        assert_eq!(snap.windows_open, 0, "finish() closes every window");
        assert_eq!(snap.reports, reports.len() as u64);
        // Every landed membership ended up in exactly one closed window.
        let closed_records: usize = reports.iter().map(|r| r.records).sum();
        assert_eq!(closed_records as u64, snap.assignments);
        // The matcher found real duplicates and judged every candidate.
        let judged: u64 = reports.iter().map(|r| r.judged).sum();
        let matched: u64 = reports.iter().map(|r| r.matched).sum();
        assert_eq!(judged, snap.pairs_judged);
        assert_eq!(matched, snap.pairs_matched);
        assert!(matched > 0, "seeded duplicates must surface as matches");
        // On-window-close bills through serve jobs, not the inline meter.
        assert_eq!(snap.inline_llm.calls, 0);
        assert!(engine.server_metrics().llm.calls >= judged);
        // Window ids are sorted and unique.
        for pair in reports.windows(2) {
            assert!(pair[0].window.0 < pair[1].window.0);
        }
        engine.shutdown();
    }

    #[test]
    fn continuous_strategy_bills_inline() {
        let (mut engine, mut source) = engine(ReportStrategy::Continuous);
        for item in source.take_records(400) {
            engine.ingest(item).expect("ingest");
        }
        let reports = engine.finish().expect("finish");
        let judged: u64 = reports.iter().map(|r| r.judged).sum();
        let snap = engine.metrics();
        assert_eq!(judged, snap.pairs_judged);
        assert!(judged > 0);
        assert_eq!(snap.inline_llm.calls, judged, "continuous judgments are metered inline");
        // The window jobs themselves judge nothing.
        assert_eq!(engine.server_metrics().llm.calls, 0);
        engine.shutdown();
    }

    #[test]
    fn same_seed_same_reports() {
        let run = |n: usize| {
            let (mut engine, mut source) = engine(ReportStrategy::OnWindowClose);
            for item in source.take_records(n) {
                engine.ingest(item).expect("ingest");
            }
            let reports = engine.finish().expect("finish");
            engine.shutdown();
            reports
                .iter()
                .map(|r| (r.window.0, r.records, r.candidate_pairs, r.judged, r.matched))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(500), run(500), "event-time replay is deterministic");
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_decorrelated() {
        let base = Duration::from_micros(1000);
        let mut distinct = std::collections::HashSet::new();
        for window in 0..40u64 {
            for attempt in 1..=10u32 {
                let d = StreamEngine::jittered(base, window, attempt);
                // Replay-stable: no wall clock or RNG state involved.
                assert_eq!(d, StreamEngine::jittered(base, window, attempt));
                // Bounded to [0.5, 1.5) x base — backoff never collapses to
                // zero and never balloons.
                assert!(d >= base / 2 && d < base * 3 / 2, "{window}@{attempt}: {d:?}");
                distinct.insert(d);
            }
        }
        // Decorrelated: synchronized closers spread out instead of
        // stampeding the queue in lockstep.
        assert!(distinct.len() > 100, "only {} distinct delays", distinct.len());
    }
}
