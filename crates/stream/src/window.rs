//! Event-time window arithmetic: which windows a timestamp belongs to, when
//! a window closes, and the monotone watermark that drives closing.
//!
//! Windows are indexed, not materialized: window `k` covers the half-open
//! event-time range `[k·slide, k·slide + len)`. With `slide == len` the
//! windows tile (tumbling); with `slide < len` they overlap and a timestamp
//! belongs to up to `⌈len / slide⌉` consecutive windows. Everything here is
//! integer arithmetic over ticks — no clocks, no floats — so the same record
//! sequence produces the same window assignments on every run.

use lingua_serve::StreamTuning;

/// A window's index; window `k` covers `[k·slide, k·slide + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowId(pub u64);

impl WindowId {
    /// The half-open event-time range `[start, end)` this window covers.
    pub fn range(self, tuning: &StreamTuning) -> (u64, u64) {
        let start = self.0 * tuning.slide;
        (start, start + tuning.window)
    }

    /// Exclusive end of the window's range; the window closes once the
    /// watermark reaches it.
    pub fn end(self, tuning: &StreamTuning) -> u64 {
        self.0 * tuning.slide + tuning.window
    }
}

/// Every window index containing event time `t`, in ascending order.
///
/// `t ∈ window k` iff `k·slide ≤ t < k·slide + len`, which solves to the
/// inclusive index range returned here. The range is never empty: `t / slide`
/// always qualifies, so every timestamp belongs to at least one window —
/// there are no event-time gaps (validation rejects `slide > len`, which
/// would create them).
pub fn windows_for(tuning: &StreamTuning, t: u64) -> std::ops::RangeInclusive<u64> {
    debug_assert!(tuning.slide > 0 && tuning.slide <= tuning.window);
    let hi = t / tuning.slide;
    let lo = if t < tuning.window { 0 } else { (t - tuning.window) / tuning.slide + 1 };
    lo..=hi
}

/// Highest window index already closed at `watermark` (`None` when no window
/// has closed yet). Window `k` is closed iff its end `k·slide + len` is at
/// or below the watermark.
pub fn closed_through(tuning: &StreamTuning, watermark: u64) -> Option<u64> {
    if watermark < tuning.window {
        return None;
    }
    Some((watermark - tuning.window) / tuning.slide)
}

/// The monotone watermark: "no record with event time below this will be
/// accepted anymore". Candidates below the current value are ignored, so the
/// watermark never regresses — the property every close/late decision leans
/// on.
#[derive(Debug, Clone, Copy, Default)]
pub struct Watermark {
    current: u64,
}

impl Watermark {
    pub fn new() -> Watermark {
        Watermark::default()
    }

    pub fn get(&self) -> u64 {
        self.current
    }

    /// Advance to `candidate` if it is ahead; returns true when the
    /// watermark moved.
    pub fn advance(&mut self, candidate: u64) -> bool {
        if candidate > self.current {
            self.current = candidate;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuning(window: u64, slide: u64) -> StreamTuning {
        StreamTuning { window, slide, watermark_interval: 1 }
    }

    /// Brute-force membership: the definition, checked directly.
    fn member(tuning: &StreamTuning, k: u64, t: u64) -> bool {
        let (start, end) = WindowId(k).range(tuning);
        start <= t && t < end
    }

    #[test]
    fn assignment_matches_brute_force() {
        for (window, slide) in [(8, 8), (8, 4), (12, 5), (64, 32), (7, 1), (1, 1)] {
            let tuning = tuning(window, slide);
            for t in 0..400u64 {
                let got: Vec<u64> = windows_for(&tuning, t).collect();
                let expect: Vec<u64> =
                    (0..=(t / slide + 2)).filter(|&k| member(&tuning, k, t)).collect();
                assert_eq!(got, expect, "window={window} slide={slide} t={t}");
                assert!(!got.is_empty(), "no event-time gaps");
            }
        }
    }

    #[test]
    fn tumbling_assigns_exactly_one_window() {
        let tuning = tuning(16, 16);
        for t in 0..200u64 {
            let ids: Vec<u64> = windows_for(&tuning, t).collect();
            assert_eq!(ids, vec![t / 16]);
        }
    }

    #[test]
    fn sliding_assigns_len_over_slide_windows() {
        let tuning = tuning(64, 32);
        // Past the warm-up prefix every timestamp sits in exactly 2 windows.
        for t in 64..500u64 {
            assert_eq!(windows_for(&tuning, t).count(), 2, "t={t}");
        }
    }

    #[test]
    fn closed_through_matches_range_ends() {
        for (window, slide) in [(8, 8), (8, 4), (12, 5), (64, 32)] {
            let tuning = tuning(window, slide);
            for wm in 0..300u64 {
                let closed = closed_through(&tuning, wm);
                // Window k closed iff end <= wm; check the boundary both ways.
                match closed {
                    None => assert!(WindowId(0).end(&tuning) > wm),
                    Some(k) => {
                        assert!(WindowId(k).end(&tuning) <= wm);
                        assert!(WindowId(k + 1).end(&tuning) > wm);
                    }
                }
            }
        }
    }

    #[test]
    fn watermark_is_monotone() {
        let mut wm = Watermark::new();
        assert!(wm.advance(10));
        assert!(!wm.advance(5), "candidates behind the watermark are ignored");
        assert!(!wm.advance(10), "equal candidates do not move it");
        assert!(wm.advance(11));
        assert_eq!(wm.get(), 11);
    }
}
