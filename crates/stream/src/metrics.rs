//! Streaming metrics: lock-free counters with a point-in-time snapshot and
//! the conservation laws the test suites hold them to.
//!
//! Same discipline as the serve layer: every ingested record takes exactly
//! one path (assigned to ≥1 window, or dropped late), every opened window
//! either closed or is still open, and under quiescence the identities are
//! exact — `ingested == assigned_records + late_dropped` and
//! `windows_opened == windows_closed + windows_open`.

use lingua_llm_sim::Usage;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free streaming counters (relaxed atomics; exact under quiescence).
#[derive(Debug, Default)]
pub struct StreamMetrics {
    pub(crate) ingested: AtomicU64,
    /// Records that landed in at least one open window.
    pub(crate) assigned_records: AtomicU64,
    /// Total window memberships (one record in 2 windows counts 2 here).
    pub(crate) assignments: AtomicU64,
    /// Memberships lost because the target window had already closed (the
    /// record itself still counts as assigned if any window took it).
    pub(crate) missed_assignments: AtomicU64,
    /// Records dropped entirely: every window they belonged to had closed.
    pub(crate) late_dropped: AtomicU64,
    pub(crate) windows_opened: AtomicU64,
    pub(crate) windows_closed: AtomicU64,
    /// Blocking-index probes (candidate comparisons generated).
    pub(crate) comparisons: AtomicU64,
    /// Candidate pairs judged by the matcher (inline or in serve jobs).
    pub(crate) pairs_judged: AtomicU64,
    pub(crate) pairs_matched: AtomicU64,
    /// Watermark advances observed.
    pub(crate) watermark_advances: AtomicU64,
    /// Submissions that hit a full serve queue and had to retry.
    pub(crate) backpressure_stalls: AtomicU64,
    pub(crate) reports: AtomicU64,
    /// Usage billed by *inline* (continuous-strategy) judgments. Serve-job
    /// usage is booked by the serve layer's own meters.
    pub(crate) inline_llm: Mutex<Usage>,
    /// Event-time frontier (max event time seen) and current watermark.
    pub(crate) max_event_time: AtomicU64,
    pub(crate) watermark: AtomicU64,
}

impl StreamMetrics {
    pub fn new() -> StreamMetrics {
        StreamMetrics::default()
    }

    pub fn snapshot(&self) -> StreamSnapshot {
        let max_event_time = self.max_event_time.load(Ordering::Relaxed);
        let watermark = self.watermark.load(Ordering::Relaxed);
        let opened = self.windows_opened.load(Ordering::Relaxed);
        let closed = self.windows_closed.load(Ordering::Relaxed);
        StreamSnapshot {
            ingested: self.ingested.load(Ordering::Relaxed),
            assigned_records: self.assigned_records.load(Ordering::Relaxed),
            assignments: self.assignments.load(Ordering::Relaxed),
            missed_assignments: self.missed_assignments.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            windows_opened: opened,
            windows_closed: closed,
            windows_open: opened.saturating_sub(closed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            pairs_judged: self.pairs_judged.load(Ordering::Relaxed),
            pairs_matched: self.pairs_matched.load(Ordering::Relaxed),
            watermark_advances: self.watermark_advances.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            reports: self.reports.load(Ordering::Relaxed),
            inline_llm: *self.inline_llm.lock(),
            max_event_time,
            watermark,
            watermark_lag: max_event_time.saturating_sub(watermark),
        }
    }
}

/// Point-in-time view of [`StreamMetrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSnapshot {
    pub ingested: u64,
    pub assigned_records: u64,
    pub assignments: u64,
    pub missed_assignments: u64,
    pub late_dropped: u64,
    pub windows_opened: u64,
    pub windows_closed: u64,
    pub windows_open: u64,
    pub comparisons: u64,
    pub pairs_judged: u64,
    pub pairs_matched: u64,
    pub watermark_advances: u64,
    pub backpressure_stalls: u64,
    pub reports: u64,
    /// Usage billed by inline (continuous) judgments; serve-side usage lives
    /// in the serve `MetricsSnapshot`.
    pub inline_llm: Usage,
    pub max_event_time: u64,
    pub watermark: u64,
    /// How far the watermark trails the event-time frontier.
    pub watermark_lag: u64,
}

impl StreamSnapshot {
    /// `ingested == assigned + late` — every record took exactly one path.
    pub fn record_conservation_holds(&self) -> bool {
        self.ingested == self.assigned_records + self.late_dropped
    }

    /// `opened == closed + open` — no window is lost or double-counted.
    pub fn window_conservation_holds(&self) -> bool {
        self.windows_opened == self.windows_closed + self.windows_open
    }

    /// One-line operator report.
    pub fn report(&self) -> String {
        format!(
            "ingested {} (assigned {}, late {}) | windows {}/{} closed ({} open) | \
             comparisons {} | judged {} matched {} | watermark {} (lag {}) | stalls {}",
            self.ingested,
            self.assigned_records,
            self.late_dropped,
            self.windows_closed,
            self.windows_opened,
            self.windows_open,
            self.comparisons,
            self.pairs_judged,
            self.pairs_matched,
            self.watermark,
            self.watermark_lag,
            self.backpressure_stalls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = StreamMetrics::new();
        m.ingested.fetch_add(5, Ordering::Relaxed);
        m.assigned_records.fetch_add(4, Ordering::Relaxed);
        m.late_dropped.fetch_add(1, Ordering::Relaxed);
        m.windows_opened.fetch_add(3, Ordering::Relaxed);
        m.windows_closed.fetch_add(2, Ordering::Relaxed);
        m.max_event_time.store(100, Ordering::Relaxed);
        m.watermark.store(92, Ordering::Relaxed);
        let snap = m.snapshot();
        assert!(snap.record_conservation_holds());
        assert!(snap.window_conservation_holds());
        assert_eq!(snap.windows_open, 1);
        assert_eq!(snap.watermark_lag, 8);
        assert!(snap.report().contains("lag 8"));
    }

    #[test]
    fn broken_books_are_detected() {
        let m = StreamMetrics::new();
        m.ingested.fetch_add(2, Ordering::Relaxed);
        m.assigned_records.fetch_add(1, Ordering::Relaxed);
        assert!(!m.snapshot().record_conservation_holds());
    }
}
