//! Streaming-engine errors.

use lingua_serve::ServeError;
use std::fmt;

/// Everything that can go wrong starting or driving a [`crate::StreamEngine`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The serving substrate rejected a configuration or a job. Misconfigured
    /// streaming knobs surface here as
    /// [`ServeError::InvalidConfig`](lingua_serve::InvalidConfig) at
    /// `start()` — before any record is ingested.
    Serve(ServeError),
    /// The configured blocking-key column is not in the stream schema.
    UnknownKeyColumn { column: String },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Serve(inner) => write!(f, "stream serving error: {inner}"),
            StreamError::UnknownKeyColumn { column } => {
                write!(f, "blocking key column {column:?} is not in the stream schema")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Serve(inner) => Some(inner),
            StreamError::UnknownKeyColumn { .. } => None,
        }
    }
}

impl From<ServeError> for StreamError {
    fn from(err: ServeError) -> StreamError {
        StreamError::Serve(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_serve::InvalidConfig;

    #[test]
    fn displays_carry_context() {
        let err = StreamError::UnknownKeyColumn { column: "color".into() };
        assert!(err.to_string().contains("color"));
        let err: StreamError = ServeError::InvalidConfig(InvalidConfig::ZeroWindow).into();
        assert!(err.to_string().contains("window"));
    }
}
