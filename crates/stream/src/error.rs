//! Streaming-engine errors.

use lingua_serve::ServeError;
use std::fmt;

/// Everything that can go wrong starting or driving a [`crate::StreamEngine`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The serving substrate rejected a configuration or a job. Misconfigured
    /// streaming knobs surface here as
    /// [`ServeError::InvalidConfig`](lingua_serve::InvalidConfig) at
    /// `start()` — before any record is ingested.
    Serve(ServeError),
    /// The configured blocking-key column is not in the stream schema.
    UnknownKeyColumn { column: String },
    /// Backpressure retry budget exhausted: the serve queue stayed full
    /// through every jittered retry. Distinct from a raw
    /// [`ServeError::Full`] (one rejected submission): this is the engine
    /// reporting that backoff did not help — the source must slow down or
    /// the pool must grow. `attempts` is how many retries were burned.
    Saturated { attempts: u32 },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Serve(inner) => write!(f, "stream serving error: {inner}"),
            StreamError::UnknownKeyColumn { column } => {
                write!(f, "blocking key column {column:?} is not in the stream schema")
            }
            StreamError::Saturated { attempts } => {
                write!(
                    f,
                    "serve queue stayed saturated through {attempts} backpressure \
                     retries; slow the source or grow the worker pool"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Serve(inner) => Some(inner),
            StreamError::UnknownKeyColumn { .. } | StreamError::Saturated { .. } => None,
        }
    }
}

impl From<ServeError> for StreamError {
    fn from(err: ServeError) -> StreamError {
        StreamError::Serve(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lingua_serve::InvalidConfig;

    #[test]
    fn displays_carry_context() {
        let err = StreamError::UnknownKeyColumn { column: "color".into() };
        assert!(err.to_string().contains("color"));
        let err: StreamError = ServeError::InvalidConfig(InvalidConfig::ZeroWindow).into();
        assert!(err.to_string().contains("window"));
        let err = StreamError::Saturated { attempts: 37 };
        assert!(err.to_string().contains("37"), "carries the retry count: {err}");
    }
}
