//! Stream sources: where unbounded records come from.
//!
//! The engine pulls [`StreamItem`]s — timestamped records with a hidden
//! ground-truth entity id — from anything implementing [`StreamSource`]. The
//! deterministic synthetic source wraps `lingua_dataset`'s unbounded
//! generator; a real deployment would implement the trait over a log or a
//! message queue.

use lingua_dataset::generators::stream::{ProductStream, StreamItem, StreamSpec};
use lingua_dataset::world::WorldSpec;
use lingua_dataset::Schema;

/// An unbounded source of timestamped records. `next_record` returning
/// `None` means the source is exhausted (synthetic sources never are; tests
/// bound them with [`StreamSource::take_records`]).
pub trait StreamSource: Send {
    /// Schema every emitted record conforms to.
    fn schema(&self) -> &Schema;

    /// Pull the next record.
    fn next_record(&mut self) -> Option<StreamItem>;

    /// Drain up to `n` records into a vector (convenience for tests and
    /// benches that want a bounded prefix of an unbounded stream).
    fn take_records(&mut self, n: usize) -> Vec<StreamItem> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.next_record() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }
}

/// The deterministic seeded synthetic source: beer listings with bounded-lag
/// corrupted duplicates, from [`lingua_dataset::generators::stream`].
pub struct SyntheticSource {
    inner: ProductStream,
}

impl SyntheticSource {
    pub fn new(world: &WorldSpec, spec: StreamSpec) -> SyntheticSource {
        SyntheticSource { inner: ProductStream::new(world, spec) }
    }

    /// World and stream both derived from one seed — the one-argument
    /// constructor almost every test wants.
    pub fn with_seed(seed: u64) -> SyntheticSource {
        let world = WorldSpec::generate(seed);
        SyntheticSource::new(&world, StreamSpec { seed, ..Default::default() })
    }
}

impl StreamSource for SyntheticSource {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_record(&mut self) -> Option<StreamItem> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_is_deterministic_and_unbounded() {
        let mut a = SyntheticSource::with_seed(11);
        let mut b = SyntheticSource::with_seed(11);
        let xs = a.take_records(256);
        let ys = b.take_records(256);
        assert_eq!(xs.len(), 256, "synthetic sources never run dry");
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!((x.event_time, x.entity), (y.event_time, y.entity));
            assert_eq!(x.record, y.record);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let xs = SyntheticSource::with_seed(1).take_records(64);
        let ys = SyntheticSource::with_seed(2).take_records(64);
        assert!(
            xs.iter().zip(&ys).any(|(x, y)| x.record != y.record),
            "seeds must produce distinct streams"
        );
    }
}
