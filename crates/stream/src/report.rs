//! Window match reports and the strategies that produce them.

use crate::window::WindowId;
use lingua_llm_sim::Usage;

/// When match verdicts are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportStrategy {
    /// Defer every judgment to window close: candidate pairs accumulate
    /// while the window is open, then one serve job judges the whole batch
    /// under panic isolation, deadlines, and result caching. Cheapest per
    /// pair (one job per window) and the natural fit for cost-capped
    /// curation.
    #[default]
    OnWindowClose,
    /// Judge each candidate pair the moment blocking surfaces it, through
    /// the engine's metered inline path. Matches surface with minimal
    /// latency; the window-close job only aggregates. Costs the same number
    /// of LLM calls, but spends them earlier and without the serve batch
    /// protections.
    Continuous,
}

/// The per-window result emitted when a window closes.
#[derive(Debug, Clone)]
pub struct WindowReport {
    pub window: WindowId,
    /// Event-time range `[start, end)` the window covered.
    pub start: u64,
    pub end: u64,
    /// Records the window held when it closed.
    pub records: usize,
    /// Candidate pairs the window-scoped blocking index surfaced.
    pub candidate_pairs: usize,
    /// Blocking probes performed building those candidates.
    pub comparisons: u64,
    /// Candidate pairs judged by the matcher.
    pub judged: u64,
    /// Pairs the matcher called duplicates.
    pub matched: u64,
    /// Ground-truth duplicate pairs in the window (hidden-entity oracle).
    pub true_duplicates: usize,
    /// LLM usage billed for this window's judgments (job-side for
    /// on-window-close; zero for continuous, whose usage is inline).
    pub llm: Usage,
}

impl WindowReport {
    /// One line per window for demos and logs.
    pub fn summary(&self) -> String {
        format!(
            "window {:>4} [{:>6}, {:>6})  records {:>3}  candidates {:>4}  \
             matched {:>3}/{:<3} (truth {:>3})  ${:.4}",
            self.window.0,
            self.start,
            self.end,
            self.records,
            self.candidate_pairs,
            self.matched,
            self.judged,
            self.true_duplicates,
            self.llm.cost_usd(&Default::default()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_the_essentials() {
        let mut llm = Usage::default();
        llm.record(1000, 10);
        let report = WindowReport {
            window: WindowId(7),
            start: 224,
            end: 288,
            records: 31,
            candidate_pairs: 12,
            comparisons: 12,
            judged: 12,
            matched: 9,
            true_duplicates: 10,
            llm,
        };
        let line = report.summary();
        assert!(line.contains("window"));
        assert!(line.contains("matched"));
        assert!(line.contains('9'));
        assert!(line.contains("truth"));
    }

    #[test]
    fn default_strategy_is_on_window_close() {
        assert_eq!(ReportStrategy::default(), ReportStrategy::OnWindowClose);
    }
}
