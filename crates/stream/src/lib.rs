//! # lingua-stream — windowed, incremental streaming curation
//!
//! The batch system answers "curate this table"; this crate answers "curate
//! this *stream*" — records arrive forever, slightly out of order, and the
//! corpus never fits in one pass. Three ideas make that tractable:
//!
//! 1. **Windows bound the work.** Records are assigned to sliding or
//!    tumbling event-time windows ([`window`]); all curation state is
//!    window-scoped, so per-record cost is O(window occupancy), never
//!    O(stream history). The blocking index that finds duplicate candidates
//!    lives and dies with its window ([`incremental`]).
//! 2. **Watermarks bound the waiting.** A monotone watermark trails the
//!    event-time frontier by a configured lateness allowance; when it passes
//!    a window's end, the window closes *exactly once* and its results are
//!    final. Records arriving after all their windows closed are counted
//!    late and dropped — visibly, in the metrics.
//! 3. **The serving substrate does the heavy lifting.** Window-close work is
//!    submitted as jobs to `lingua-serve` (panic isolation, deadlines,
//!    dedup, result cache); LLM judgments ride whatever service — gateway,
//!    meter, sim — the context factory provides; windows are cross-thread
//!    `stream_window` trace spans ([`lingua_trace`]).
//!
//! Everything is deterministic under a seed: the synthetic source
//! ([`source`]), window assignment, watermark advancement, and the simulated
//! matcher all replay identically, which is what lets the proptest and
//! sustained-load suites assert conservation laws exactly.
//!
//! ```no_run
//! use lingua_core::ContextFactory;
//! use lingua_llm_sim::{SimLlm, SimLlmConfig};
//! use lingua_dataset::world::WorldSpec;
//! use lingua_stream::{StreamConfig, StreamEngine, StreamSource, SyntheticSource};
//! use std::sync::Arc;
//!
//! let world = WorldSpec::generate(7);
//! let llm = Arc::new(SimLlm::new(&world, SimLlmConfig::default()));
//! let mut source = SyntheticSource::with_seed(7);
//! let schema = source.schema().clone();
//! let mut engine = StreamEngine::start(
//!     ContextFactory::new(llm), schema, StreamConfig::default(),
//! ).unwrap();
//! for item in source.take_records(1000) {
//!     engine.ingest(item).unwrap();
//! }
//! for report in engine.finish().unwrap() {
//!     println!("{}", report.summary());
//! }
//! println!("{}", engine.metrics().report());
//! ```

pub mod engine;
pub mod error;
pub mod incremental;
pub mod join;
pub mod metrics;
pub mod report;
pub mod source;
pub mod window;

pub use engine::{entity_prompt, StreamConfig, StreamEngine, WINDOW_PIPELINE};
pub use error::StreamError;
pub use incremental::{blocking_keys, InsertOutcome, WindowState};
pub use join::{JoinedWindow, Side, WindowJoin};
pub use metrics::{StreamMetrics, StreamSnapshot};
pub use report::{ReportStrategy, WindowReport};
pub use source::{StreamSource, SyntheticSource};
pub use window::{closed_through, windows_for, Watermark, WindowId};

// The event-time tuning lives in the serve crate (it is validated by
// `ServeConfig`), and stream items come from the dataset generator; re-export
// both so engine users need only this crate.
pub use lingua_dataset::generators::stream::{StreamItem, StreamSpec};
pub use lingua_serve::StreamTuning;
