//! Cost-based planning demo: the *same* logical pipeline, planned under two
//! objectives, compiles to two *different* physical pipelines.
//!
//! Scenario: a small, duplicate-heavy batch of entity-resolution pairs (10
//! distinct pairs repeated to 50 records). Candidate implementations for the
//! Match op:
//!
//! * **direct_llm** — one billed call per record, ~350 ms each.
//! * **cached_llm** — the same module behind a memo: only the ~20% distinct
//!   records pay a call.
//! * **ml_model** — a random forest distilled from teacher-labeled pairs.
//!   Marginal cost is ~zero, but the plan bears the *acquisition* cost of
//!   its training labels (real teacher usage, measured below). Labeling runs
//!   off the serving path, so those dollars buy no batch latency.
//!
//! That asymmetry is the whole point: for 50 records the cache's ~10
//! effective calls are cheaper than labeling a training set, so the cheap-$
//! plan answers from the cache — while the low-latency plan happily spends
//! the label budget to serve every record in microseconds.
//!
//! Run with: `cargo run --release -p lingua-plan --example planned_curation`

use lingua_core::modules::Module;
use lingua_core::{Compiler, CurationStage, DatasetStats, ExecContext, LogicalOp, Pipeline};
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_dataset::{Record, Schema, Table, Value};
use lingua_llm_sim::SimLlm;
use lingua_plan::{Calibrator, MlPairModule, Objective, PhysicalAlt, Planner};
use lingua_trace::Tracer;
use std::sync::Arc;

fn main() {
    let world = WorldSpec::generate(42);
    let split = generate(&world, ErDataset::FodorsZagats, 42);
    let mut ctx = ExecContext::new(Arc::new(SimLlm::with_seed(&world, 42)));
    let compiler = Compiler::with_builtins();

    // The logical pipeline: one Match-stage op, implementation unspecified.
    let er_op = LogicalOp::new("entity_resolution")
        .input("pairs")
        .output("matches")
        .param("desc", "Determine if the two records refer to the same entity");
    let pipeline = Pipeline::new("er_batch").op(er_op.clone());

    // The batch: 10 distinct pairs cycled to 50 records (duplicate rate 0.8).
    let distinct: Vec<_> = split.test.iter().take(10).collect();
    let schema = Schema::of_names(["a", "b"]);
    let rows: Vec<Record> = (0..50)
        .map(|i| {
            let pair = distinct[i % distinct.len()];
            Record::new(vec![
                Value::Str(pair.left.describe(&split.schema)),
                Value::Str(pair.right.describe(&split.schema)),
            ])
        })
        .collect();
    let positives = distinct.iter().filter(|p| p.label).count() as u64;
    let stats = DatasetStats::from_table(&Table::with_rows("batch", schema, rows).unwrap())
        .with_match_selectivity(positives, distinct.len() as u64);
    println!(
        "batch: {} records, duplicate rate {:.2}, ~{} tokens/record",
        stats.rows,
        stats.duplicate_rate(),
        stats.avg_record_tokens() as u64
    );

    let mut planner = Planner::new(compiler);

    // Evidence 1 — calibrate the direct LLM on the labeled validation pairs
    // (real calls, real tokens, real simulated latency, judged accuracy).
    let calibrator = Calibrator::from_pairs(&split.schema, &split.valid);
    let mut llm_module = {
        let mut op = er_op.clone();
        op.kind = Some(lingua_core::ModuleKind::Llm);
        Compiler::with_builtins().bind(&op, &mut ctx).expect("llm binds")
    };
    let llm_sample = calibrator.calibrate(
        planner.estimator_mut(),
        CurationStage::Match,
        PhysicalAlt::DirectLlm,
        llm_module.as_mut(),
        &mut ctx,
    );
    println!(
        "calibrated direct_llm: accuracy {:.2} over {} pairs, {} calls",
        llm_sample.accuracy(),
        llm_sample.total,
        llm_sample.usage.calls
    );

    // Evidence 2 — distill a student model and charge the plan for its
    // education: label the training pairs with the teacher LLM (real usage,
    // measured) and book that as the ml_model's setup cost. The labeling
    // runs off the serving path, so it costs dollars but no batch latency.
    let label_usage_before = ctx.llm.usage();
    for pair in &split.train {
        let input = lingua_core::Data::map([
            ("a".to_string(), lingua_core::Data::Str(pair.left.describe(&split.schema))),
            ("b".to_string(), lingua_core::Data::Str(pair.right.describe(&split.schema))),
        ]);
        llm_module.invoke(input, &mut ctx).expect("teacher labels");
    }
    let label_usage = ctx.llm.usage().since(&label_usage_before);
    let train_started = std::time::Instant::now();
    let model = MlPairModule::train("er_model", &split.schema, &split.train, 0).expect("train");
    let train_ms = train_started.elapsed().as_millis() as u64;
    planner.estimator_mut().record_setup(
        CurationStage::Match,
        PhysicalAlt::MlModel,
        &label_usage,
        train_ms,
    );
    let mut model_probe = model.fresh_instance().expect("replicable");
    planner.install_model(CurationStage::Match, Box::new(model)).expect("install");
    let model_sample = calibrator.calibrate(
        planner.estimator_mut(),
        CurationStage::Match,
        PhysicalAlt::MlModel,
        model_probe.as_mut(),
        &mut ctx,
    );
    println!(
        "calibrated ml_model: accuracy {:.2}, trained on {} teacher-labeled pairs (${:.4} of labels)",
        model_sample.accuracy(),
        split.train.len(),
        label_usage.cost_usd(planner.estimator().pricing())
    );

    // Plan the same pipeline under both objectives.
    let floor = 0.8;
    let cheap = planner
        .plan(
            &pipeline,
            &stats,
            &Objective::cheapest_dollars().with_floor(floor),
            &Tracer::disabled(),
        )
        .expect("cheap plan");
    let fast = planner
        .plan(
            &pipeline,
            &stats,
            &Objective::lowest_latency().with_floor(floor),
            &Tracer::disabled(),
        )
        .expect("fast plan");
    println!("\ncheap-$  : {}", cheap.summary());
    println!("low-lat  : {}", fast.summary());

    let cheap_alt = cheap.alt_of("entity_resolution").unwrap();
    let fast_alt = fast.alt_of("entity_resolution").unwrap();
    assert_ne!(cheap_alt, fast_alt, "the objectives should disagree on this workload");
    assert_eq!(cheap_alt, PhysicalAlt::CachedLlm, "cheap-$ answers duplicates from the memo");
    assert_eq!(fast_alt, PhysicalAlt::MlModel, "low-latency serves from the local model");

    // Both plans compile into ordinary executable pipelines.
    let cheap_exec = planner.compile(&cheap, &mut ctx).expect("compile cheap");
    let fast_exec = planner.compile(&fast, &mut ctx).expect("compile fast");
    println!(
        "\ncompiled: cheap-$ runs `{}`, low-latency runs `{}`",
        cheap_exec.physical.ops[0].1.name(),
        fast_exec.physical.ops[0].1.name()
    );
}
