//! Quickstart — the §4.1 story: a technical novice deduplicates a beer
//! catalogue **without writing any code**.
//!
//! 1. Search the template registry for a starting point.
//! 2. Describe the task in plain language (the suggested prompt template).
//! 3. Run; Lingua Manga compiles the description into an LLM module with
//!    output validation and judges the pairs.
//!
//! ```text
//! cargo run --release -p lingua-tasks --example quickstart
//! ```

use lingua_core::templates::TemplateRegistry;
use lingua_core::ExecContext;
use lingua_dataset::generators::er::{generate, ErDataset};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_ml::metrics::Confusion;
use lingua_tasks::er::evaluate;
use lingua_tasks::er::lingua::{LinguaErConfig, LinguaMatcher};
use std::sync::Arc;

fn main() {
    println!("=== Lingua Manga quickstart: entity resolution for a no-code user ===\n");

    // 1. "users can easily search for existing templates within the system"
    let registry = TemplateRegistry::with_builtins();
    println!("> search: \"deduplicate matching records\"");
    for template in registry.search("deduplicate matching records") {
        println!("  found template `{}` — {}", template.name, template.description);
    }
    let template = registry.get("entity_resolution_basic").expect("built-in");
    println!("\n> the template's pipeline (no code required):\n{}\n", template.pipeline.pretty());

    // 2. Data: a pre-paired beer benchmark stands in for the user's messy
    //    catalogue (same generator the Table-1 experiment uses).
    let world = WorldSpec::generate(7);
    let split = generate(&world, ErDataset::BeerAdvoRateBeer, 7);
    println!(
        "> loaded {} candidate pairs ({} for this demo's evaluation)\n",
        split.total(),
        split.test.len()
    );

    // 3. The user provides a task description and a handful of examples; the
    //    system assembles the validated LLM module.
    let llm = Arc::new(SimLlm::with_seed(&world, 7));
    let mut ctx = ExecContext::new(llm.clone());
    let mut matcher = LinguaMatcher::build(&split.schema, &split.train, &LinguaErConfig::default());

    let confusion: Confusion = evaluate(&mut matcher, &split, &mut ctx);
    println!("> judged {} pairs with {} LLM call(s)", split.test.len(), llm.usage().calls);
    println!(
        "> precision {:.1}%  recall {:.1}%  F1 {:.1}%  (paper Table 1, Lingua Manga on \
         BeerAdvo-RateBeer: 89.66)",
        confusion.precision() * 100.0,
        confusion.recall() * 100.0,
        confusion.f1() * 100.0
    );
    println!(
        "> spent ${:.4} (simulated) — and only {} labeled examples.",
        llm.usage().cost_usd(llm.pricing()),
        LinguaErConfig::default().examples
    );
}
