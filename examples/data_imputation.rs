//! Data imputation — the §4.3 story: an expert programmer optimizes a
//! manufacturer-imputation solution "at all costs": LLM-generated rules with
//! an LLM fallback, validated (functionally *and* against an LLM-call
//! budget), then compared with the pure-LLM module on both accuracy and
//! spend.
//!
//! ```text
//! cargo run --release -p lingua-tasks --example data_imputation
//! ```

use lingua_core::ExecContext;
use lingua_dataset::generators::imputation::generate;
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::{LlmService, SimLlm};
use lingua_tasks::imputation::evaluate;
use lingua_tasks::imputation::lingua::{register_tools, LinguaImputer};
use lingua_tasks::imputation::llm_only::LlmOnlyImputer;
use std::sync::Arc;

fn main() {
    println!("=== Lingua Manga: expert data imputation (Figure 4) ===\n");

    let world = WorldSpec::generate(13);
    let benchmark = generate(&world, 13);
    println!(
        "> Buy-style catalogue: {} products, manufacturer column 100% missing, \
         {} candidate manufacturers, {:.0}% of rows carry a recoverable brand mention\n",
        benchmark.len(),
        benchmark.vocabulary.len(),
        benchmark.easy_fraction() * 100.0
    );

    // The expert registers the tools the generated code may call...
    let llm = Arc::new(SimLlm::with_seed(&world, 13));
    let mut ctx = ExecContext::new(llm.clone());
    register_tools(&mut ctx, &benchmark.vocabulary);

    // ...and asks for the module. Generation may produce a buggy first draft;
    // the Validator's suggest-and-regenerate loop fixes it, including the
    // "silently always call the LLM" failure the zero-call budget catches.
    let mut expert = LinguaImputer::build(&mut ctx).expect("validated module");
    println!("--- the validated LLMGC module ---\n{}", expert.source());
    println!(
        "validation: {} cycle(s), {} regeneration(s), failures per round {:?}\n",
        expert.validation.cycles,
        expert.validation.regenerations,
        expert.validation.failure_history
    );

    // Head-to-head with the pure LLM module.
    let usage_before = llm.usage();
    let expert_outcome = evaluate(&mut expert, &benchmark, &mut ctx);
    let expert_usage = llm.usage().since(&usage_before);

    let usage_before = llm.usage();
    let mut pure = LlmOnlyImputer::new(benchmark.vocabulary.clone());
    let pure_outcome = evaluate(&mut pure, &benchmark, &mut ctx);
    let pure_usage = llm.usage().since(&usage_before);

    println!("--- results ---");
    println!(
        "LLMGC rules + LLM fallback: accuracy {:.2}%  {} LLM calls  ${:.4}",
        expert_outcome.accuracy() * 100.0,
        expert_outcome.llm_calls,
        expert_usage.cost_usd(llm.pricing())
    );
    println!(
        "pure LLM module:            accuracy {:.2}%  {} LLM calls  ${:.4}",
        pure_outcome.accuracy() * 100.0,
        pure_outcome.llm_calls,
        pure_usage.cost_usd(llm.pricing())
    );
    println!(
        "\n-> {:.1}x fewer LLM calls at equal-or-better accuracy — the paper's \
         \"1/6 LLM calls\" observation (94.48% vs 93.92%).",
        pure_outcome.llm_calls as f64 / expert_outcome.llm_calls.max(1) as f64
    );
}
