//! Name extraction — the §4.2 story: a low-code domain expert composes the
//! three-operator pipeline (tokenize → noun phrases → tag), watches it
//! degrade on multilingual data, then fixes it with a language-detection
//! module + multilingual tools, and finally adds the Simulator to cut the
//! LLM bill.
//!
//! ```text
//! cargo run --release -p lingua-tasks --example name_extraction
//! ```

use lingua_core::ExecContext;
use lingua_dataset::generators::names::{generate, NamesConfig};
use lingua_dataset::world::WorldSpec;
use lingua_llm_sim::SimLlm;
use lingua_tasks::names::pipeline::register_tools;
use lingua_tasks::names::{NameExtractionConfig, NameExtractionPipeline};
use std::sync::Arc;

fn main() {
    println!("=== Lingua Manga: multilingual name extraction (Figure 3) ===\n");

    let world = WorldSpec::generate(11);
    let corpus = generate(&world, &NamesConfig { passages: 120, ..Default::default() }, 11);
    println!(
        "> corpus: {} passages across 8 languages (sample: {:?})\n",
        corpus.len(),
        &corpus[0].text.chars().take(80).collect::<String>()
    );

    // -- First build: the English-only pipeline -------------------------------
    let llm = Arc::new(SimLlm::with_seed(&world, 11));
    let mut ctx = ExecContext::new(llm);
    register_tools(&mut ctx, &world);
    let mut mono = NameExtractionPipeline::build(&mut ctx, &NameExtractionConfig::default())
        .expect("pipeline builds (validator repairs any generated bugs)");
    let mono_score = mono.evaluate(&corpus, &mut ctx).expect("evaluation");
    println!(
        "monolingual pipeline:      P {:.1}%  R {:.1}%  F1 {:.1}%  ({} LLM calls)",
        mono_score.precision * 100.0,
        mono_score.recall * 100.0,
        mono_score.f1 * 100.0,
        mono_score.llm_calls
    );
    println!("  -> recall collapses on the non-English passages.\n");

    // -- The fix: language detection + multilingual tools ---------------------
    let mut multi = NameExtractionPipeline::build(
        &mut ctx,
        &NameExtractionConfig { multilingual: true, simulate_tagger: false },
    )
    .expect("pipeline builds");
    let multi_score = multi.evaluate(&corpus, &mut ctx).expect("evaluation");
    println!(
        "+ langdetect + tools:      P {:.1}%  R {:.1}%  F1 {:.1}%  ({} LLM calls)",
        multi_score.precision * 100.0,
        multi_score.recall * 100.0,
        multi_score.f1 * 100.0,
        multi_score.llm_calls
    );
    println!(
        "  -> +{:.1} F1 points: \"LINGUA MANGA quickly resolves this issue by \
         incorporating an LLM language detection module\".\n",
        (multi_score.f1 - mono_score.f1) * 100.0
    );

    // -- The economics: wrap the tagger in the Simulator ----------------------
    let mut simulated = NameExtractionPipeline::build(
        &mut ctx,
        &NameExtractionConfig { multilingual: true, simulate_tagger: true },
    )
    .expect("pipeline builds");
    let sim_score = simulated.evaluate(&corpus, &mut ctx).expect("evaluation");
    println!(
        "+ simulator on the tagger: P {:.1}%  R {:.1}%  F1 {:.1}%  ({} LLM calls)",
        sim_score.precision * 100.0,
        sim_score.recall * 100.0,
        sim_score.f1 * 100.0,
        sim_score.llm_calls
    );
    println!(
        "  -> {:.0}% of the calls at {:.1} F1: the ML student tags the confident \
         phrases; the LLM handles the rest.\n",
        sim_score.llm_calls as f64 / multi_score.llm_calls.max(1) as f64 * 100.0,
        sim_score.f1 * 100.0
    );
    println!("tagger state: {}", simulated.tagger_description());

    // A concrete extraction, end-to-end.
    let sample = corpus.iter().find(|p| p.person_names.len() >= 2).unwrap();
    let names = multi.extract(&sample.text, &mut ctx).expect("extraction");
    println!("\n> extract({:?})\n  = {:?}  (gold: {:?})", sample.text, names, sample.person_names);
}
